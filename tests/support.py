"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.relalg import Relation
from repro.relalg.nulls import Truth, compare
from repro.relalg.operators import FunctionPredicate


def cmp(left_attr: str, op: str, right_attr: str) -> FunctionPredicate:
    """Attribute-vs-attribute comparison predicate."""
    return FunctionPredicate(
        lambda row: compare(row[left_attr], op, row[right_attr]),
        f"{left_attr}{op}{right_attr}",
    )


def cmp_const(attr: str, op: str, value) -> FunctionPredicate:
    """Attribute-vs-constant comparison predicate."""
    return FunctionPredicate(
        lambda row: compare(row[attr], op, value), f"{attr}{op}{value!r}"
    )


def conj(*predicates) -> FunctionPredicate:
    """Conjunction under three-valued logic."""

    def evaluate(row) -> Truth:
        truth = Truth.TRUE
        for p in predicates:
            truth = truth.and_(p.evaluate(row))
        return truth

    return FunctionPredicate(evaluate, " and ".join(repr(p) for p in predicates))


def example21_relations() -> tuple[Relation, Relation, Relation]:
    """The three relations of the paper's Example 2.1.

    Attribute names are globally unique (the paper assumes disjoint
    schemas): r2's are suffixed ``2_`` and r3's ``3_`` where needed.
    """
    r1 = Relation.base(
        "r1",
        ["a", "b", "c", "f"],
        [("a1", "b1", "c1", "f1"), ("a2", "b1", "c1", "f2"), ("a2", "b1", "c2", "f2")],
    )
    r2 = Relation.base("r2", ["c2_", "d", "e"], [("c1", "d1", "e1")])
    r3 = Relation.base("r3", ["e3_", "f3_"], [("e1", "f1"), ("e1", "f3")])
    return r1, r2, r3
