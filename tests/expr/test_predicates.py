"""Tests for predicate atoms and conjunctions."""

import pytest

from repro.expr.predicates import (
    TRUE,
    Col,
    Comparison,
    Conjunction,
    Const,
    cmp_const,
    conjuncts_of,
    eq,
    make_conjunction,
)
from repro.relalg.nulls import NULL, Truth
from repro.relalg.row import Row


class TestTerms:
    def test_col_reads_row(self):
        assert Col("a").value(Row({"a": 7})) == 7
        assert Col("a").attrs == {"a"}

    def test_const(self):
        assert Const(5).value(Row({"a": 1})) == 5
        assert Const(5).attrs == frozenset()


class TestComparison:
    def test_evaluate(self):
        p = eq("a", "b")
        assert p.evaluate(Row({"a": 1, "b": 1})) is Truth.TRUE
        assert p.evaluate(Row({"a": 1, "b": 2})) is Truth.FALSE

    def test_null_is_unknown(self):
        p = eq("a", "b")
        assert p.evaluate(Row({"a": NULL, "b": 1})) is Truth.UNKNOWN

    def test_const_comparison(self):
        p = cmp_const("a", ">", 10)
        assert p.evaluate(Row({"a": 11})) is Truth.TRUE
        assert p.evaluate(Row({"a": NULL})) is Truth.UNKNOWN

    def test_schema(self):
        assert eq("x", "y").attrs == {"x", "y"}

    def test_structural_equality(self):
        assert eq("a", "b") == eq("a", "b")
        assert hash(eq("a", "b")) == hash(eq("a", "b"))

    def test_str(self):
        assert str(eq("a", "b")) == "a = b"


class TestConjunction:
    def test_evaluate_three_valued(self):
        p = make_conjunction([eq("a", "b"), eq("c", "d")])
        assert p.evaluate(Row({"a": 1, "b": 1, "c": 2, "d": 2})) is Truth.TRUE
        assert p.evaluate(Row({"a": 1, "b": 1, "c": 2, "d": 3})) is Truth.FALSE
        # FALSE dominates UNKNOWN
        assert p.evaluate(Row({"a": 1, "b": 2, "c": NULL, "d": 3})) is Truth.FALSE
        assert p.evaluate(Row({"a": 1, "b": 1, "c": NULL, "d": 3})) is Truth.UNKNOWN

    def test_flattening(self):
        inner_conj = make_conjunction([eq("a", "b"), eq("c", "d")])
        p = make_conjunction([inner_conj, eq("e", "f")])
        assert len(conjuncts_of(p)) == 3

    def test_single_atom_unwrapped(self):
        assert make_conjunction([eq("a", "b")]) == eq("a", "b")

    def test_empty_is_true(self):
        assert make_conjunction([]) is TRUE
        assert TRUE.evaluate(Row({})) is Truth.TRUE
        assert conjuncts_of(TRUE) == ()

    def test_raw_constructor_rejects_unflattened(self):
        with pytest.raises(ValueError):
            Conjunction((eq("a", "b"),))
        with pytest.raises(ValueError):
            Conjunction((TRUE, eq("a", "b")))

    def test_schema_union(self):
        p = make_conjunction([eq("a", "b"), eq("c", "d")])
        assert p.attrs == {"a", "b", "c", "d"}
