"""Coverage for the SemiJoin / UnionAll nodes' structural behavior."""

import pytest

from repro.expr import BaseRel, Rename
from repro.expr.nodes import ExprError, SemiJoin, UnionAll
from repro.expr.predicates import Col, IsNull, eq

A = BaseRel("a", ("ax", "ay"))
B = BaseRel("b", ("bx", "by"))
C = BaseRel("c", ("cx",))


class TestSemiJoinNode:
    def test_output_schema_is_left_only(self):
        s = SemiJoin(A, B, eq("ax", "bx"))
        assert s.real_attrs == ("ax", "ay")
        assert s.virtual_attrs == ("#a",)

    def test_base_names_include_right(self):
        s = SemiJoin(A, B, eq("ax", "bx"))
        assert s.base_names == {"a", "b"}

    def test_predicate_must_span_scopes(self):
        with pytest.raises(ExprError, match="not in scope"):
            SemiJoin(A, B, eq("ax", "cx"))

    def test_tolerant_predicate_rejected(self):
        with pytest.raises(ExprError, match="null in-tolerant"):
            SemiJoin(A, B, IsNull(Col("bx")))

    def test_shared_base_rejected(self):
        with pytest.raises(ExprError):
            SemiJoin(A, A, eq("ax", "ay"))

    def test_attr_owners_left_only(self):
        s = SemiJoin(A, B, eq("ax", "bx"))
        assert set(s.attr_owners) == {"ax", "ay", "#a"}

    def test_hypergraph_treats_semi_as_opaque(self):
        from repro.expr import inner
        from repro.hypergraph import hypergraph_of

        s = SemiJoin(A, B, eq("ax", "bx"))
        q = inner(s, C, eq("ay", "cx"))
        graph = hypergraph_of(q)
        assert graph.nodes == {"a", "c"}
        assert len(graph.edges) == 1


class TestUnionAllNode:
    def aligned(self):
        renamed = Rename(B, (("bx", "ax"), ("by", "ay")))
        return UnionAll(A, renamed)

    def test_schema(self):
        u = self.aligned()
        assert u.real_attrs == ("ax", "ay")
        assert set(u.virtual_attrs) == {"#a", "#b"}

    def test_owners_merge(self):
        u = self.aligned()
        assert u.attr_owners["ax"] == {"a", "b"}
        assert u.attr_owners["#a"] == {"a"}

    def test_estimate_adds_rows(self):
        from repro.optimizer import Statistics, TableStats, estimate

        stats = Statistics(
            {"a": TableStats(10, {}), "b": TableStats(7, {})}
        )
        assert estimate(self.aligned(), stats).rows == 17

    def test_walkable_and_rebuildable(self):
        from repro.expr.rewrite import iter_nodes, replace_at

        u = self.aligned()
        nodes = list(iter_nodes(u))
        assert len(nodes) >= 3
        rebuilt = replace_at(u, (), u)
        assert rebuilt == u
