"""Tests for logical expression tree nodes."""

import pytest

from repro.expr import (
    BaseRel,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Select,
    full_outer,
    inner,
    left_outer,
    preserved_for,
)
from repro.expr.nodes import ExprError
from repro.expr.predicates import TRUE, eq
from repro.relalg.aggregates import count_star, sum_


def rels():
    r1 = BaseRel("r1", ("a", "b"))
    r2 = BaseRel("r2", ("c", "d"))
    r3 = BaseRel("r3", ("e", "g"))
    return r1, r2, r3


class TestBaseRel:
    def test_schema(self):
        r1, _, _ = rels()
        assert r1.real_attrs == ("a", "b")
        assert r1.virtual_attrs == ("#r1",)
        assert r1.base_names == {"r1"}

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(ExprError):
            BaseRel("x", ("a", "a"))

    def test_owners(self):
        r1, _, _ = rels()
        assert r1.attr_owners["a"] == {"r1"}
        assert r1.attr_owners["#r1"] == {"r1"}


class TestJoin:
    def test_schema_concatenation(self):
        r1, r2, _ = rels()
        j = inner(r1, r2, eq("a", "c"))
        assert j.real_attrs == ("a", "b", "c", "d")
        assert j.virtual_attrs == ("#r1", "#r2")
        assert j.base_names == {"r1", "r2"}

    def test_kind_properties(self):
        assert JoinKind.LEFT.preserves_left and not JoinKind.LEFT.preserves_right
        assert JoinKind.FULL.preserves_left and JoinKind.FULL.preserves_right
        assert not JoinKind.INNER.is_outer
        assert JoinKind.RIGHT.is_outer

    def test_shared_base_rejected(self):
        r1, _, _ = rels()
        with pytest.raises(ExprError):
            inner(r1, r1, TRUE)

    def test_out_of_scope_predicate_rejected(self):
        r1, r2, _ = rels()
        with pytest.raises(ExprError, match="not in scope"):
            inner(r1, r2, eq("a", "zzz"))

    def test_predicate_relations(self):
        r1, r2, r3 = rels()
        q = left_outer(inner(r1, r2, eq("a", "c")), r3, eq("d", "e"))
        assert q.predicate_relations(eq("d", "e")) == {"r2", "r3"}
        assert q.predicate_relations(eq("a", "e")) == {"r1", "r3"}

    def test_trees_hashable(self):
        r1, r2, _ = rels()
        assert hash(inner(r1, r2, eq("a", "c"))) == hash(inner(r1, r2, eq("a", "c")))


class TestSelectProject:
    def test_select_preserves_schema(self):
        r1, _, _ = rels()
        s = Select(r1, eq("a", "b"))
        assert s.real_attrs == r1.real_attrs
        assert s.children() == (r1,)

    def test_project_restricts(self):
        r1, r2, _ = rels()
        j = inner(r1, r2, eq("a", "c"))
        p = Project(j, ("a", "d"))
        assert p.real_attrs == ("a", "d")

    def test_project_unknown_attr_rejected(self):
        r1, _, _ = rels()
        with pytest.raises(ExprError):
            Project(r1, ("zzz",))

    def test_distinct_project_drops_virtuals(self):
        r1, _, _ = rels()
        assert Project(r1, ("a",), distinct=True).virtual_attrs == ()


class TestGroupBy:
    def test_schema(self):
        r1, _, _ = rels()
        g = GroupBy(r1, ("a",), (count_star("n"),), "v")
        assert g.real_attrs == ("a", "n")
        assert g.virtual_attrs == ("#v",)

    def test_group_on_virtuals(self):
        r1, r2, _ = rels()
        j = inner(r1, r2, eq("a", "c"))
        g = GroupBy(j, ("#r1", "a"), (count_star("n"),), "v")
        assert "#r1" in g.virtual_attrs
        assert g.real_attrs == ("a", "n")

    def test_owner_of_aggregate_output(self):
        r1, r2, _ = rels()
        j = inner(r1, r2, eq("a", "c"))
        g = GroupBy(j, ("a",), (sum_("d", "s"), count_star("n")), "v")
        assert g.attr_owners["s"] == {"r2"}
        assert g.attr_owners["n"] == {"r1", "r2"}

    def test_unknown_key_rejected(self):
        r1, _, _ = rels()
        with pytest.raises(ExprError):
            GroupBy(r1, ("zzz",), (), "v")


class TestGenSelectAndPreserved:
    def test_preserved_for_joins(self):
        r1, r2, r3 = rels()
        q = left_outer(inner(r1, r2, eq("a", "c")), r3, eq("d", "e"))
        pres = preserved_for(q, {"r1", "r2"})
        assert pres.real == {"a", "b", "c", "d"}
        assert pres.virtual == {"#r1", "#r2"}
        assert pres.name == "r1r2"

    def test_preserved_for_above_groupby(self):
        r1, r2, r3 = rels()
        j = inner(r1, r2, eq("a", "c"))
        g = GroupBy(j, ("a", "c"), (count_star("n"),), "v")
        q = left_outer(g, r3, eq("a", "e"))
        pres = preserved_for(q, {"r1", "r2"})
        # group keys owned by r1/r2 plus the count (owned by both),
        # and the GroupBy's own virtual id (owned by {r1, r2})
        assert pres.real == {"a", "c", "n"}
        assert pres.virtual == {"#v"}
        pres2 = preserved_for(q, {"r1"})
        assert pres2.real == {"a"}
        assert pres2.virtual == frozenset()

    def test_preserved_unknown_name_rejected(self):
        r1, r2, _ = rels()
        q = inner(r1, r2, eq("a", "c"))
        with pytest.raises(ExprError):
            preserved_for(q, {"nope"})

    def test_gen_select_scope_checked(self):
        r1, r2, _ = rels()
        q = inner(r1, r2, eq("a", "c"))
        pres = preserved_for(q, {"r1"})
        GenSelect(q, eq("b", "d"), (pres,))  # fine
        pres_r2 = preserved_for(q, {"r2"})
        with pytest.raises(ExprError):
            GenSelect(r1, eq("a", "b"), (pres_r2,))  # r2 attrs not in r1's scope

    def test_walk(self):
        r1, r2, r3 = rels()
        q = full_outer(inner(r1, r2, eq("a", "c")), r3, eq("d", "e"))
        names = [n.name for n in q.walk() if isinstance(n, BaseRel)]
        assert names == ["r1", "r2", "r3"]
