"""Tests for the interpreter and the pretty printer."""

import pytest

from repro.expr import (
    BaseRel,
    Database,
    GenSelect,
    GroupBy,
    Project,
    Select,
    evaluate,
    full_outer,
    inner,
    left_outer,
    preserved_for,
    to_algebra,
)
from repro.expr.display import to_tree
from repro.expr.nodes import ExprError
from repro.expr.predicates import TRUE, cmp_const, eq, make_conjunction
from repro.relalg import Relation
from repro.relalg.aggregates import count_star
from repro.relalg.nulls import NULL


@pytest.fixture()
def db():
    return Database(
        {
            "r1": Relation.base("r1", ["a", "b"], [(1, 10), (2, 20), (3, 30)]),
            "r2": Relation.base("r2", ["c", "d"], [(1, "x"), (1, "y"), (9, "z")]),
            "r3": Relation.base("r3", ["e", "g"], [(10, "p"), (40, "q")]),
        }
    )


R1 = BaseRel("r1", ("a", "b"))
R2 = BaseRel("r2", ("c", "d"))
R3 = BaseRel("r3", ("e", "g"))


class TestEvaluate:
    def test_base(self, db):
        assert len(evaluate(R1, db)) == 3

    def test_base_schema_mismatch(self, db):
        with pytest.raises(ExprError, match="expects"):
            evaluate(BaseRel("r1", ("wrong",)), db)

    def test_missing_base(self):
        with pytest.raises(ExprError, match="no base relation"):
            evaluate(R1, Database())

    def test_select(self, db):
        out = evaluate(Select(R1, cmp_const("a", ">=", 2)), db)
        assert sorted(r["a"] for r in out) == [2, 3]

    def test_project_bag_and_distinct(self, db):
        out = evaluate(Project(R2, ("c",)), db)
        assert sorted(r["c"] for r in out) == [1, 1, 9]
        out = evaluate(Project(R2, ("c",), distinct=True), db)
        assert sorted(r["c"] for r in out) == [1, 9]

    def test_inner_join(self, db):
        out = evaluate(inner(R1, R2, eq("a", "c")), db)
        assert len(out) == 2

    def test_cartesian_product(self, db):
        out = evaluate(inner(R1, R2, TRUE), db)
        assert len(out) == 9

    def test_left_outer_join(self, db):
        out = evaluate(left_outer(R1, R2, eq("a", "c")), db)
        assert len(out) == 4

    def test_full_outer_join(self, db):
        out = evaluate(full_outer(R1, R2, eq("a", "c")), db)
        assert len(out) == 5

    def test_group_by(self, db):
        g = GroupBy(R2, ("c",), (count_star("n"),), "v")
        out = evaluate(g, db)
        assert {(r["c"], r["n"]) for r in out} == {(1, 2), (9, 1)}

    def test_gen_select(self, db):
        q = left_outer(R1, R2, eq("a", "c"))
        pres = preserved_for(q, {"r1"})
        gs = GenSelect(q, cmp_const("d", "=", "x"), (pres,))
        out = evaluate(gs, db)
        # (1,10,1,x) survives; the a=1 r1-tuple therefore survives, and
        # the unmatched a=2, a=3 r1-tuples are preserved null-padded.
        assert len(out) == 3
        matched = [r for r in out if r["d"] != NULL]
        assert len(matched) == 1 and matched[0]["d"] == "x"

    def test_nested_three_way(self, db):
        q = left_outer(
            inner(R1, R2, eq("a", "c")), R3, make_conjunction([eq("b", "e")])
        )
        out = evaluate(q, db)
        assert len(out) == 2


class TestDisplay:
    def test_algebra_symbols(self):
        q = full_outer(inner(R1, R2, eq("a", "c")), R3, eq("d", "g"))
        s = to_algebra(q)
        assert "⋈" in s and "↔" in s and "r3" in s

    def test_cartesian_symbol(self):
        assert "×" in to_algebra(inner(R1, R2, TRUE))

    def test_gen_select_rendering(self):
        q = left_outer(R1, R2, eq("a", "c"))
        gs = GenSelect(q, eq("b", "d"), (preserved_for(q, {"r1"}),))
        s = to_algebra(gs)
        assert s.startswith("σ*[b = d][r1]")

    def test_group_by_rendering(self):
        g = GroupBy(R1, ("a",), (count_star("n"),), "v")
        assert "n=count(*)" in to_algebra(g)

    def test_tree_rendering_indents(self):
        q = left_outer(R1, R2, eq("a", "c"))
        lines = to_tree(q).splitlines()
        assert lines[0].startswith("→")
        assert lines[1] == "  r1"
        assert lines[2] == "  r2"
