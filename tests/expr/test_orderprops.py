"""Static order properties: what each plan shape promises, verified.

``provided_order`` claims an order only when all three engines
provably emit it; these tests check both directions -- the claims
made (inner joins pass the left child's order through, GROUP BY keeps
a group-key prefix, Sort provides its keys) and the claims refused
(outer joins, σ*, distinct).  The *verification* that the claims hold
at runtime lives in ``tests/exec/test_order_equivalence.py``; here we
pin the algebra.
"""

from repro.expr.nodes import (
    BaseRel,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    Sort,
)
from repro.expr.orderprops import (
    normalize_order,
    order_satisfies,
    provided_order,
    streaming_run_prefix,
)
from repro.expr.predicates import Col, Comparison
from repro.relalg.aggregates import AggregateFunction, AggregateSpec


def _rel(name, attrs):
    return BaseRel(name, tuple(attrs))


R1 = _rel("r1", ("a", "b"))
R2 = _rel("r2", ("c", "d"))
EQ_AC = Comparison(Col("a"), "=", Col("c"))


class TestNormalizeOrder:
    def test_drops_repeated_attributes(self):
        assert normalize_order(
            [("a", False), ("b", True), ("a", True)]
        ) == (("a", False), ("b", True))

    def test_empty(self):
        assert normalize_order([]) == ()


class TestProvidedOrder:
    def test_base_rel_promises_nothing(self):
        assert provided_order(R1) == ()

    def test_sort_provides_its_keys(self):
        s = Sort(R1, (("a", False), ("b", True)))
        assert provided_order(s) == (("a", False), ("b", True))

    def test_select_passes_through(self):
        s = Select(Sort(R1, (("a", False),)), Comparison(Col("a"), "<", Col("b")))
        assert provided_order(s) == (("a", False),)

    def test_inner_join_passes_left_order(self):
        j = Join(JoinKind.INNER, Sort(R1, (("a", False),)), R2, EQ_AC)
        assert provided_order(j) == (("a", False),)

    def test_outer_join_claims_nothing(self):
        for kind in (JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL):
            j = Join(kind, Sort(R1, (("a", False),)), R2, EQ_AC)
            assert provided_order(j) == ()

    def test_group_by_keeps_group_key_prefix(self):
        g = GroupBy(
            Sort(R1, (("a", False), ("b", False))),
            ("a",),
            (AggregateSpec("n", AggregateFunction.COUNT),),
            name="g",
        )
        # "a" is a group key, "b" is aggregated away: prefix stops there
        assert provided_order(g) == (("a", False),)

    def test_project_stops_at_dropped_attr(self):
        p = Project(Sort(R1, (("a", False), ("b", False))), ("b",))
        assert provided_order(p) == ()

    def test_distinct_claims_nothing(self):
        p = Project(Sort(R1, (("a", False),)), ("a",), distinct=True)
        assert provided_order(p) == ()

    def test_rename_maps_attributes(self):
        r = Rename(Sort(R1, (("a", False),)), (("a", "z"),))
        assert provided_order(r) == (("z", False),)


class TestOrderSatisfies:
    def test_finer_satisfies_coarser(self):
        assert order_satisfies(
            (("a", False), ("b", True)), (("a", False),)
        )

    def test_coarser_does_not_satisfy_finer(self):
        assert not order_satisfies(
            (("a", False),), (("a", False), ("b", True))
        )

    def test_direction_matters(self):
        assert not order_satisfies((("a", True),), (("a", False),))

    def test_equivalence_class_substitution(self):
        eq = {"a": frozenset({"a", "c"}), "c": frozenset({"a", "c"})}
        assert order_satisfies((("a", False),), (("c", False),), eq)
        assert not order_satisfies((("a", False),), (("d", False),), eq)

    def test_required_dedupe_before_matching(self):
        # ORDER BY a, a is just ORDER BY a
        assert order_satisfies(
            (("a", False),), (("a", False), ("a", True))
        )


class TestStreamingRunPrefix:
    def test_prefix_confined_to_allowed(self):
        assert streaming_run_prefix(
            (("a", False), ("b", True), ("c", False)), {"a", "b"}
        ) == ("a", "b")

    def test_direction_ignored(self):
        assert streaming_run_prefix((("a", True),), {"a"}) == ("a",)

    def test_stops_at_first_outside_attr(self):
        assert streaming_run_prefix(
            (("x", False), ("a", False)), {"a"}
        ) == ()
