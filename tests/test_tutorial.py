"""Every code block in docs/TUTORIAL.md must run (and keep running)."""

import re
from pathlib import Path

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_blocks_execute():
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 6
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(block, namespace)  # noqa: S102 - deliberate doc execution
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(f"tutorial block {index} failed: {exc}") from exc
