"""Process-chaos suite: seeded storms that kill, wedge and crash workers.

The thread-mode chaos suite (``test_chaos.py``) proves the containment
story for failures Python can catch.  This suite proves the story for
the ones it cannot: every scenario runs a seeded workload through a
``isolation="process"`` service while ``worker:kill9`` / ``worker:exit``
clauses SIGKILL or hard-exit the children mid-query (sometimes alongside
ordinary in-child engine crashes), and checks the invariants:

* **No wrong answer escapes.**  Every delivered result equals the
  fault-free reference evaluation of its query -- a retried query after
  a worker death included.
* **Every worker death is journaled and typed.**  What escapes
  ``result()`` is a :class:`repro.errors.ReproError`; a query that
  exhausted its retries (or was quarantined as poisoned) surfaces
  :class:`repro.errors.WorkerCrashed` with matching incidents.
* **The pool heals.**  Deaths are matched by restarts (visible in both
  the supervisor counters and ``repro_worker_restarts_total``), and a
  fresh query still gets the full worker complement afterwards.
* **Shutdown is clean**: every ticket settles, every dispatcher joins,
  every child process is reaped.

Seeds are offsets from ``REPRO_CHAOS_SEED`` (default 1337), same
convention as the thread suite, so a red CI run reproduces locally.
"""

import dataclasses
import os
import random

import pytest

from repro.errors import ReproError, WorkerCrashed
from repro.expr import evaluate
from repro.runtime.faults import FaultPlan
from repro.runtime.procpool import ProcPoolConfig
from repro.runtime.service import BreakerConfig, QueryService
from repro.workloads.random_db import random_database, random_join_query

SEED_BASE = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))

N_PROC_SCENARIOS = 12

#: always exactly one process-level clause per storm ...
_PROC_FAULT_MENU = [
    "worker:kill9@{p}",
    "worker:exit@{p}",
]

#: ... optionally joined by in-child faults, so engine fallback and the
#: process machinery are exercised against each other
_CHILD_FAULT_MENU = [
    "vector:crash@{p}",
    "hash.scan:crash@{p}",
    "cache.get:latency=1ms@{p}",
]

#: impatient supervision: restarts are near-free, a poisoned query is
#: allowed three deaths so most storms see successful retries too
_STORM_POOL = ProcPoolConfig(
    heartbeat_timeout_s=1.0,
    restart_backoff_s=0.01,
    restart_backoff_cap_s=0.05,
    restart_jitter_s=0.0,
    poison_threshold=3,
)


def build_proc_scenario(seed: int):
    """Database, queries, fault plan and knobs from one seed."""
    rng = random.Random(seed)
    n_rel = rng.randint(2, 3)
    names = [f"r{i}" for i in range(1, n_rel + 1)]
    db = random_database(rng, names, max_rows=4, null_probability=0.2, min_rows=1)
    queries = [
        random_join_query(rng, n_rel, outer_probability=0.5)
        for _ in range(rng.randint(3, 6))
    ]
    clauses = [rng.choice(_PROC_FAULT_MENU)]
    clauses += rng.sample(_CHILD_FAULT_MENU, rng.randint(0, 2))
    plan_text = ",".join(
        clause.format(p=round(rng.uniform(0.15, 0.5), 2)) for clause in clauses
    )
    return {
        "db": db,
        "queries": queries,
        "fault_plan": FaultPlan.parse(plan_text, seed=seed),
        "workers": rng.randint(1, 2),
        "engine": rng.choice(["vector", "hash"]),
    }


@pytest.mark.parametrize("offset", range(N_PROC_SCENARIOS))
def test_proc_storm_contains_worker_death(offset):
    seed = SEED_BASE + 3000 + offset
    scenario = build_proc_scenario(seed)
    db = scenario["db"]

    # ground truth computed fault-free, before any injection is active
    expected = [evaluate(q, db) for q in scenario["queries"]]

    service = QueryService(
        db,
        workers=scenario["workers"],
        queue_depth=64,
        engine=scenario["engine"],
        verify=True,
        isolation="process",
        fault_plan=scenario["fault_plan"],
        procpool=_STORM_POOL,
        breaker=BreakerConfig(failure_threshold=2, window_s=600.0, cooldown_s=600.0),
    )
    try:
        tickets = [service.submit(q) for q in scenario["queries"]]
        outcomes = []
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=120))
            except ReproError as exc:
                outcomes.append(exc)
            # anything else (bare Exception) fails the test by escaping

        crashes = 0
        for query, truth, outcome in zip(scenario["queries"], expected, outcomes):
            if isinstance(outcome, WorkerCrashed):
                crashes += 1
                # a query that died past its retry budget left a trail
                kinds = (
                    ("worker-crashed", "poisoned-query-quarantined")
                    if outcome.poisoned
                    else ("worker-crashed",)
                )
                assert any(
                    incident.kind in kinds for incident in service.incidents
                ), f"seed {seed}: WorkerCrashed without incident: {outcome!r}"
                continue
            if isinstance(outcome, ReproError):
                assert any(
                    incident.kind
                    in (
                        "query-failed",
                        "budget-exhausted",
                        "query-cancelled",
                        "engine-failure",
                    )
                    for incident in service.incidents
                ), f"seed {seed}: failure without incident: {outcome!r}"
                continue
            # THE invariant: a SIGKILLed worker mid-query never changes
            # an answer -- the retry starts clean on a fresh process
            assert outcome.relation.same_content(truth), (
                f"seed {seed}: wrong answer from engine {outcome.engine} "
                f"for {query}"
            )

        # every worker death was matched by a restart (or surfaced as a
        # typed WorkerCrashed once retries were exhausted), and the two
        # ledgers -- supervisor counters and metrics -- agree
        supervisor = service._supervisor
        deaths = service.incidents.count("worker-crashed")
        restarts_metric = sum(
            series["value"]
            for series in service.metrics.to_dict()[
                "repro_worker_restarts_total"
            ]["series"]
        )
        assert restarts_metric == supervisor.restarts
        assert (
            service.metrics.counter("repro_worker_restarts_total").value_for(
                reason="start"
            )
            >= 1.0
        )
        assert supervisor.retries == (
            service.metrics.counter("repro_worker_retries_total").value_for()
        )
        assert supervisor.retries <= deaths

        # the books balance
        snap = service.snapshot()
        assert snap["completed"] + snap["failed"] == len(tickets)
        assert snap["failed"] >= crashes

        # worker deaths never take the shared pages with them: every
        # segment the supervisor built is still mapped mid-storm
        registry = service._supervisor.page_registry
        segments = registry.segment_names() if registry is not None else []
        for segment in segments:
            assert os.path.exists(f"/dev/shm/{segment}"), (
                f"seed {seed}: segment {segment} lost during the storm"
            )
    finally:
        service.close()

    # clean shutdown: every ticket settled, dispatchers joined, children
    # reaped, and every shared segment unlinked
    assert all(t.done() for t in tickets)
    for thread in service._threads:
        assert not thread.is_alive()
    assert all(slot.process is None for slot in service._supervisor._slots)
    for segment in segments:
        assert not os.path.exists(f"/dev/shm/{segment}"), (
            f"seed {seed}: segment {segment} leaked past close()"
        )


def test_same_seed_reproduces_the_same_proc_storm():
    """Kill storms are reproducible: the attempt-salted fault streams
    make retries deterministic too, so identical seeds give identical
    outcome traces (single worker pins the processing order)."""

    def run_once():
        scenario = build_proc_scenario(SEED_BASE + 3000)
        service = QueryService(
            scenario["db"],
            workers=1,
            queue_depth=64,
            engine=scenario["engine"],
            isolation="process",
            fault_plan=scenario["fault_plan"],
            procpool=_STORM_POOL,
            breaker=BreakerConfig(failure_threshold=2, window_s=600.0, cooldown_s=600.0),
        )
        trace = []
        try:
            for query in scenario["queries"]:
                try:
                    result = service.run(query, timeout=120)
                    trace.append(("ok", result.engine, len(result.relation)))
                except ReproError as exc:
                    trace.append(("err", type(exc).__name__))
        finally:
            service.close()
        return trace

    assert run_once() == run_once()


def test_supervisor_restores_the_worker_complement():
    """After a poisoned query grinds its slot through restarts, a clean
    query still finds a full pool: the supervisor respawned the dead
    worker and answers from it."""
    rng = random.Random(SEED_BASE)
    db = random_database(rng, ["r1", "r2"], max_rows=3, min_rows=1)
    poison = random_join_query(rng, 2)
    clean = random_join_query(rng, 2)
    expected = evaluate(clean, db)
    service = QueryService(
        db,
        workers=2,
        isolation="process",
        # index 0 (and only index 0) is killed on every delivery
        fault_plan=FaultPlan.parse("worker:kill9@1", seed=SEED_BASE),
        procpool=dataclasses.replace(_STORM_POOL, poison_threshold=2),
    )
    try:
        with pytest.raises(WorkerCrashed) as info:
            service.run(poison, timeout=120)
        assert info.value.poisoned
        # the fault stream is per-admission-index: the clean query's
        # stream still rolls kill9@1, so quarantine is what protects
        # the pool -- but a *different* fingerprint is its own stream
        # of deaths.  Disable the plan for the recovery probe instead.
        service.fault_plan = None
        service._supervisor._init_blob = service._supervisor._build_init_blob()
        for slot in service._supervisor._slots:
            service._supervisor._kill(slot, "test-reset")
        result = service.run(clean, timeout=120)
        assert result.relation.same_content(expected)
        snap = service.snapshot()["procpool"]
        assert snap["workers"] == 2
        assert snap["restarts"] >= 3  # 2 initial spawns + respawn after kill
        assert snap["poisoned"] == 1
    finally:
        service.close()
