"""Failure injection: malformed inputs must fail loudly and clearly."""

import pytest

from repro.cli import load_csv_database, run_script
from repro.expr import BaseRel, Database, evaluate
from repro.expr.nodes import ExprError
from repro.relalg import Relation
from repro.relalg.schema import SchemaError
from repro.sql import SqlCatalog, SqlParseError, SqlTranslationError, parse_select, translate


class TestCsvFailures:
    def test_empty_csv_file(self, tmp_path):
        (tmp_path / "t.csv").write_text("")
        with pytest.raises(SystemExit, match="no header"):
            load_csv_database(tmp_path)

    def test_ragged_rows_rejected(self, tmp_path):
        (tmp_path / "t.csv").write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            load_csv_database(tmp_path)

    def test_duplicate_header_rejected(self, tmp_path):
        (tmp_path / "t.csv").write_text("a,a\n1,2\n")
        with pytest.raises((SchemaError, ValueError)):
            load_csv_database(tmp_path)


class TestSchemaMismatches:
    def test_query_against_missing_table(self):
        catalog = SqlCatalog({"t": ("a",)})
        db = Database()  # empty!
        translation = translate(parse_select("select a from t"), catalog)
        with pytest.raises(ExprError, match="no base relation"):
            evaluate(translation.expr, db)

    def test_stale_catalog_detected(self):
        """Catalog says (a, b); the database has (a, c): loud failure."""
        catalog = SqlCatalog({"t": ("a", "b")})
        db = Database({"t": Relation.base("t", ["a", "c"], [(1, 2)])})
        translation = translate(parse_select("select a from t"), catalog)
        with pytest.raises(ExprError, match="expects"):
            evaluate(translation.expr, db)

    def test_forward_view_reference_resolves(self):
        """Views resolve lazily: definition order does not matter."""
        from repro.sql import parse_statements

        catalog = SqlCatalog({"t": ("a",)})
        stmts = parse_statements(
            "create view v as select a from w;"
            "create view w as select a from t;"
        )
        catalog.add_view(stmts[0])
        catalog.add_view(stmts[1])
        translate(parse_select("select a from v"), catalog)  # no error

    def test_view_cycle_detected(self):
        """A self-referential view fails clearly, not by recursion."""
        from repro.sql import parse_statements

        catalog = SqlCatalog({"t": ("a",)})
        stmts = parse_statements(
            "create view v as select a from w;"
            "create view w as select a from v;"
        )
        catalog.add_view(stmts[0])
        catalog.add_view(stmts[1])
        with pytest.raises(SqlTranslationError, match="itself"):
            translate(parse_select("select a from v"), catalog)


class TestScriptErrors:
    def test_garbage_sql_is_a_parse_error(self):
        with pytest.raises(SqlParseError):
            parse_select("selekt a from t")

    def test_unknown_view_column(self):
        from repro.sql import parse_statements

        catalog = SqlCatalog({"t": ("a",)})
        stmts = parse_statements(
            "create view v as select a from t; select nope from v;"
        )
        catalog.add_view(stmts[0])
        with pytest.raises(SqlTranslationError, match="unknown column"):
            translate(stmts[1], catalog)

    def test_duplicate_view_registration(self):
        from repro.sql import parse_statements

        catalog = SqlCatalog({"t": ("a",)})
        stmts = parse_statements("create view v as select a from t;")
        catalog.add_view(stmts[0])
        with pytest.raises(ValueError, match="duplicate"):
            catalog.add_view(stmts[0])
