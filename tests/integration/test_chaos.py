"""Chaos suite: seeded fault storms against the concurrent service.

Each scenario derives everything -- database, queries, fault plan,
concurrency -- from one seed, runs the workload through a
:class:`QueryService` with differential verification on, and checks
the containment invariants:

* **No wrong answer escapes.**  Every result equals the fault-free
  reference evaluation of its query.
* **Every contained failure is journaled.**  A query that fell back
  past its first engine, or failed outright, has a matching incident.
* **Failures are typed.**  Whatever escapes ``result()`` is a
  :class:`repro.errors.ReproError`, never a bare stack unwind.
* **Quarantined plans stay quarantined** for the life of the service.
* **Shutdown is clean**: ``close()`` settles every ticket and joins
  every worker.

Seeds are offsets from ``REPRO_CHAOS_SEED`` (default 1337), so CI can
pin one storm and a red run reproduces locally with the same number.
"""

import os
import random

import pytest

from repro.errors import ReproError
from repro.expr import BaseRel, Database, JoinKind, evaluate
from repro.expr.nodes import Join
from repro.expr.predicates import eq
from repro.optimizer import TableStats
from repro.optimizer.stats import Statistics
from repro.relalg import Relation
from repro.runtime.faults import FaultPlan
from repro.runtime.feedback import FeedbackStore
from repro.runtime.service import FALLBACK_CHAIN, BreakerConfig, QueryService
from repro.workloads.random_db import random_database, random_join_query

SEED_BASE = int(os.environ.get("REPRO_CHAOS_SEED", "1337"))

N_SCENARIOS = 24

N_ADAPTIVE_SCENARIOS = 10

#: fault clause templates the storm generator draws from
_FAULT_MENU = [
    "vector:crash@{p}",
    "hash:crash@{p}",
    "vector.join:crash@{p}",
    "hash.scan:crash@{p}",
    "cache.get:crash@{p}",
    "cache:latency=1ms@{p}",
    "vector:latency=2ms@{p}",
    "stats:perturb=8x",
    "stats:perturb=0.1x",
]


def build_scenario(seed: int):
    """Database, queries, fault plan, and service knobs from one seed."""
    rng = random.Random(seed)
    n_rel = rng.randint(2, 4)
    names = [f"r{i}" for i in range(1, n_rel + 1)]
    db = random_database(
        rng, names, max_rows=4, null_probability=0.2, min_rows=1
    )
    queries = [
        random_join_query(rng, n_rel, outer_probability=0.5)
        for _ in range(rng.randint(4, 8))
    ]
    clauses = rng.sample(_FAULT_MENU, rng.randint(1, 3))
    plan_text = ",".join(
        clause.format(p=round(rng.uniform(0.1, 0.9), 2)) for clause in clauses
    )
    return {
        "db": db,
        "queries": queries,
        "fault_plan": FaultPlan.parse(plan_text, seed=seed),
        "workers": rng.randint(1, 3),
        "engine": rng.choice(["vector", "hash"]),
    }


@pytest.mark.parametrize("offset", range(N_SCENARIOS))
def test_fault_storm_contains_every_failure(offset):
    seed = SEED_BASE + offset
    scenario = build_scenario(seed)
    db = scenario["db"]

    # ground truth computed fault-free, before any injection is active
    expected = [evaluate(q, db) for q in scenario["queries"]]

    service = QueryService(
        db,
        workers=scenario["workers"],
        queue_depth=64,
        engine=scenario["engine"],
        verify=True,
        fault_plan=scenario["fault_plan"],
        breaker=BreakerConfig(failure_threshold=2, window_s=600.0, cooldown_s=600.0),
    )
    try:
        tickets = [service.submit(q) for q in scenario["queries"]]
        outcomes = []
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=120))
            except ReproError as exc:
                outcomes.append(exc)
            # anything else (bare Exception) fails the test by escaping

        for query, truth, outcome in zip(
            scenario["queries"], expected, outcomes
        ):
            if isinstance(outcome, ReproError):
                # invariant: a failed query left a journal trail
                assert any(
                    incident.kind
                    in (
                        "query-failed",
                        "budget-exhausted",
                        "query-cancelled",
                        "engine-failure",
                    )
                    for incident in service.incidents
                ), f"seed {seed}: failure without incident: {outcome!r}"
                continue
            # invariant: no wrong answer escapes, whatever was injected
            assert outcome.relation.same_content(truth), (
                f"seed {seed}: wrong answer from engine {outcome.engine} "
                f"for {query}"
            )
            # invariant: a rerouted query has incidents explaining why
            crash_attempts = [
                attempt
                for attempt in outcome.attempts
                if attempt[1] != "breaker-open"
            ]
            if crash_attempts:
                assert service.incidents.count("engine-failure") >= len(
                    crash_attempts
                ), f"seed {seed}: reroute without engine-failure incident"
            # invariant: a quarantined plan is remembered by the service
            if outcome.verified is False:
                assert len(service.quarantined) >= 1

        # invariant: quarantined plans never come back out of the cache
        for plan in service.quarantined:
            assert service.plan_cache.evict_plan(plan) == 0, (
                f"seed {seed}: quarantined plan still cached"
            )

        # invariant: the books balance
        snap = service.snapshot()
        assert snap["completed"] + snap["failed"] == len(tickets)
    finally:
        service.close()

    # invariant: clean shutdown -- every ticket settled, workers joined
    assert all(t.done() for t in tickets)
    for thread in service._threads:
        assert not thread.is_alive()


def test_same_seed_reproduces_the_same_storm():
    """The whole point of seeding: identical seeds, identical outcomes."""
    def run_once():
        scenario = build_scenario(SEED_BASE)
        service = QueryService(
            scenario["db"],
            workers=1,  # single worker: identical processing order too
            queue_depth=64,
            engine=scenario["engine"],
            fault_plan=scenario["fault_plan"],
            breaker=BreakerConfig(failure_threshold=2),
        )
        trace = []
        try:
            for query in scenario["queries"]:
                try:
                    result = service.run(query, timeout=120)
                    trace.append(("ok", result.engine, len(result.relation)))
                except ReproError as exc:
                    trace.append(("err", type(exc).__name__))
        finally:
            service.close()
        return trace

    assert run_once() == run_once()


#: fault menu for adaptive storms: lying statistics force re-plans,
#: poisoned feedback exercises quarantine, and crashes at the replan
#: sites prove a re-plan storm is contained like any other failure
_ADAPTIVE_FAULT_MENU = [
    "stats:perturb=0.05x",
    "stats:perturb=8x",
    "stats:perturb=64x",
    "feedback:perturb=16x",
    "feedback:perturb=0.1x",
    "vector.join:crash@{p}",
    "hash.scan:crash@{p}",
    "replan.trigger:crash@{p}",
    "replan.reoptimize:crash@{p}",
]


def build_adaptive_scenario(seed: int):
    """An adaptive storm: misestimation + poisoned feedback + crashes."""
    rng = random.Random(seed)
    n_rel = rng.randint(2, 4)
    names = [f"r{i}" for i in range(1, n_rel + 1)]
    db = random_database(
        rng, names, max_rows=5, null_probability=0.2, min_rows=2
    )
    queries = [
        random_join_query(rng, n_rel, outer_probability=0.4)
        for _ in range(rng.randint(3, 6))
    ]
    clauses = rng.sample(_ADAPTIVE_FAULT_MENU, rng.randint(2, 3))
    plan_text = ",".join(
        clause.format(p=round(rng.uniform(0.1, 0.6), 2)) for clause in clauses
    )
    return {
        "db": db,
        "queries": queries,
        "fault_plan": FaultPlan.parse(plan_text, seed=seed),
        "workers": rng.randint(1, 3),
        "engine": rng.choice(["vector", "hash"]),
        "threshold": rng.choice([2.0, 4.0, 8.0]),
    }


@pytest.mark.parametrize("offset", range(N_ADAPTIVE_SCENARIOS))
def test_adaptive_storm_contains_misestimation(offset):
    """Re-planning under fire: lying stats trigger mid-query re-plans,
    ``feedback:perturb`` poisons the store, crashes hit the replan
    sites themselves -- and still no wrong answer escapes.  Every
    query runs twice so corrections learned by the first pass steer
    the second pass's planning."""
    seed = SEED_BASE + 1000 + offset
    scenario = build_adaptive_scenario(seed)
    db = scenario["db"]

    expected = [evaluate(q, db) for q in scenario["queries"]]

    feedback = FeedbackStore(suspect_ratio=1e3)
    service = QueryService(
        db,
        workers=scenario["workers"],
        queue_depth=64,
        engine=scenario["engine"],
        verify=True,
        fault_plan=scenario["fault_plan"],
        breaker=BreakerConfig(failure_threshold=2, window_s=600.0, cooldown_s=600.0),
        feedback=feedback,
        replan_threshold=scenario["threshold"],
    )
    try:
        doubled = scenario["queries"] + scenario["queries"]
        truths = expected + expected
        tickets = [service.submit(q) for q in doubled]
        outcomes = []
        for ticket in tickets:
            try:
                outcomes.append(ticket.result(timeout=120))
            except ReproError as exc:
                outcomes.append(exc)

        for query, truth, outcome in zip(doubled, truths, outcomes):
            if isinstance(outcome, ReproError):
                assert any(
                    incident.kind
                    in (
                        "query-failed",
                        "budget-exhausted",
                        "query-cancelled",
                        "engine-failure",
                    )
                    for incident in service.incidents
                ), f"seed {seed}: failure without incident: {outcome!r}"
                continue
            # THE invariant: re-planning mid-flight, resuming from
            # cached intermediates, and poisoned feedback must never
            # change an answer
            assert outcome.relation.same_content(truth), (
                f"seed {seed}: wrong answer from engine {outcome.engine} "
                f"(replans={outcome.replans}) for {query}"
            )
            # a triggered re-plan always leaves a journal trail
            if outcome.replans:
                assert service.incidents.count("replan") >= 1, (
                    f"seed {seed}: replan without incident"
                )

        # the store never wedges: poisoned fingerprints are quarantined,
        # the rest keep serving (counters stay coherent)
        counters = feedback.counters()
        assert counters["quarantined_entries"] <= counters["entries"]
        assert counters["generation"] >= counters["quarantines"]

        snap = service.snapshot()
        assert snap["completed"] + snap["failed"] == len(tickets)
        assert snap["feedback"]["ingests"] == counters["ingests"]
    finally:
        service.close()

    assert all(t.done() for t in tickets)
    for thread in service._threads:
        assert not thread.is_alive()


def test_replan_storm_lands_on_a_cheaper_plan():
    """The directed misestimation storm: statistics undersell r><s by
    12x and oversell t by 50x, so the optimizer leads with the
    fan-out join.  The monitor must abort it, re-plan onto the
    (s><t)-first tree at a strictly lower estimated cost, resume, and
    answer correctly -- all visible through incidents and metrics."""
    db = Database(
        {
            "r": Relation.base(
                "r", ["r_a", "r_b"], [(i, i % 10) for i in range(120)]
            ),
            "s": Relation.base(
                "s", ["s_b", "s_c"], [(i % 10, i) for i in range(120)]
            ),
            "t": Relation.base(
                "t", ["t_c", "t_d"], [(i, i * 2) for i in range(12)]
            ),
        }
    )
    r, s, t = (
        BaseRel("r", ("r_a", "r_b")),
        BaseRel("s", ("s_b", "s_c")),
        BaseRel("t", ("t_c", "t_d")),
    )
    query = Join(
        JoinKind.INNER,
        Join(JoinKind.INNER, r, s, eq("r_b", "s_b")),
        t,
        eq("s_c", "t_c"),
    )
    truth = evaluate(query, db)
    stats = Statistics(
        {
            "r": TableStats(120, {"r_a": 120, "r_b": 120}),
            "s": TableStats(120, {"s_b": 120, "s_c": 120}),
            "t": TableStats(600, {"t_c": 120, "t_d": 120}),
        }
    )
    service = QueryService(
        db, workers=2, engine="vector", stats=stats, replan_threshold=4.0
    )
    try:
        result = service.run(query, timeout=120)
        assert result.relation.same_content(truth)
        assert result.replans == 1
        (event,) = result.replan_events
        assert event["outcome"] == "replanned"
        assert event["new_cost"] < event["old_cost"]
        # the journal and the metrics both saw it
        replan = next(i for i in service.incidents if i.kind == "replan")
        assert replan.action == "replanned"
        assert replan.detail["new_cost"] < replan.detail["old_cost"]
        service.export_metrics()
        assert (
            service.metrics.counter("repro_replans_total").value_for(
                outcome="replanned"
            )
            == 1.0
        )
        # the second submission plans with the corrected estimates:
        # no trigger, and the cheap plan is now the cached one
        again = service.run(query, timeout=120)
        assert again.replans == 0
        assert again.relation.same_content(truth)
    finally:
        service.close()


def test_breaker_storm_routes_to_the_floor():
    """With every optimized engine crashing, the floor still answers."""
    rng = random.Random(SEED_BASE)
    names = ["r1", "r2"]
    db = random_database(rng, names, max_rows=3, min_rows=1)
    query = random_join_query(rng, 2)
    expected = evaluate(query, db)
    service = QueryService(
        db,
        workers=2,
        fault_plan=FaultPlan.parse("vector:crash@1,hash:crash@1", seed=SEED_BASE),
        breaker=BreakerConfig(failure_threshold=1, cooldown_s=600.0),
    )
    try:
        for _ in range(6):
            result = service.run(query, timeout=120)
            assert result.engine == "reference"
            assert result.relation.same_content(expected)
        # both breakers opened exactly once and stayed open
        assert service.breakers["vector"].state.value == "open"
        assert service.breakers["hash"].state.value == "open"
        assert service.incidents.count("breaker-open") == 2
    finally:
        service.close()
    assert set(service.snapshot()["breakers"]) == set(FALLBACK_CHAIN)


#: fault menu for order storms: the order-machinery sites (the sort
#: enforcer, the vector merge join, the streaming group-by) plus one
#: engine-wide crash so containment is exercised alongside injection
_ORDER_FAULT_MENU = [
    "sort.enforce:crash@{p}",
    "merge.join:crash@{p}",
    "groupby.stream:crash@{p}",
    "sort.enforce:latency=1ms@{p}",
    "vector:crash@{p}",
]

N_ORDER_SCENARIOS = 2


def build_order_scenario(seed: int):
    """A storm whose queries all carry a required order, so every plan
    routes through sort enforcers (and, when the optimizer places an
    enforcer below a join, the merge/streaming paths)."""
    rng = random.Random(seed)
    n_rel = rng.randint(2, 4)
    names = [f"r{i}" for i in range(1, n_rel + 1)]
    db = random_database(
        rng, names, max_rows=4, null_probability=0.2, min_rows=1
    )
    queries = []
    for _ in range(rng.randint(4, 7)):
        query = random_join_query(rng, n_rel, outer_probability=0.4)
        attr = rng.choice(query.real_attrs)
        queries.append((query, ((attr, rng.random() < 0.5),)))
    clauses = rng.sample(_ORDER_FAULT_MENU, rng.randint(2, 3))
    plan_text = ",".join(
        clause.format(p=round(rng.uniform(0.2, 0.9), 2)) for clause in clauses
    )
    return {
        "db": db,
        "queries": queries,
        "fault_plan": FaultPlan.parse(plan_text, seed=seed),
        "workers": rng.randint(1, 3),
        "engine": rng.choice(["vector", "hash"]),
    }


@pytest.mark.parametrize("offset", range(N_ORDER_SCENARIOS))
def test_order_storm_contains_sort_and_merge_faults(offset):
    """Crashes injected at ``sort.enforce``/``merge.join``/
    ``groupby.stream`` while every query demands an output order:
    no wrong *bag* escapes, failures are typed and journaled, and
    shutdown stays clean -- the same invariants as the generic storm,
    now with the order machinery on the fault path."""
    seed = SEED_BASE + 2000 + offset
    scenario = build_order_scenario(seed)
    db = scenario["db"]

    expected = [evaluate(q, db) for q, _ in scenario["queries"]]

    service = QueryService(
        db,
        workers=scenario["workers"],
        queue_depth=64,
        engine=scenario["engine"],
        verify=True,
        fault_plan=scenario["fault_plan"],
        breaker=BreakerConfig(
            failure_threshold=2, window_s=600.0, cooldown_s=600.0
        ),
    )
    try:
        tickets = [
            service.submit(query, required_order=required)
            for query, required in scenario["queries"]
        ]
        for ticket, truth in zip(tickets, expected):
            try:
                outcome = ticket.result(timeout=120)
            except ReproError:
                assert any(
                    incident.kind
                    in (
                        "query-failed",
                        "budget-exhausted",
                        "query-cancelled",
                        "engine-failure",
                    )
                    for incident in service.incidents
                ), f"seed {seed}: failure without incident"
                continue
            assert outcome.relation.same_content(truth), (
                f"seed {seed}: wrong answer under order-site faults "
                f"(engine {outcome.engine})"
            )
        snap = service.snapshot()
        assert snap["completed"] + snap["failed"] == len(tickets)
    finally:
        service.close()
    assert all(t.done() for t in tickets)
    for thread in service._threads:
        assert not thread.is_alive()
