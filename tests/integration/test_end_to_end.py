"""End-to-end integration: SQL -> optimize -> execute (fast) -> verify.

These tests drive the whole stack the way a user would: parse a SQL
script, translate it against a catalog, optimize, execute with the
hash-join engine, and check the result against the reference
interpreter on the original (unoptimized) expression.
"""

import random

import pytest

from repro.exec import execute
from repro.expr import Database, evaluate
from repro.optimizer import Statistics, measured_cost, optimize
from repro.relalg import Relation
from repro.sql import SqlCatalog, parse_statements, parse_select, translate


def full_stack(sql_script, catalog, db, max_plans=400):
    """Parse, register views, optimize and run the final SELECT."""
    statements = parse_statements(sql_script)
    for statement in statements[:-1]:
        catalog.add_view(statement)
    translation = translate(statements[-1], catalog)
    stats = Statistics.from_database(db)
    result = optimize(translation.expr, stats, max_plans=max_plans)
    reference = evaluate(translation.expr, db)
    fast = execute(result.best, db)
    return translation, result, reference, fast


class TestSupplierScenario:
    def make(self, fraction):
        from repro.workloads.supplier import supplier_database

        rng = random.Random(8)
        db = supplier_database(
            rng, n_suppliers=10, n_parts=5, detail_rows=150,
            bankrupt_fraction=fraction,
        )
        catalog = SqlCatalog(
            {
                "agg94": ("agg94_supkey", "agg94_partkey", "agg94_qty"),
                "detail95": ("d95_supkey", "d95_partkey", "d95_date", "d95_qty"),
                "supdetail": ("sup_supkey", "sup_rating", "sup_info"),
            }
        )
        script = """
        create view v2 as
          select a.agg94_supkey as supkey, a.agg94_qty as qty,
                 a.agg94_partkey as partkey
          from agg94 a, supdetail b
          where a.agg94_supkey = b.sup_supkey and b.sup_rating = 'BANKRUPT';
        create view v3 as
          select d95_supkey as supkey, d95_partkey as partkey,
                 qty95 = count(*)
          from detail95
          group by d95_supkey, d95_partkey;
        select v2.supkey, v2.partkey, v2.qty, v3.qty95
        from v2 left outer join v3
          on v2.supkey = v3.supkey and v2.partkey = v3.partkey
             and v2.qty < 2 * v3.qty95;
        """
        return full_stack(script, catalog, db), db

    def test_fast_executor_matches_reference(self):
        (translation, result, reference, fast), db = self.make(0.2)
        assert fast.same_content(reference)

    def test_optimized_no_worse_than_written(self):
        (translation, result, reference, fast), db = self.make(0.1)
        assert measured_cost(result.best, db) <= measured_cost(
            translation.expr, db
        )


class TestNestedCountScenario:
    def test_sql_nested_count_full_stack(self):
        catalog = SqlCatalog(
            {
                "orders": ("okey", "ocust", "ototal"),
                "lineitem": ("lkey", "lorder", "lqty"),
            }
        )
        db = Database(
            {
                "orders": Relation.base(
                    "orders",
                    ["okey", "ocust", "ototal"],
                    [(1, "a", 2), (2, "b", 0), (3, "a", 1)],
                ),
                "lineitem": Relation.base(
                    "lineitem",
                    ["lkey", "lorder", "lqty"],
                    [(10, 1, 5), (11, 1, 6), (12, 3, 7)],
                ),
            }
        )
        stmt = parse_select(
            "select okey from orders where ototal = "
            "(select count(*) from lineitem where lineitem.lorder = orders.okey)"
        )
        translation = translate(stmt, catalog)
        out = evaluate(translation.expr, db)
        # order 1 has 2 lineitems (total=2 matches), order 2 has 0 (=0
        # matches, the COUNT-bug case), order 3 has 1 (=1 matches)
        assert sorted(r["okey"] for r in out) == [1, 2, 3]
        fast = execute(translation.expr, db)
        assert fast.same_content(out)


class TestMixedOuterJoinQuery:
    def test_three_way_with_complex_predicate(self):
        catalog = SqlCatalog(
            {
                "a": ("ak", "av"),
                "b": ("bk", "bv"),
                "c": ("ck", "cv"),
            }
        )
        rng = random.Random(12)

        def rows(n):
            return [(rng.randrange(3), rng.randrange(3)) for _ in range(n)]

        db = Database(
            {
                "a": Relation.base("a", ["ak", "av"], rows(5)),
                "b": Relation.base("b", ["bk", "bv"], rows(5)),
                "c": Relation.base("c", ["ck", "cv"], rows(4)),
            }
        )
        stmt = parse_select(
            "select av, bv, cv from (a join b on a.ak = b.bk) "
            "left outer join c on a.av = c.ck and b.bv = c.cv"
        )
        translation = translate(stmt, catalog)
        stats = Statistics.from_database(db)
        result = optimize(translation.expr, stats, max_plans=600)
        assert result.plans_considered > 1
        want = evaluate(translation.expr, db)
        assert evaluate(result.best, db).same_content(want)
        assert execute(result.best, db).same_content(want)

    def test_optimizer_output_stable_under_executors(self):
        """Reference and fast executors agree on every ranked plan."""
        catalog = SqlCatalog({"a": ("ak", "av"), "b": ("bk", "bv")})
        db = Database(
            {
                "a": Relation.base("a", ["ak", "av"], [(1, 1), (2, 2), (3, 3)]),
                "b": Relation.base("b", ["bk", "bv"], [(1, 9), (1, 8), (4, 7)]),
            }
        )
        stmt = parse_select(
            "select av, bv from a full outer join b on a.ak = b.bk"
        )
        translation = translate(stmt, catalog)
        stats = Statistics.from_database(db)
        result = optimize(translation.expr, stats, max_plans=100)
        for _, plan in result.ranked:
            assert execute(plan, db).same_content(evaluate(plan, db))
