"""CLI tests: CSV loading, run, explain, demo."""

import io

import pytest

from repro.cli import (
    _parse_value,
    load_csv_database,
    main,
    run_demo,
    run_script,
)
from repro.relalg.nulls import NULL


@pytest.fixture()
def data_dir(tmp_path):
    (tmp_path / "emp.csv").write_text(
        "eid,dept,salary\n1,10,100\n2,10,200\n3,20,300\n4,99,\n"
    )
    (tmp_path / "dept.csv").write_text("did,dname\n10,eng\n20,ops\n30,hr\n")
    return tmp_path


class TestCsvLoading:
    def test_value_parsing(self):
        assert _parse_value("3") == 3
        assert _parse_value("2.5") == 2.5
        assert _parse_value("eng") == "eng"
        assert _parse_value("") == NULL

    def test_load(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        assert len(db["emp"]) == 4
        assert catalog.is_table("dept")
        # empty cell became NULL
        assert any(row["salary"] == NULL for row in db["emp"])

    def test_empty_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            load_csv_database(tmp_path)


class TestRun:
    def test_run_select(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        out = io.StringIO()
        run_script(
            "select eid from emp where salary > 150;", db, catalog, out=out
        )
        text = out.getvalue()
        assert "2 row(s)" in text

    def test_run_with_view_and_outer_join(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        out = io.StringIO()
        run_script(
            """
            create view busy as
              select dept as d, n = count(*) from emp group by dept;
            select dname, n from busy left outer join dept on busy.d = dept.did;
            """,
            db,
            catalog,
            out=out,
        )
        text = out.getvalue()
        assert "view busy registered" in text
        assert "3 row(s)" in text

    def test_fast_matches_reference(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        slow, fast = io.StringIO(), io.StringIO()
        sql = "select eid, dname from emp left outer join dept on emp.dept = dept.did;"
        run_script(sql, db, catalog, out=slow)
        run_script(sql, db, catalog, out=fast, fast=True)
        assert sorted(slow.getvalue().splitlines()) == sorted(
            fast.getvalue().splitlines()
        )

    def test_vector_engine_matches_reference(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        slow, vec = io.StringIO(), io.StringIO()
        sql = (
            "select dept, n = count(*) from emp "
            "left outer join dept on emp.dept = dept.did group by dept;"
        )
        run_script(sql, db, catalog, out=slow)
        run_script(sql, db, catalog, out=vec, engine="vector")
        assert sorted(slow.getvalue().splitlines()) == sorted(
            vec.getvalue().splitlines()
        )

    def test_explain(self, data_dir):
        db, catalog = load_csv_database(data_dir)
        out = io.StringIO()
        run_script(
            "select eid, dname from emp, dept where emp.dept = dept.did;",
            db,
            catalog,
            out=out,
            explain=True,
        )
        text = out.getvalue()
        assert "plans considered" in text
        assert "chosen plan" in text


class TestMain:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "row(s)" in capsys.readouterr().out

    def test_run_command(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text("select eid from emp;")
        assert main(["run", str(script), "--data", str(data_dir)]) == 0
        assert "4 row(s)" in capsys.readouterr().out

    def test_run_command_vector_engine(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;"
        )
        args = ["run", str(script), "--data", str(data_dir), "--engine", "vector"]
        assert main(args) == 0
        assert "4 row(s)" in capsys.readouterr().out

    def test_explain_command(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;"
        )
        assert main(["explain", str(script), "--data", str(data_dir)]) == 0
        assert "measured C_out" in capsys.readouterr().out

    def test_run_degrades_under_tiny_budget(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;"
        )
        args = ["run", str(script), "--data", str(data_dir), "--max-plans", "1"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 row(s)" in out
        assert "-- stage: greedy" in out

    def test_run_with_forced_enum_tier(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp, dept where emp.dept = dept.did;"
        )
        args = [
            "run", str(script), "--data", str(data_dir),
            "--enum-tier", "goo",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        # the SQL core carries Rename nodes, which the GOO workspace
        # declines -- the ladder answers at the greedy rung below and
        # says so; the rows are still right either way
        assert "3 row(s)" in out
        assert "-- stage: greedy" in out

    def test_explain_with_forced_enum_tier(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;"
        )
        args = [
            "explain", str(script), "--data", str(data_dir),
            "--enum-tier", "partitioned",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "measured C_out" in out
        assert "-- stage: greedy" in out

    def test_unknown_enum_tier_rejected_by_argparse(self, data_dir, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text("select eid from emp;")
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", str(script), "--data", str(data_dir),
                "--enum-tier", "exhaustive",
            ])
        assert excinfo.value.code == 2

    def test_row_cap_breach_is_a_clean_error(self, data_dir, tmp_path, capsys):
        script = tmp_path / "q.sql"
        script.write_text("select eid from emp;")
        args = ["run", str(script), "--data", str(data_dir), "--max-rows", "1"]
        assert main(args) == 3
        assert "rows budget exceeded" in capsys.readouterr().err


class TestServicePath:
    """`--workers` / `--faults` route through the concurrent service."""

    def _script(self, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;"
        )
        return script

    def test_workers_flag_uses_service_and_prints_rows(
        self, data_dir, tmp_path, capsys
    ):
        script = self._script(tmp_path)
        args = ["run", str(script), "--data", str(data_dir), "--workers", "2"]
        assert main(args) == 0
        assert "4 row(s)" in capsys.readouterr().out

    def test_faults_reroute_and_report(self, data_dir, tmp_path, capsys):
        script = self._script(tmp_path)
        args = [
            "run",
            str(script),
            "--data",
            str(data_dir),
            "--engine",
            "vector",
            "--faults",
            "vector:crash@1",
            "--fault-seed",
            "7",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 row(s)" in out
        assert "-- engine: hash" in out  # rerouted off the crashing engine
        assert "-- incidents:" in out

    def test_all_engines_crashing_is_exit_5(self, data_dir, tmp_path, capsys):
        script = self._script(tmp_path)
        args = [
            "run",
            str(script),
            "--data",
            str(data_dir),
            "--faults",
            "vector:crash@1,hash:crash@1,reference:crash@1",
        ]
        assert main(args) == 5
        assert "repro:" in capsys.readouterr().err

    def test_quarantine_fallback_is_exit_4(self, data_dir, tmp_path, capsys):
        from repro.expr.nodes import Join, JoinKind
        from repro.expr.rewrite import iter_nodes, replace_at
        from repro.optimizer import OptimizationResult
        from repro.runtime import QuerySession

        def wrongify(query):
            for path, node in iter_nodes(query):
                if isinstance(node, Join) and node.kind is JoinKind.LEFT:
                    return replace_at(
                        query,
                        path,
                        Join(
                            JoinKind.INNER, node.left, node.right, node.predicate
                        ),
                    )
            return query

        def bad_optimize(query, stats, max_plans=5000, budget=None, **kwargs):
            wrong = wrongify(query)
            return OptimizationResult(
                best=wrong,
                best_cost=1.0,
                original_cost=2.0,
                plans_considered=1,
                ranked=[(1.0, wrong)],
            )

        db, catalog = load_csv_database(data_dir)
        session = QuerySession(
            db, catalog=catalog, verify=True, optimize_fn=bad_optimize
        )
        out = io.StringIO()
        code = run_script(
            "select eid, dname from emp left outer join dept "
            "on emp.dept = dept.did;",
            db,
            catalog,
            out=out,
            verify=True,
            session=session,
        )
        assert code == 4
        text = out.getvalue()
        assert "MISMATCH" in text
        assert "4 row(s)" in text  # the original query's (correct) rows

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["run", "--help"])
        assert info.value.code == 0
        assert "exit codes:" in capsys.readouterr().out


class TestObservability:
    """`--analyze`, `--trace-out`, `--metrics-out`."""

    #: Example 3.1's shape in SQL: the join condition references the
    #: count column, so the full rewrite carries a generalized selection.
    EXAMPLE31_SQL = (
        "create view busy as "
        "select dept as d, n = count(*) from emp group by dept; "
        "select dname, n from busy left outer join dept "
        "on busy.d = dept.did where n < 3;"
    )

    def _script(self, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text(self.EXAMPLE31_SQL)
        return script

    def test_analyze_prints_est_actual_and_spans(
        self, data_dir, tmp_path, capsys
    ):
        script = self._script(tmp_path)
        args = ["run", str(script), "--data", str(data_dir), "--analyze"]
        assert main(args) == 0
        out = capsys.readouterr().out
        # operator tree with estimated vs actual cardinalities + time
        assert "est=" in out and "rows=" in out and "time=" in out
        assert "Scan(emp)" in out
        # plan-lifecycle span timings follow the tree
        assert "-- spans:" in out
        assert "session.plan" in out
        assert "physical.execute" in out
        assert "ms" in out

    def test_trace_out_writes_chrome_trace(self, data_dir, tmp_path, capsys):
        import json

        script = self._script(tmp_path)
        trace = tmp_path / "trace.json"
        args = [
            "run", str(script), "--data", str(data_dir),
            "--trace-out", str(trace),
        ]
        assert main(args) == 0
        events = json.loads(trace.read_text())
        assert events, "no spans captured"
        names = {e["name"] for e in events}
        assert "session.run" in names
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid"}

    def test_metrics_out_prometheus_parses_back(
        self, data_dir, tmp_path, capsys
    ):
        from repro.runtime.metrics import parse_prometheus

        script = self._script(tmp_path)
        metrics = tmp_path / "metrics.prom"
        args = [
            "run", str(script), "--data", str(data_dir),
            "--metrics-out", str(metrics),
        ]
        assert main(args) == 0
        parsed = parse_prometheus(metrics.read_text())
        assert parsed["repro_admissions_total"]["type"] == "counter"
        samples = {
            name: value
            for name, labels, value in parsed["repro_admissions_total"][
                "samples"
            ]
        }
        assert samples["repro_admissions_total"] == 1
        latency = parsed["repro_query_latency_ms"]["samples"]
        assert any(n == "repro_query_latency_ms_count" for n, _, _ in latency)

    def test_metrics_out_json_on_service_path(
        self, data_dir, tmp_path, capsys
    ):
        import json

        script = self._script(tmp_path)
        metrics = tmp_path / "metrics.json"
        args = [
            "run", str(script), "--data", str(data_dir),
            "--workers", "2", "--metrics-out", str(metrics),
        ]
        assert main(args) == 0
        data = json.loads(metrics.read_text())
        (admissions,) = data["repro_admissions_total"]["series"]
        assert admissions["value"] == 1
        (latency,) = data["repro_query_latency_ms"]["series"]
        assert latency["count"] == 1 and latency["p50"] >= 0
