"""The QuerySession ladder: degradation, verification, containment."""

import json

import pytest

from repro.errors import OptimizerInternalError
from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel, Join, JoinKind, left_outer
from repro.expr.predicates import eq
from repro.optimizer import OptimizationResult, Statistics
from repro.relalg import Relation
from repro.runtime import Budget, DegradationLevel, QuerySession
from repro.testing import assert_equivalent
from repro.workloads.topologies import chain_query


def chain_database(n: int, rows: int = 4) -> Database:
    """Small relations matching chain_query's r<i>(r<i>_a0, r<i>_a1)."""
    db = Database()
    for i in range(1, n + 1):
        name = f"r{i}"
        db.add(
            name,
            Relation.base(
                name,
                [f"{name}_a0", f"{name}_a1"],
                [(j % 3, (j + i) % 3) for j in range(rows)],
            ),
        )
    return db


@pytest.fixture()
def emp_db() -> Database:
    return Database(
        {
            "emp": Relation.base(
                "emp",
                ["eid", "dept", "salary"],
                [(1, 10, 100), (2, 10, 200), (3, 20, 300), (4, 99, 50)],
            ),
            "dept": Relation.base(
                "dept", ["did", "dname"], [(10, "eng"), (20, "ops"), (30, "hr")]
            ),
        }
    )


EMP_DEPT_LOJ = left_outer(
    BaseRel("emp", ("eid", "dept", "salary")),
    BaseRel("dept", ("did", "dname")),
    eq("dept", "did"),
)


class TestHappyPath:
    def test_unbudgeted_run_uses_full_optimization(self, emp_db):
        session = QuerySession(emp_db)
        result = session.run(EMP_DEPT_LOJ)
        assert result.degradation_level is DegradationLevel.FULL
        assert result.degradation_reason is None
        assert result.plans_considered >= 2
        assert result.relation.same_content(evaluate(EMP_DEPT_LOJ, emp_db))

    @pytest.mark.parametrize("executor", ["reference", "hash", "vector"])
    def test_both_executors_agree(self, emp_db, executor):
        session = QuerySession(emp_db, executor=executor)
        result = session.run(EMP_DEPT_LOJ)
        assert result.relation.same_content(evaluate(EMP_DEPT_LOJ, emp_db))

    def test_run_sql_views_and_selects(self, emp_db):
        session = QuerySession(emp_db)
        outcomes = session.run_sql(
            """
            create view busy as
              select dept as d, n = count(*) from emp group by dept;
            select dname, n from busy left outer join dept on busy.d = dept.did;
            """
        )
        assert [o.kind for o in outcomes] == ["view", "select"]
        assert len(outcomes[1].result.relation) == 3


class TestFallbackChain:
    """The acceptance fixture: a tiny plan budget must degrade to the
    greedy/DP baseline and still return bag-equivalent results."""

    def test_tiny_plan_budget_degrades_to_heuristic(self):
        query = chain_query(4)  # enumeration yields dozens of plans
        db = chain_database(4)
        session = QuerySession(db, budget=Budget(max_plans=1))
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.HEURISTIC
        assert "PlanBudgetExceeded" in str(
            session.incidents.records[0].detail["error"]
        )
        assert result.degradation_reason is not None
        # the degraded answer is still the right answer ...
        assert result.relation.same_content(evaluate(query, db))
        # ... and the chosen heuristic plan is bag-equivalent to the
        # original on randomized databases (repro.testing checker)
        assert_equivalent(query, result.chosen, trials=40)

    def test_tiny_deadline_degrades_to_as_written(self):
        query = chain_query(4, complex_every=2)
        db = chain_database(4)
        session = QuerySession(db, budget=Budget(deadline_ms=0.0))
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.AS_WRITTEN
        assert result.chosen == query
        assert "deadline" in result.degradation_reason
        assert result.relation.same_content(evaluate(query, db))

    def test_heuristic_handles_outer_joins(self, emp_db):
        session = QuerySession(emp_db, budget=Budget(max_plans=1))
        result = session.run(EMP_DEPT_LOJ)
        assert result.degradation_level is DegradationLevel.HEURISTIC
        assert result.relation.same_content(evaluate(EMP_DEPT_LOJ, emp_db))
        assert_equivalent(EMP_DEPT_LOJ, result.chosen, trials=40)

    def test_budgets_do_not_leak_between_queries(self):
        query = chain_query(3)
        db = chain_database(3)
        session = QuerySession(db, budget=Budget(max_plans=200))
        first = session.run(query)
        second = session.run(query)
        # a shared budget would exhaust on the second run; a fresh
        # per-query budget keeps both at full optimization
        assert first.degradation_level is DegradationLevel.FULL
        assert second.degradation_level is DegradationLevel.FULL

    def test_every_rung_reports_machine_readable_summary(self):
        query = chain_query(3)
        db = chain_database(3)
        session = QuerySession(db, budget=Budget(max_plans=1))
        summary = session.run(query).to_dict()
        assert summary["degradation_level"] == 3
        assert summary["degradation_stage"] == "greedy"
        assert summary["budget"]["max_plans"] == 1


def _wrong_plan_for(query):
    """An INNER-for-LEFT 'rewrite' -- the classic subtle outer-join bug."""
    from repro.expr.rewrite import iter_nodes, replace_at

    for path, node in iter_nodes(query):
        if isinstance(node, Join) and node.kind is JoinKind.LEFT:
            return replace_at(
                query,
                path,
                Join(JoinKind.INNER, node.left, node.right, node.predicate),
            )
    raise AssertionError("query has no left outer join to corrupt")


def _planner_returning(plan):
    def bad_optimize(query, stats, max_plans=5000, budget=None, **kwargs):
        return OptimizationResult(
            best=plan,
            best_cost=1.0,
            original_cost=2.0,
            plans_considered=1,
            ranked=[(1.0, plan)],
        )

    return bad_optimize


class TestVerificationSafetyNet:
    """Injected wrong rewrite: verification must quarantine the plan
    and fall back to the original -- contained, not silent."""

    def test_mismatch_is_quarantined_and_contained(self, emp_db):
        wrong = _wrong_plan_for(EMP_DEPT_LOJ)
        # sanity: the wrong plan really does return different rows
        assert not evaluate(wrong, emp_db).same_content(
            evaluate(EMP_DEPT_LOJ, emp_db)
        )
        session = QuerySession(
            emp_db, verify=True, optimize_fn=_planner_returning(wrong)
        )
        result = session.run(EMP_DEPT_LOJ)
        # the user still gets the *correct* rows
        assert result.relation.same_content(evaluate(EMP_DEPT_LOJ, emp_db))
        assert result.verified is False
        assert result.degradation_level is DegradationLevel.AS_WRITTEN
        assert "quarantined" in result.degradation_reason
        # the plan is quarantined and the incident is structured
        assert wrong in session.quarantined
        assert result.incident is not None
        assert result.incident.kind == "verification-mismatch"
        record = json.loads(session.incidents.to_json_lines().splitlines()[0])
        assert record["kind"] == "verification-mismatch"
        assert record["detail"]["reference_rows"] != record["detail"]["plan_rows"]

    def test_second_run_skips_the_quarantined_plan(self, emp_db):
        wrong = _wrong_plan_for(EMP_DEPT_LOJ)
        session = QuerySession(
            emp_db, verify=True, optimize_fn=_planner_returning(wrong)
        )
        session.run(EMP_DEPT_LOJ)
        result = session.run(EMP_DEPT_LOJ)
        # the poisoned planner only offers the quarantined plan, so the
        # ladder moves to the heuristic -- which verifies clean
        assert result.degradation_level is DegradationLevel.HEURISTIC
        assert result.verified is True
        assert result.relation.same_content(evaluate(EMP_DEPT_LOJ, emp_db))

    def test_correct_plans_verify_clean(self, emp_db):
        session = QuerySession(emp_db, verify=True)
        result = session.run(EMP_DEPT_LOJ)
        assert result.verified is True
        assert result.incident is None
        assert len(session.incidents) == 0
        assert result.degradation_level is DegradationLevel.FULL

    def test_pick_plan_raises_when_everything_is_quarantined(self, emp_db):
        wrong = _wrong_plan_for(EMP_DEPT_LOJ)
        session = QuerySession(emp_db)
        session.quarantined.add(wrong)
        with pytest.raises(OptimizerInternalError):
            session._pick_plan(
                OptimizationResult(
                    best=wrong,
                    best_cost=1.0,
                    original_cost=2.0,
                    plans_considered=1,
                    ranked=[(1.0, wrong)],
                )
            )


class TestPlanFacade:
    def test_plan_reports_stage_without_executing(self, emp_db):
        session = QuerySession(emp_db, budget=Budget(max_plans=1))
        optimized, level, reason = session.plan(EMP_DEPT_LOJ)
        assert optimized is not None
        assert level is DegradationLevel.HEURISTIC
        assert "plans budget" in reason


class TestSeededVerification:
    """Differential verification samples rows with a seeded RNG: the
    same seed must draw the same sample, so quarantine incidents are
    reproducible run to run."""

    def _big_db(self) -> Database:
        # emp is larger than verify_sample_rows (50), forcing sampling;
        # a third of the rows have no matching dept, so any sample
        # exposes the INNER-for-LEFT corruption
        rows = [(i, 10 if i % 3 else 99, i * 10) for i in range(1, 121)]
        return Database(
            {
                "emp": Relation.base("emp", ["eid", "dept", "salary"], rows),
                "dept": Relation.base("dept", ["did", "dname"], [(10, "eng")]),
            }
        )

    def test_sampler_is_deterministic_per_seed(self):
        session = QuerySession(self._big_db(), verify=True, verify_seed=7)
        first = session._sample_database()
        second = session._sample_database()
        assert first["emp"].same_content(second["emp"])
        assert len(first["emp"]) == session.verify_sample_rows
        # small tables are taken whole
        assert len(first["dept"]) == 1

    def test_different_seeds_draw_different_samples(self):
        db = self._big_db()
        a = QuerySession(db, verify=True, verify_seed=0)._sample_database()
        b = QuerySession(db, verify=True, verify_seed=1)._sample_database()
        assert not a["emp"].same_content(b["emp"])

    def test_same_seed_reproduces_identical_incidents(self):
        wrong = _wrong_plan_for(EMP_DEPT_LOJ)

        def one_run():
            session = QuerySession(
                self._big_db(),
                verify=True,
                verify_seed=42,
                optimize_fn=_planner_returning(wrong),
            )
            result = session.run(EMP_DEPT_LOJ)
            assert result.verified is False
            return session.incidents.to_json_lines()

        assert one_run() == one_run()

    def test_incident_records_the_seed(self):
        wrong = _wrong_plan_for(EMP_DEPT_LOJ)
        session = QuerySession(
            self._big_db(),
            verify=True,
            verify_seed=42,
            optimize_fn=_planner_returning(wrong),
        )
        session.run(EMP_DEPT_LOJ)
        record = json.loads(session.incidents.to_json_lines().splitlines()[0])
        assert record["detail"]["verify_seed"] == 42


class TestEnumerationTiers:
    """The tier policy: which rungs run, forced tiers, and the metric."""

    def test_unknown_enum_tier_rejected(self, emp_db):
        with pytest.raises(ValueError, match="enum_tier"):
            QuerySession(emp_db, enum_tier="exhaustive")

    def test_heuristic_alias_still_names_the_greedy_rung(self):
        assert DegradationLevel.HEURISTIC is DegradationLevel.GREEDY
        assert DegradationLevel.HEURISTIC.name == "GREEDY"
        assert int(DegradationLevel.AS_WRITTEN) == 4

    def test_forced_goo_tier_answers_at_the_goo_rung(self):
        query = chain_query(4)
        db = chain_database(4)
        session = QuerySession(db, enum_tier="goo")
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.GOO
        assert result.relation.same_content(evaluate(query, db))

    def test_forced_partitioned_tier_answers_at_its_rung(self):
        query = chain_query(4)
        db = chain_database(4)
        session = QuerySession(db, enum_tier="partitioned")
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.PARTITIONED_DP
        assert result.relation.same_content(evaluate(query, db))

    def test_auto_policy_routes_large_queries_to_partitioned(self):
        from repro.runtime.budget import TierThresholds

        query = chain_query(5)
        db = chain_database(5)
        tiers = TierThresholds(full_max_relations=3, partitioned_max_relations=8)
        session = QuerySession(db, budget=Budget(tiers=tiers))
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.PARTITIONED_DP
        assert result.relation.same_content(evaluate(query, db))

    def test_auto_policy_routes_huge_queries_to_goo(self):
        from repro.runtime.budget import TierThresholds

        query = chain_query(5)
        db = chain_database(5)
        tiers = TierThresholds(full_max_relations=2, partitioned_max_relations=3)
        session = QuerySession(db, budget=Budget(tiers=tiers))
        result = session.run(query)
        assert result.degradation_level is DegradationLevel.GOO

    def test_small_queries_still_use_full_optimization(self, emp_db):
        session = QuerySession(emp_db)
        result = session.run(EMP_DEPT_LOJ)
        assert result.degradation_level is DegradationLevel.FULL

    def test_tier_metric_counts_the_answering_rung(self):
        from repro.runtime.metrics import MetricsRegistry

        registry = MetricsRegistry()
        query = chain_query(4)
        session = QuerySession(
            chain_database(4), enum_tier="goo", metrics=registry
        )
        session.run(query)
        family = registry.counter("repro_enum_tier_total")
        assert family.value_for(tier="goo") == 1.0
        assert family.value_for(tier="full") == 0.0

    def test_forced_tier_still_degrades_to_greedy_on_outer_join(self):
        # the GOO workspace declines outer-join cores; the ladder must
        # still answer at the greedy rung below
        session = QuerySession(
            Database(
                {
                    "emp": Relation.base(
                        "emp", ["eid", "dept", "salary"], [(1, 10, 100)]
                    ),
                    "dept": Relation.base("dept", ["did", "dname"], [(10, "x")]),
                }
            ),
            enum_tier="goo",
        )
        result = session.run(EMP_DEPT_LOJ)
        assert result.degradation_level is DegradationLevel.GREEDY
        assert "goo stage abandoned" in result.degradation_reason
