"""Required orders through the runtime: session, cache, CLI, EXPLAIN.

The ORDER BY journey end to end: ``run_sql`` threads the translated
order into ``QuerySession.run``, the order pass may rewrite the plan,
the plan cache keys on the required order (an order-blind cached plan
must never be replayed for an ordered query), and the CLI either
skips its output sort (the plan already provides the order) or
applies the shared-convention sort / top-N.
"""

import io

import pytest

from repro.cli import run_script
from repro.expr import Database
from repro.expr.nodes import BaseRel, Join, JoinKind
from repro.expr.orderprops import order_satisfies, provided_order
from repro.expr.predicates import eq
from repro.relalg import Relation
from repro.relalg.ordering import attr_key_fn
from repro.runtime import QuerySession
from repro.sql import SqlCatalog
from tests.runtime.test_session import chain_database
from repro.workloads.topologies import chain_query


@pytest.fixture()
def emp_db() -> Database:
    return Database(
        {
            "emp": Relation.base(
                "emp",
                ["eid", "dept", "salary"],
                [(1, 10, 100), (2, 10, 200), (3, 20, 300), (4, 99, 50)],
            ),
            "dept": Relation.base(
                "dept", ["did", "dname"], [(10, "eng"), (20, "ops"), (30, "hr")]
            ),
        }
    )


def _catalog():
    return SqlCatalog(
        {"emp": ("eid", "dept", "salary"), "dept": ("did", "dname")}
    )


class TestSessionRequiredOrder:
    def test_run_with_required_order_provides_it(self):
        db = chain_database(3)
        session = QuerySession(db)
        required = (("r1_a0", False),)
        result = session.run(chain_query(3), required_order=required)
        assert order_satisfies(provided_order(result.chosen), required)
        key = attr_key_fn(required)
        rows = result.relation.rows
        assert all(
            key(rows[i]) <= key(rows[i + 1]) for i in range(len(rows) - 1)
        )

    def test_same_bag_with_and_without_order(self):
        db = chain_database(3)
        session = QuerySession(db)
        query = chain_query(3)
        plain = session.run(query)
        ordered = session.run(query, required_order=(("r2_a1", True),))
        assert plain.relation.same_content(ordered.relation)

    def test_cache_keys_on_required_order(self):
        """An order-blind cached plan must not be replayed for the
        ordered variant of the same query (and vice versa)."""
        db = chain_database(3)
        session = QuerySession(db)
        query = chain_query(3)
        required = (("r1_a0", False),)

        session.run(query)  # populates the ()-order entry
        ordered = session.run(query, required_order=required)
        assert order_satisfies(provided_order(ordered.chosen), required)

        # rerunning both shapes hits the cache, each under its own key
        before = session.plan_cache.counters()["hits"]
        again_plain = session.run(query)
        again_ordered = session.run(query, required_order=required)
        assert session.plan_cache.counters()["hits"] >= before + 2
        assert not order_satisfies(
            provided_order(again_plain.chosen), required
        ) or order_satisfies(provided_order(again_ordered.chosen), required)
        assert order_satisfies(
            provided_order(again_ordered.chosen), required
        )

    def test_plan_with_required_order(self):
        db = chain_database(3)
        session = QuerySession(db)
        required = (("r1_a0", False),)
        result, level, reason = session.plan(
            chain_query(3), required_order=required
        )
        assert result is not None
        assert order_satisfies(provided_order(result.best), required)


class TestCliOrderBy:
    def test_order_by_sorts_output(self, emp_db):
        out = io.StringIO()
        run_script(
            "select eid, salary from emp order by salary desc;",
            emp_db,
            _catalog(),
            out=out,
        )
        body = [
            line
            for line in out.getvalue().splitlines()
            if "|" in line and "salary" not in line and "+" not in line
        ]
        salaries = [int(line.split("|")[1]) for line in body]
        assert salaries == sorted(salaries, reverse=True)

    def test_limit_truncates_in_order(self, emp_db):
        out = io.StringIO()
        run_script(
            "select eid, salary from emp order by salary limit 2;",
            emp_db,
            _catalog(),
            out=out,
        )
        text = out.getvalue()
        assert "2 row(s)" in text
        body = [
            line
            for line in text.splitlines()
            if "|" in line and "salary" not in line and "+" not in line
        ]
        # cheapest two salaries are eids 4 (50) and 1 (100), in order
        assert [line.split("|")[0].strip() for line in body] == ["4", "1"]

    def test_nulls_sort_last_ascending(self):
        db = Database(
            {
                "t": Relation.base(
                    "t", ["a", "b"], [(2, "x"), (None, "y"), (1, "z")]
                )
            }
        )
        out = io.StringIO()
        run_script(
            "select a, b from t order by a;",
            db,
            SqlCatalog({"t": ("a", "b")}),
            out=out,
        )
        rows = [
            line
            for line in out.getvalue().splitlines()
            if "|" in line and "+" not in line
        ][1:]
        assert rows[0].split("|")[0].strip() == "1"
        assert rows[-1].split("|")[0].strip() in ("NULL", "", "None")

    def test_explain_reports_order_properties(self, emp_db):
        out = io.StringIO()
        run_script(
            "select eid from emp order by eid;",
            emp_db,
            _catalog(),
            out=out,
            explain=True,
        )
        text = out.getvalue()
        assert "-- order: required emp_eid" in text
        assert "plan provides" in text

    def test_analyze_reports_order_properties(self, emp_db):
        out = io.StringIO()
        run_script(
            "select eid from emp order by eid desc;",
            emp_db,
            _catalog(),
            out=out,
            analyze=True,
        )
        text = out.getvalue()
        assert "-- order: required emp_eid desc" in text
        assert "plan provides" in text
