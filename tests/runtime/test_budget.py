"""Budget mechanics: caps, checkpoints, slicing, typed errors."""

import threading

import pytest

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    PlanBudgetExceeded,
    QueryCancelled,
    RowBudgetExceeded,
)
from repro.runtime import Budget, CancelToken


class TestCounters:
    def test_plan_cap(self):
        budget = Budget(max_plans=3)
        budget.charge_plans(3)
        with pytest.raises(PlanBudgetExceeded) as excinfo:
            budget.charge_plans(1)
        assert excinfo.value.limit == 3
        assert excinfo.value.spent == 4
        assert isinstance(excinfo.value, BudgetExceeded)

    def test_row_cap(self):
        budget = Budget(max_rows=10)
        budget.charge_rows(10)
        with pytest.raises(RowBudgetExceeded):
            budget.charge_rows(5)

    def test_unlimited_by_default(self):
        budget = Budget()
        budget.charge_plans(10**6)
        budget.charge_rows(10**9)
        budget.check_deadline()
        assert budget.remaining_ms == float("inf")

    def test_deadline(self):
        budget = Budget(deadline_ms=0.0)
        with pytest.raises(DeadlineExceeded):
            budget.check_deadline("test")

    def test_tick_combines_all_three(self):
        budget = Budget(max_rows=1)
        with pytest.raises(RowBudgetExceeded):
            budget.tick(rows=2, where="test")

    def test_restart_resets(self):
        budget = Budget(deadline_ms=10_000, max_plans=5)
        budget.charge_plans(5)
        budget.restart()
        assert budget.plans == 0
        budget.charge_plans(5)  # does not raise


class TestSlicing:
    def test_stage_takes_fraction_of_remaining(self):
        budget = Budget(deadline_ms=10_000)
        child = budget.stage(0.5)
        assert child.deadline_ms is not None
        assert 0 < child.deadline_ms <= 5_000

    def test_stage_inherits_caps_by_default(self):
        budget = Budget(max_plans=7, max_rows=9)
        child = budget.stage(0.5)
        assert child.max_plans == 7
        assert child.max_rows == 9

    def test_stage_can_lift_a_cap(self):
        budget = Budget(max_plans=7)
        child = budget.stage(0.5, max_plans=None)
        assert child.max_plans is None

    def test_stage_of_unlimited_budget_is_unlimited(self):
        child = Budget().stage(0.5)
        assert child.deadline_ms is None

    def test_counters_start_fresh(self):
        budget = Budget(max_plans=5)
        budget.charge_plans(5)
        child = budget.stage(1.0)
        child.charge_plans(5)  # does not raise

    def test_snapshot(self):
        budget = Budget(deadline_ms=1000, max_plans=5)
        budget.charge_plans(2)
        snap = budget.to_dict()
        assert snap["max_plans"] == 5
        assert snap["spent_plans"] == 2
        assert snap["spent_ms"] >= 0


class TestCooperativeEnforcement:
    """The enumerator and executors actually honor the budget."""

    def test_enumerate_plans_charges_the_plan_counter(self):
        from repro.core.transform import enumerate_plans
        from repro.workloads.topologies import chain_query

        query = chain_query(4)
        budget = Budget(max_plans=5)
        with pytest.raises(PlanBudgetExceeded):
            enumerate_plans(query, budget=budget)

    def test_enumerate_plans_unbudgeted_matches_budgeted(self):
        from repro.core.transform import enumerate_plans
        from repro.workloads.topologies import chain_query

        query = chain_query(3)
        free = enumerate_plans(query)
        budgeted = enumerate_plans(query, budget=Budget(max_plans=100_000))
        assert set(free) == set(budgeted)

    def test_optimize_honors_deadline(self):
        from repro.optimizer import Statistics, optimize
        from repro.workloads.topologies import chain_query

        with pytest.raises(DeadlineExceeded):
            optimize(
                chain_query(5, complex_every=2),
                Statistics(),
                budget=Budget(deadline_ms=0.0),
            )

    @pytest.mark.parametrize("executor_name", ["evaluate", "execute"])
    def test_executors_charge_rows(self, executor_name):
        from repro.exec import execute
        from repro.expr import Database, evaluate
        from repro.expr.nodes import BaseRel, inner
        from repro.expr.predicates import TRUE
        from repro.relalg import Relation

        runner = {"evaluate": evaluate, "execute": execute}[executor_name]
        db = Database(
            {
                "a": Relation.base("a", ["x"], [(i,) for i in range(30)]),
                "b": Relation.base("b", ["y"], [(i,) for i in range(30)]),
            }
        )
        # the cross product materializes 900 rows -- over a 100-row cap
        query = inner(BaseRel("a", ("x",)), BaseRel("b", ("y",)), TRUE)
        with pytest.raises(RowBudgetExceeded):
            runner(query, db, Budget(max_rows=100))
        # a generous cap does not disturb the result
        assert len(runner(query, db, Budget(max_rows=10_000))) == 900


class TestCancellation:
    def test_token_starts_clear(self):
        budget = Budget(cancel=CancelToken())
        budget.tick(where="test")  # does not raise

    def test_cancel_raises_at_next_checkpoint(self):
        token = CancelToken()
        budget = Budget(cancel=token)
        token.cancel()
        with pytest.raises(QueryCancelled):
            budget.tick(where="checkpoint")

    def test_cancel_beats_deadline_check(self):
        token = CancelToken()
        token.cancel()
        budget = Budget(deadline_ms=10_000, cancel=token)
        with pytest.raises(QueryCancelled):
            budget.check_deadline("test")

    def test_stage_shares_the_token(self):
        token = CancelToken()
        budget = Budget(deadline_ms=10_000, cancel=token)
        child = budget.stage(0.5)
        token.cancel()
        with pytest.raises(QueryCancelled):
            child.tick(where="stage")

    def test_stage_of_cancelled_parent_raises_eagerly(self):
        token = CancelToken()
        budget = Budget(cancel=token)
        token.cancel()
        with pytest.raises(QueryCancelled):
            budget.stage(0.5)


class TestEagerStageExpiry:
    def test_stage_on_expired_parent_raises_deadline(self):
        budget = Budget(deadline_ms=0.0)
        with pytest.raises(DeadlineExceeded) as info:
            budget.stage(0.5, where="full-stage")
        assert info.value.where == "full-stage"

    def test_stage_on_live_parent_returns_child(self):
        budget = Budget(deadline_ms=60_000)
        assert budget.stage(0.5).deadline_ms is not None


class TestThreadSafety:
    def test_concurrent_charges_do_not_lose_updates(self):
        budget = Budget()
        threads = [
            threading.Thread(
                target=lambda: [budget.charge_plans(1) for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert budget.plans == 8000

    def test_concurrent_row_charges(self):
        budget = Budget()
        threads = [
            threading.Thread(
                target=lambda: [budget.charge_rows(3) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert budget.rows == 12000


class TestParentAbsorption:
    """A stage's spend is visible on the budget it was carved from."""

    def test_stage_spend_flows_to_parent(self):
        budget = Budget()
        child = budget.stage(0.5)
        child.charge_plans(4)
        child.charge_rows(10)
        assert (budget.plans, budget.rows) == (4, 10)

    def test_absorption_recurses_through_grandparent(self):
        budget = Budget()
        child = budget.stage(0.5)
        grandchild = child.stage(0.5)
        grandchild.charge_rows(7)
        assert child.rows == 7
        assert budget.rows == 7

    def test_parent_caps_are_not_enforced_mid_stage(self):
        # the parent's cap is checked at the parent's own sites, not
        # while a (cap-lifted) child is spending
        budget = Budget(max_plans=2)
        child = budget.stage(0.5, max_plans=None)
        child.charge_plans(5)  # does not raise
        assert budget.plans == 5
