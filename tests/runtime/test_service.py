"""QueryService: admission, cancellation, breakers, fallback, shutdown."""

import threading

import pytest

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    EngineFailure,
    InjectedFault,
    QueryCancelled,
)
from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel, Join, JoinKind
from repro.expr.predicates import eq
from repro.relalg import Relation
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan
from repro.runtime.service import (
    FALLBACK_CHAIN,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    QueryService,
)
from repro.runtime.session import (
    DegradationLevel,
    QuerySession,
    SessionResult,
)


def small_db() -> Database:
    db = Database()
    db.add(
        "r",
        Relation.base("r", ["r_a", "r_b"], [(1, 10), (2, 20), (3, 30)]),
    )
    db.add("s", Relation.base("s", ["s_a"], [(1,), (2,), (4,)]))
    return db


def join_query() -> Join:
    return Join(
        JoinKind.INNER,
        BaseRel("r", ("r_a", "r_b")),
        BaseRel("s", ("s_a",)),
        eq("r_a", "s_a"),
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedSession:
    """A stand-in session: blocks, crashes, or answers per configuration."""

    def __init__(
        self,
        db: Database,
        *,
        crash: bool = False,
        gate: threading.Event | None = None,
        started: threading.Event | None = None,
    ) -> None:
        self.db = db
        self.crash = crash
        self.gate = gate
        self.started = started
        self.calls = 0

    def run(self, query, budget=None):
        self.calls += 1
        if self.started is not None:
            self.started.set()
        if self.gate is not None:
            self.gate.wait(timeout=10)
        if budget is not None:
            budget.tick(where="scripted")
        if self.crash:
            raise RuntimeError("scripted engine crash")
        return SessionResult(
            relation=evaluate(query, self.db),
            chosen=query,
            degradation_level=DegradationLevel.FULL,
            degradation_reason=None,
            plans_considered=1,
            verified=None,
            incident=None,
            elapsed_ms=0.0,
        )


class TestCircuitBreaker:
    def test_transition_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "vector",
            BreakerConfig(failure_threshold=2, window_s=60.0, cooldown_s=30.0),
            clock,
        )
        assert breaker.state is BreakerState.CLOSED
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "open"
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow() == (False, None)
        clock.advance(30.0)
        assert breaker.allow() == (True, "half-open")
        # only one probe at a time
        assert breaker.allow() == (False, None)
        assert breaker.record_failure() == "open"  # probe failed: reopen
        clock.advance(30.0)
        assert breaker.allow() == (True, "half-open")
        assert breaker.record_success() == "closed"
        assert breaker.state is BreakerState.CLOSED
        assert breaker.opened_count == 2

    def test_window_prunes_stale_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "vector", BreakerConfig(failure_threshold=2, window_s=10.0), clock
        )
        breaker.record_failure()
        clock.advance(11.0)  # first failure ages out of the window
        assert breaker.record_failure() is None
        assert breaker.state is BreakerState.CLOSED


class TestAdmission:
    def test_queue_full_sheds_load(self):
        db = small_db()
        gate = threading.Event()
        started = threading.Event()

        def factory(engine):
            return ScriptedSession(db, gate=gate, started=started)

        service = QueryService(
            db,
            workers=1,
            queue_depth=1,
            session_factory=factory,
        )
        try:
            first = service.submit(join_query())  # picked up by the worker
            assert started.wait(5)
            second = service.submit(join_query())  # fills the queue
            with pytest.raises(AdmissionRejected) as info:
                service.submit(join_query())
            assert info.value.queue_depth == 1
            assert service.incidents.count("admission-rejected") == 1
            assert service.rejected == 1
        finally:
            gate.set()
            service.close()
        assert first.result(5).relation is not None
        assert second.result(5).relation is not None

    def test_closed_service_rejects(self):
        service = QueryService(small_db(), workers=1)
        service.close()
        with pytest.raises(AdmissionRejected):
            service.submit(join_query())

    def test_service_budget_exhaustion_closes_admission(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            engine="reference",
            service_budget=Budget(max_rows=1),
        )
        try:
            service.run(join_query())  # spends > 1 row against the service
            with pytest.raises(AdmissionRejected) as info:
                service.submit(join_query())
            assert "budget" in str(info.value)
            assert service.incidents.count("service-budget-exhausted") == 1
        finally:
            service.close()

    def test_spent_service_deadline_is_typed(self):
        service = QueryService(
            small_db(),
            workers=1,
            engine="reference",
            service_budget=Budget(deadline_ms=0.0),
        )
        try:
            with pytest.raises(DeadlineExceeded):
                service.run(join_query(), timeout=5)
        finally:
            service.close()


class TestCancellation:
    def test_cancel_before_start(self):
        db = small_db()
        gate = threading.Event()
        started = threading.Event()

        def factory(engine):
            return ScriptedSession(db, gate=gate, started=started)

        service = QueryService(
            db, workers=1, queue_depth=4, session_factory=factory
        )
        try:
            blocker = service.submit(join_query())
            assert started.wait(5)
            queued = service.submit(join_query())
            queued.cancel()
            gate.set()
            with pytest.raises(QueryCancelled):
                queued.result(timeout=5)
            assert service.incidents.count("query-cancelled") == 1
            assert service.cancelled == 1
            assert blocker.result(5).relation is not None
        finally:
            gate.set()
            service.close()

    def test_cancel_mid_query_unwinds_at_checkpoint(self):
        db = small_db()
        gate = threading.Event()
        started = threading.Event()

        def factory(engine):
            # blocks, then ticks its budget: the tick sees the token
            return ScriptedSession(db, gate=gate, started=started)

        service = QueryService(
            db, workers=1, session_factory=factory, budget=Budget()
        )
        try:
            ticket = service.submit(join_query())
            assert started.wait(5)
            ticket.cancel()
            gate.set()
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=5)
            assert service.incidents.count("query-cancelled") == 1
        finally:
            gate.set()
            service.close()


class TestRoutingAndBreakers:
    def make_service(self, clock, *, threshold=3, cooldown=30.0):
        db = small_db()
        self.db = db
        self.vector_crashing = True

        outer = self

        def factory(engine):
            if engine == "vector":

                class Toggle(ScriptedSession):
                    def run(self, query, budget=None):
                        self.crash = outer.vector_crashing
                        return super().run(query, budget=budget)

                return Toggle(db, crash=True)
            return ScriptedSession(db)

        return QueryService(
            db,
            workers=1,
            session_factory=factory,
            breaker=BreakerConfig(
                failure_threshold=threshold, window_s=600.0, cooldown_s=cooldown
            ),
            clock=clock,
        )

    def test_breaker_opens_then_probes_then_closes(self):
        clock = FakeClock()
        service = self.make_service(clock)
        try:
            # three crashing queries trip the vector breaker ...
            for _ in range(3):
                result = service.run(join_query(), timeout=5)
                assert result.engine == "hash"
                assert result.attempts[0][0] == "vector"
            assert service.breakers["vector"].state is BreakerState.OPEN
            assert service.incidents.count("breaker-open") == 1
            assert service.incidents.count("engine-failure") == 3

            # ... while open, vector is skipped without being called
            result = service.run(join_query(), timeout=5)
            assert result.engine == "hash"
            assert result.attempts == (("vector", "breaker-open"),)

            # cooldown elapses: half-open probe, still crashing -> reopen
            clock.advance(30.0)
            result = service.run(join_query(), timeout=5)
            assert result.engine == "hash"
            assert service.breakers["vector"].state is BreakerState.OPEN
            assert service.incidents.count("breaker-half-open") == 1
            assert service.incidents.count("breaker-open") == 2

            # next cooldown: the engine recovered, probe closes the breaker
            self.vector_crashing = False
            clock.advance(30.0)
            result = service.run(join_query(), timeout=5)
            assert result.engine == "vector"
            assert service.breakers["vector"].state is BreakerState.CLOSED
            assert service.incidents.count("breaker-closed") == 1
        finally:
            service.close()

    def test_all_engines_failing_is_a_typed_engine_failure(self):
        db = small_db()

        def factory(engine):
            return ScriptedSession(db, crash=True)

        service = QueryService(db, workers=1, session_factory=factory)
        try:
            with pytest.raises(EngineFailure) as info:
                service.run(join_query(), timeout=5)
            engines = [engine for engine, _ in info.value.attempts]
            assert engines == list(FALLBACK_CHAIN)
            assert service.incidents.count("query-failed") == 1
            assert service.failed == 1
        finally:
            service.close()


class TestRealSessionsUnderFaults:
    def test_fallback_answers_match_ground_truth(self):
        db = small_db()
        query = join_query()
        expected = evaluate(query, db)
        service = QueryService(
            db,
            workers=2,
            fault_plan=FaultPlan.parse("vector:crash@1", seed=11),
        )
        try:
            tickets = [service.submit(query) for _ in range(6)]
            for ticket in tickets:
                result = ticket.result(timeout=30)
                assert result.engine != "vector"
                assert result.relation.same_content(expected)
            assert service.incidents.count("engine-failure") >= 1
        finally:
            service.close()

    def test_injected_fault_surfaces_when_floor_crashes(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            engine="reference",
            fault_plan=FaultPlan.parse("reference:crash@1", seed=3),
        )
        try:
            with pytest.raises(InjectedFault):
                service.run(join_query(), timeout=30)
            assert service.incidents.count("query-failed") == 1
        finally:
            service.close()

    def test_real_sessions_share_cache_and_incident_log(self):
        db = small_db()
        service = QueryService(db, workers=2)
        try:
            query = join_query()
            for _ in range(4):
                service.run(query, timeout=30)
            counters = service.plan_cache.counters()
            assert counters["hits"] >= 1  # second run hits the shared cache
        finally:
            service.close()


class TestShutdown:
    def test_close_drains_queued_work(self):
        db = small_db()
        service = QueryService(db, workers=2, queue_depth=16)
        tickets = [service.submit(join_query()) for _ in range(8)]
        service.close()  # default: drain
        assert all(t.done() for t in tickets)
        assert service.completed == 8
        assert service.failed == 0

    def test_close_without_drain_cancels_queued_work(self):
        db = small_db()
        gate = threading.Event()
        started = threading.Event()

        def factory(engine):
            return ScriptedSession(db, gate=gate, started=started)

        service = QueryService(
            db, workers=1, queue_depth=8, session_factory=factory
        )
        blocker = service.submit(join_query())
        assert started.wait(5)
        queued = [service.submit(join_query()) for _ in range(3)]
        # close() joins the (gated) worker, so run it alongside: its
        # drain=False pass must reject the queued tickets immediately,
        # while the in-flight query is allowed to finish
        closer = threading.Thread(target=lambda: service.close(drain=False))
        closer.start()
        for ticket in queued:
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=5)
        gate.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert service.cancelled == 3
        assert blocker.result(5).relation is not None

    def test_workers_are_daemon_threads(self):
        # a worker wedged in native code must never block interpreter
        # exit: the threads are daemons and close() is what drains
        service = QueryService(small_db(), workers=2)
        try:
            assert all(t.daemon for t in service._threads)
        finally:
            service.close()

    def test_close_is_idempotent(self):
        service = QueryService(small_db(), workers=1)
        service.close()
        service.close()  # second call is a no-op, not an error
        assert all(not t.is_alive() for t in service._threads)

    def test_concurrent_close_under_load_drains_once(self):
        # several closers race while queued work drains: exactly one
        # runs the drain, the rest wait for it, and every ticket
        # settles successfully
        db = small_db()
        service = QueryService(db, workers=2, queue_depth=32)
        tickets = [service.submit(join_query()) for _ in range(12)]
        errors = []

        def closer():
            try:
                service.close()
            except BaseException as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        closers = [threading.Thread(target=closer) for _ in range(4)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=30)
        assert not errors
        assert all(not t.is_alive() for t in closers)
        assert all(t.done() for t in tickets)
        assert service.completed == 12
        for thread in service._threads:
            assert not thread.is_alive()

    def test_submit_during_and_after_close_is_typed(self):
        db = small_db()
        gate = threading.Event()
        started = threading.Event()

        def factory(engine):
            return ScriptedSession(db, gate=gate, started=started)

        service = QueryService(
            db, workers=1, queue_depth=8, session_factory=factory
        )
        blocker = service.submit(join_query())
        assert started.wait(5)
        closer = threading.Thread(target=service.close)
        closer.start()
        try:
            # the close is in flight (blocked on the gated worker):
            # late submits are shed with the admission type, not queued
            with pytest.raises(AdmissionRejected):
                service.submit(join_query())
        finally:
            gate.set()
            closer.join(timeout=30)
        assert not closer.is_alive()
        assert blocker.result(5).relation is not None
        with pytest.raises(AdmissionRejected):
            service.submit(join_query())  # and still after close completes

    def test_context_manager_closes(self):
        with QueryService(small_db(), workers=1) as service:
            result = service.run(join_query(), timeout=30)
            assert len(result.relation) == 2
        with pytest.raises(AdmissionRejected):
            service.submit(join_query())

    def test_snapshot_shape(self):
        with QueryService(small_db(), workers=1) as service:
            service.run(join_query(), timeout=30)
            snap = service.snapshot()
        assert snap["completed"] == 1
        assert set(snap["breakers"]) == set(FALLBACK_CHAIN)
        assert snap["plan_cache"]["misses"] >= 1
