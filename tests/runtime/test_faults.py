"""Deterministic fault injection: parsing, scoping, reproducibility."""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InjectedFault, UserInputError
from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel
from repro.optimizer import Statistics
from repro.relalg import Relation
from repro.runtime.faults import (
    PROCESS_KINDS,
    FaultPlan,
    FaultSpec,
    fault_point,
    fault_scope,
    perturb_factor,
)


def tiny_db() -> Database:
    db = Database()
    db.add("t", Relation.base("t", ["t_a"], [(1,), (2,)]))
    return db


class TestParsing:
    def test_full_plan_round_trip(self):
        plan = FaultPlan.parse(
            "vector.join:crash@0.05,cache.get:latency=50ms@0.1,stats:perturb=2x",
            seed=7,
        )
        assert plan.seed == 7
        crash, latency, perturb = plan.specs
        assert (crash.site, crash.kind, crash.probability) == (
            "vector.join",
            "crash",
            0.05,
        )
        assert (latency.kind, latency.latency_ms, latency.probability) == (
            "latency",
            50.0,
            0.1,
        )
        assert (perturb.kind, perturb.factor, perturb.probability) == (
            "perturb",
            2.0,
            1.0,
        )

    def test_latency_units(self):
        assert FaultPlan.parse("a:latency=2s").specs[0].latency_ms == 2000.0
        assert FaultPlan.parse("a:latency=3").specs[0].latency_ms == 3.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "nosite",
            ":crash",
            "a:explode",
            "a:crash@1.5",
            "a:crash@x",
            "a:latency=fast",
            "a:perturb=-1x",
        ],
    )
    def test_bad_specs_are_user_errors(self, bad):
        with pytest.raises(UserInputError):
            FaultPlan.parse(bad)

    @pytest.mark.parametrize("kind", sorted(PROCESS_KINDS))
    def test_process_kinds_parse_bare(self, kind):
        spec = FaultPlan.parse(f"worker:{kind}@0.25").specs[0]
        assert (spec.site, spec.kind, spec.probability) == ("worker", kind, 0.25)

    @pytest.mark.parametrize(
        "bad",
        [
            "worker:kill9=5",  # bare kinds take no value ...
            "worker:hang=1s",
            "worker:exit=0",
            "a:crash=now",
            "worker:exit@1.5",  # ... and obey the probability range
            "worker:kill9@-0.1",
            "worker:sigsegv",  # unknown kinds name the clause
        ],
    )
    def test_malformed_clauses_quote_the_clause(self, bad):
        with pytest.raises(UserInputError) as info:
            FaultPlan.parse(bad)
        assert repr(bad) in str(info.value) or bad in str(info.value)

    @given(
        st.lists(
            st.builds(
                lambda site, kind, prob, ms, factor: (
                    FaultSpec(site, "latency", prob, latency_ms=ms)
                    if kind == "latency"
                    else FaultSpec(site, "perturb", prob, factor=factor)
                    if kind == "perturb"
                    else FaultSpec(site, kind, prob)
                ),
                st.sampled_from(
                    ["vector", "vector.join", "hash.scan", "worker", "stats.t"]
                ),
                st.sampled_from(
                    ["crash", "latency", "perturb", "kill9", "hang", "exit"]
                ),
                st.floats(0.0, 1.0, allow_nan=False).map(lambda p: round(p, 4)),
                st.floats(0.0, 5000.0, allow_nan=False).map(lambda v: round(v, 2)),
                st.floats(0.001, 100.0, allow_nan=False).map(lambda v: round(v, 3)),
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_format_parse_round_trip(self, specs, seed):
        # str() and parse() are inverses for every representable plan:
        # what a snapshot or incident records is re-runnable verbatim
        plan = FaultPlan(tuple(specs), seed)
        assert FaultPlan.parse(str(plan), seed=seed) == plan

    def test_prefix_matching_stops_at_dot_boundary(self):
        spec = FaultSpec("vector", "crash")
        assert spec.matches("vector.join")
        assert spec.matches("vector")
        assert not spec.matches("vectorish.join")
        exact = FaultSpec("vector.join", "crash")
        assert exact.matches("vector.join")
        assert not exact.matches("vector.scan")


class TestScoping:
    def test_no_active_stream_is_a_noop(self):
        fault_point("vector", op="join")  # must not raise
        assert perturb_factor("stats", "t") == 1.0

    def test_crash_fires_inside_scope_only(self):
        plan = FaultPlan.parse("reference.scan:crash@1")
        db = tiny_db()
        query = BaseRel("t", ("t_a",))
        with fault_scope(plan.stream(0)):
            with pytest.raises(InjectedFault) as info:
                evaluate(query, db)
        assert info.value.site == "reference.scan"
        # outside the scope the same call is clean
        assert len(evaluate(query, db)) == 2

    def test_streams_are_reproducible_and_independent(self):
        plan = FaultPlan.parse("x:crash@0.5")

        def fires(index: int, rolls: int = 20) -> list[bool]:
            out = []
            with fault_scope(plan.stream(index)):
                for _ in range(rolls):
                    try:
                        fault_point("x", op="y")
                        out.append(False)
                    except InjectedFault:
                        out.append(True)
            return out

        assert fires(0) == fires(0)  # same index -> same stream
        assert fires(0) != fires(1)  # different index -> independent

    def test_apply_never_fires_process_kinds(self):
        # a worker:kill9 clause in the thread path must be inert, or a
        # process-chaos plan could take down the parent itself
        plan = FaultPlan.parse("worker:kill9@1,worker:hang@1,worker:exit@1")
        stream = plan.stream(0)
        stream.apply("worker.query")  # must return, not kill/hang/raise
        assert stream.injected == []

    def test_apply_process_rolls_only_process_kinds(self):
        plan = FaultPlan.parse("worker:crash@1,worker:kill9@1")
        stream = plan.stream(0)
        assert stream.apply_process("worker.query") == "kill9"
        assert stream.injected == [("worker.query", "kill9")]

    def test_attempt_salt_changes_redelivery_rolls(self):
        # retries after a worker death draw fresh rolls; attempt 0 is
        # bit-identical to the historical unsalted stream
        plan = FaultPlan.parse("worker:kill9@0.5", seed=9)

        def rolls(attempt: int, n: int = 16) -> list[str | None]:
            stream = plan.stream(0, attempt)
            return [stream.apply_process("worker.query") for _ in range(n)]

        assert rolls(0) == rolls(0)
        assert plan.stream(0).rng.random() == plan.stream(0, 0).rng.random()
        assert rolls(0) != rolls(1)

    def test_latency_sleeps(self):
        plan = FaultPlan.parse("slow:latency=30ms@1")
        t0 = time.perf_counter()
        with fault_scope(plan.stream(0)):
            fault_point("slow", op="op")
        assert time.perf_counter() - t0 >= 0.025

    def test_injected_record(self):
        plan = FaultPlan.parse("x:crash@1")
        stream = plan.stream(0)
        with fault_scope(stream):
            with pytest.raises(InjectedFault):
                fault_point("x", op="y")
        assert stream.injected == [("x.y", "crash")]


class TestStatsPerturbation:
    def test_table_stats_scaled_under_perturb(self):
        stats = Statistics.from_database(tiny_db())
        baseline = stats.table("t").row_count
        plan = FaultPlan.parse("stats:perturb=4x")
        with fault_scope(plan.stream(0)):
            perturbed = stats.table("t").row_count
        assert perturbed == baseline * 4
        # and back to truth outside the scope
        assert stats.table("t").row_count == baseline

    def test_perturbation_never_drops_below_one_row(self):
        stats = Statistics.from_database(tiny_db())
        plan = FaultPlan.parse("stats:perturb=0.0001x")
        with fault_scope(plan.stream(0)):
            assert stats.table("t").row_count == 1
