"""Process pool: error transport, supervision, retries, quarantine.

Everything that can be proven without forking is (error codecs, config,
budget caps); the rest drives a real ``isolation="process"`` service
with tiny databases and aggressive timeouts so each test spawns at most
a handful of interpreters.
"""

import dataclasses
import threading

import pytest

from repro.errors import (
    AdmissionRejected,
    DeadlineExceeded,
    EngineFailure,
    InjectedFault,
    PlanBudgetExceeded,
    QueryCancelled,
    RowBudgetExceeded,
    UserInputError,
    WorkerCrashed,
    WorkerPoolDegraded,
)
from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel, Join, JoinKind
from repro.expr.predicates import eq
from repro.relalg import Relation
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultPlan
from repro.runtime.procpool import (
    ProcPoolConfig,
    decode_error,
    encode_error,
)
from repro.runtime.service import QueryService

#: impatient supervision for tests: a wedged worker is declared dead in
#: well under a second and restarts carry no sleep worth mentioning
FAST = ProcPoolConfig(
    heartbeat_timeout_s=0.8,
    deadline_grace_s=0.2,
    restart_backoff_s=0.01,
    restart_backoff_cap_s=0.05,
    restart_jitter_s=0.0,
)


def small_db() -> Database:
    db = Database()
    db.add(
        "r",
        Relation.base("r", ["r_a", "r_b"], [(1, 10), (2, 20), (3, 30)]),
    )
    db.add("s", Relation.base("s", ["s_a"], [(1,), (2,), (4,)]))
    return db


def join_query() -> Join:
    return Join(
        JoinKind.INNER,
        BaseRel("r", ("r_a", "r_b")),
        BaseRel("s", ("s_a",)),
        eq("r_a", "s_a"),
    )


class TestErrorTransport:
    """Typed errors must survive the pipe structurally intact."""

    @pytest.mark.parametrize(
        "cls", [DeadlineExceeded, PlanBudgetExceeded, RowBudgetExceeded]
    )
    def test_budget_family_round_trips(self, cls):
        original = cls(100.0, 250.0, "enumerate")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is cls
        assert (rebuilt.limit, rebuilt.spent, rebuilt.where) == (
            100.0,
            250.0,
            "enumerate",
        )

    def test_cancelled_round_trips(self):
        rebuilt = decode_error(encode_error(QueryCancelled("mid-join")))
        assert type(rebuilt) is QueryCancelled
        assert rebuilt.where == "mid-join"

    def test_injected_fault_round_trips(self):
        original = InjectedFault("vector.join", "vector.join:crash@1")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is InjectedFault
        assert (rebuilt.site, rebuilt.spec) == (original.site, original.spec)

    def test_engine_failure_round_trips(self):
        original = EngineFailure([("vector", "boom"), ("hash", "breaker-open")])
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is EngineFailure
        assert rebuilt.attempts == original.attempts

    def test_user_input_error_round_trips(self):
        rebuilt = decode_error(encode_error(UserInputError("bad query")))
        assert type(rebuilt) is UserInputError
        assert "bad query" in str(rebuilt)

    def test_unknown_kind_becomes_engine_failure(self):
        # a genuine bug of any class degrades to the taxonomy member
        # the thread path would produce, never a bare unpickling error
        rebuilt = decode_error(encode_error(ValueError("surprise")))
        assert type(rebuilt) is EngineFailure
        assert list(rebuilt.attempts) == [("worker", "ValueError: surprise")]


class TestBudgetCaps:
    def test_caps_round_trip(self):
        budget = Budget(max_plans=10, max_rows=100)
        caps = budget.caps()
        rebuilt = Budget.from_caps(caps)
        assert caps["deadline_ms"] is None
        assert rebuilt.max_plans == 10
        assert rebuilt.max_rows == 100

    def test_caps_ship_the_remaining_deadline(self):
        # queue wait must count against the query, so the child gets
        # what is left, not the original grant
        budget = Budget(deadline_ms=10_000.0)
        caps = budget.caps()
        assert caps["deadline_ms"] is not None
        assert 0.0 < caps["deadline_ms"] <= 10_000.0


class TestConfig:
    def test_defaults_are_sane(self):
        cfg = ProcPoolConfig()
        assert cfg.max_retries >= 1
        assert cfg.poison_threshold >= 2
        assert cfg.heartbeat_timeout_s > cfg.heartbeat_interval_s
        assert cfg.start_method == "spawn"

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ProcPoolConfig().max_retries = 9

    def test_session_factory_is_thread_only(self):
        with pytest.raises(ValueError, match="session_factory"):
            QueryService(
                small_db(), isolation="process", session_factory=lambda e: None
            )

    def test_unknown_isolation_rejected(self):
        with pytest.raises(ValueError, match="isolation"):
            QueryService(small_db(), isolation="sandbox")


class TestProcessIsolation:
    def test_clean_run_matches_truth(self):
        db = small_db()
        query = join_query()
        expected = evaluate(query, db)
        service = QueryService(
            db, workers=2, isolation="process", verify=True, procpool=FAST
        )
        try:
            tickets = [service.submit(query) for _ in range(4)]
            for ticket in tickets:
                result = ticket.result(timeout=60)
                assert result.relation.same_content(expected)
                assert result.verified is not False
            snap = service.snapshot()
            assert snap["isolation"] == "process"
            assert snap["procpool"]["workers"] == 2
            assert snap["procpool"]["alive"] == 2
            assert snap["completed"] == 4
        finally:
            service.close()
        assert all(not t.is_alive() for t in service._threads)

    def test_retry_salvages_a_crashed_query(self):
        # seed 2 chosen so worker:kill9@0.5 fires on delivery 0 of
        # query 0 but not on the retry: the crash is transparent
        db = small_db()
        query = join_query()
        expected = evaluate(query, db)
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            fault_plan=FaultPlan.parse("worker:kill9@0.5", seed=2),
            procpool=FAST,
        )
        try:
            result = service.run(query, timeout=60)
            assert result.relation.same_content(expected)
            assert service._supervisor.retries == 1
            assert service.incidents.count("worker-crashed") == 1
            crash = next(
                i for i in service.incidents if i.kind == "worker-crashed"
            )
            assert crash.detail["reason"] == "exit:-9"
            assert (
                service.metrics.counter("repro_worker_retries_total").value_for()
                == 1.0
            )
            assert (
                service.metrics.counter(
                    "repro_worker_restarts_total"
                ).value_for(reason="exit:-9")
                == 1.0
            )
        finally:
            service.close()

    def test_kill_loop_poisons_the_fingerprint(self):
        db = small_db()
        query = join_query()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            fault_plan=FaultPlan.parse("worker:kill9@1"),
            procpool=FAST,
        )
        try:
            with pytest.raises(WorkerCrashed) as info:
                service.run(query, timeout=60)
            assert info.value.poisoned
            assert info.value.reason == "exit:-9"
            assert service.incidents.count("poisoned-query-quarantined") == 1
            assert service.snapshot()["procpool"]["poisoned"] == 1

            # the second occurrence fails fast: no fresh worker deaths
            deaths = service.incidents.count("worker-crashed")
            with pytest.raises(WorkerCrashed) as info:
                service.run(query, timeout=60)
            assert info.value.poisoned
            assert service.incidents.count("worker-crashed") == deaths
            assert service.incidents.count("poisoned-query-rejected") == 1
        finally:
            service.close()

    def test_max_retries_cap_surfaces_typed(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            max_retries=1,
            fault_plan=FaultPlan.parse("worker:exit@1"),
            procpool=dataclasses.replace(FAST, poison_threshold=99),
        )
        try:
            with pytest.raises(WorkerCrashed) as info:
                service.run(join_query(), timeout=60)
            assert not info.value.poisoned
            assert info.value.retries == 1
            assert info.value.reason == "exit:70"
        finally:
            service.close()

    def test_hang_is_caught_by_heartbeat_timeout(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            fault_plan=FaultPlan.parse("worker:hang@1"),
            procpool=dataclasses.replace(FAST, heartbeat_timeout_s=0.4),
        )
        try:
            with pytest.raises(WorkerCrashed) as info:
                service.run(join_query(), timeout=60)
            assert info.value.reason == "hang"
            assert info.value.poisoned  # hang@1 re-fires on the retry
        finally:
            service.close()

    def test_deadline_overrun_is_killed_and_typed(self):
        # the hang never beats, but with a 100ms deadline the
        # supervisor's deadline watch fires long before the (5s)
        # heartbeat timeout: the truth is a budget error, not a crash
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            budget=Budget(deadline_ms=100.0),
            fault_plan=FaultPlan.parse("worker:hang@1"),
            procpool=dataclasses.replace(FAST, heartbeat_timeout_s=5.0),
        )
        try:
            with pytest.raises(DeadlineExceeded) as info:
                service.run(join_query(), timeout=60)
            assert info.value.where == "worker-deadline"
            assert service.incidents.count("budget-exhausted") == 1
        finally:
            service.close()

    def test_cancel_mid_flight_kills_the_worker(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            fault_plan=FaultPlan.parse("worker:hang@1"),
            procpool=dataclasses.replace(FAST, heartbeat_timeout_s=30.0),
        )
        try:
            ticket = service.submit(join_query())
            ticket.cancel()
            with pytest.raises(QueryCancelled) as info:
                ticket.result(timeout=60)
            assert "worker-killed" in str(info.value) or "before start" in str(
                info.value
            )
            assert service.cancelled == 1
        finally:
            service.close()

    def test_flapping_slot_sheds_load(self):
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            max_retries=99,
            fault_plan=FaultPlan.parse("worker:kill9@1"),
            procpool=dataclasses.replace(
                FAST,
                poison_threshold=99,
                flap_threshold=2,
                flap_window_s=60.0,
                flap_cooldown_s=60.0,
            ),
        )
        try:
            # the kill loop burns through restarts until the slot flaps
            with pytest.raises(WorkerPoolDegraded):
                service.run(join_query(), timeout=60)
            assert service.incidents.count("worker-flapping") == 1
            snap = service.snapshot()["procpool"]
            assert snap["flapping"] == 1
            assert snap["degraded"] is True
            # every slot flapping: submissions shed at admission
            with pytest.raises(WorkerPoolDegraded):
                service.submit(join_query())
            assert service.incidents.count("admission-rejected") == 1
        finally:
            service.close()

    def test_engine_fallback_crosses_the_pipe(self):
        # a thread-style crash inside the child is a typed error on the
        # parent side, and the parent's breaker/fallback walk reroutes
        db = small_db()
        query = join_query()
        expected = evaluate(query, db)
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            fault_plan=FaultPlan.parse("vector:crash@1", seed=5),
            procpool=FAST,
        )
        try:
            result = service.run(query, timeout=60)
            assert result.engine == "hash"
            assert result.attempts[0][0] == "vector"
            assert result.relation.same_content(expected)
            assert service.incidents.count("engine-failure") >= 1
        finally:
            service.close()

    def test_child_spend_charges_the_service_budget(self):
        # the child's row/plan spend crosses the pipe and lands on the
        # parent's service budget, closing admission exactly like the
        # thread path does
        db = small_db()
        service = QueryService(
            db,
            workers=1,
            isolation="process",
            engine="reference",
            service_budget=Budget(max_rows=1),
            procpool=FAST,
        )
        try:
            service.run(join_query(), timeout=60)
            with pytest.raises(AdmissionRejected) as info:
                service.submit(join_query())
            assert "budget" in str(info.value)
        finally:
            service.close()


class TestProcessShutdown:
    def test_close_is_idempotent_and_reentrant(self):
        db = small_db()
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST
        )
        ticket = service.submit(join_query())
        errors = []

        def closer():
            try:
                service.close()
            except BaseException as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(not t.is_alive() for t in threads)
        assert ticket.result(timeout=5).relation is not None
        service.close()  # and again, after the fact
        with pytest.raises(AdmissionRejected):
            service.submit(join_query())

    def test_close_reaps_every_worker(self):
        db = small_db()
        service = QueryService(
            db, workers=2, isolation="process", procpool=FAST
        )
        service.run(join_query(), timeout=60)
        procs = [
            slot.process
            for slot in service._supervisor._slots
            if slot.process is not None
        ]
        assert procs  # at least the slot that served the query is live
        service.close()
        assert all(not p.is_alive() for p in procs)
        assert all(s.process is None for s in service._supervisor._slots)
        assert all(not t.is_alive() for t in service._threads)
