"""The incident log as a bounded ring buffer."""

import json
import threading

import pytest

from repro.runtime.incidents import Incident, IncidentLog


def make(i: int) -> Incident:
    return Incident(kind="test", query=f"q{i}", detail={"i": i})


class TestRingBuffer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            IncidentLog(capacity=0)

    def test_under_capacity_keeps_everything(self):
        log = IncidentLog(capacity=10)
        for i in range(5):
            log.record(make(i))
        assert len(log) == 5
        assert log.dropped == 0

    def test_overflow_drops_oldest_first(self):
        log = IncidentLog(capacity=3)
        for i in range(5):
            log.record(make(i))
        assert len(log) == 3
        assert log.dropped == 2
        assert [incident.query for incident in log.records] == ["q2", "q3", "q4"]

    def test_count_by_kind(self):
        log = IncidentLog()
        log.record(make(0))
        log.record(Incident(kind="other", query="x"))
        assert log.count("test") == 1
        assert log.count("other") == 1
        assert log.count("absent") == 0

    def test_concurrent_records_are_not_lost(self):
        log = IncidentLog(capacity=10_000)
        threads = [
            threading.Thread(
                target=lambda: [log.record(make(i)) for i in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 4000
        assert log.dropped == 0


class TestJsonExport:
    def test_no_trailer_when_nothing_dropped(self):
        log = IncidentLog(capacity=10)
        log.record(make(0))
        lines = log.to_json_lines().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "test"

    def test_trailer_carries_drop_count(self):
        log = IncidentLog(capacity=2)
        for i in range(5):
            log.record(make(i))
        lines = log.to_json_lines().splitlines()
        assert len(lines) == 3  # 2 retained records + the trailer
        trailer = json.loads(lines[-1])
        assert trailer == {
            "kind": "incident-log-truncated",
            "dropped": 3,
            "capacity": 2,
        }
        # the retained records are the newest ones
        assert json.loads(lines[0])["query"] == "q3"
        assert json.loads(lines[1])["query"] == "q4"
