"""Tests for the metrics registry and its Prometheus exposition.

The export is checked both structurally (HELP/TYPE headers, cumulative
buckets ending in ``+Inf``) and by round-tripping through the small
``parse_prometheus`` reader -- the same check the CI smoke runs over
the CLI's ``--metrics-out`` file.
"""

import json
import math

import pytest

from repro.runtime.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
    quantile,
    service_registry,
    sync_cache_metrics,
)


class TestFamilies:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        fam = reg.counter("queries_total", "Queries by outcome")
        fam.labels(outcome="ok").inc()
        fam.labels(outcome="ok").inc(2)
        fam.labels(outcome="error").inc()
        assert fam.value_for(outcome="ok") == 3
        assert fam.value_for(outcome="error") == 1
        assert fam.value_for(outcome="missing") == 0

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_and_type_guards(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value_for() == 2.5
        with pytest.raises(ValueError):
            reg.counter("c").labels().set(1.0)
        with pytest.raises(ValueError):
            reg.gauge("g").labels().observe(1.0)

    def test_family_is_idempotent_but_typed(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        with pytest.raises(ValueError):
            reg.gauge("c")

    def test_histogram_buckets_sum_count(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            fam.observe(value)
        child = fam.labels()._child
        assert child.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert child.count == 3
        assert child.sum == 55.5


class TestQuantile:
    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert quantile(samples, 0.50) == 50
        assert quantile(samples, 0.99) == 99
        assert quantile(samples, 1.0) == 100

    def test_empty_is_zero(self):
        assert quantile([], 0.99) == 0.0


class TestPrometheusText:
    def test_headers_and_cumulative_buckets(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "A counter").inc(2)
        hist = reg.histogram("h_ms", "A histogram", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        text = reg.to_prometheus()
        assert "# HELP c_total A counter" in text
        assert "# TYPE c_total counter" in text
        assert "# TYPE h_ms histogram" in text
        assert 'h_ms_bucket{le="1"} 1' in text
        assert 'h_ms_bucket{le="10"} 2' in text  # cumulative
        assert 'h_ms_bucket{le="+Inf"} 2' in text
        assert "h_ms_sum 5.5" in text
        assert "h_ms_count 2" in text
        assert text.endswith("\n")

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'back\\slash "quoted"\nnewline'
        reg.counter("c_total").labels(msg=nasty).inc()
        text = reg.to_prometheus()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        parsed = parse_prometheus(text)
        ((_, labels, value),) = parsed["c_total"]["samples"]
        assert labels == {"msg": nasty}
        assert value == 1

    def test_full_round_trip(self):
        reg = service_registry()
        reg.counter("repro_admissions_total").inc(4)
        reg.counter("repro_queries_total").labels(outcome="ok").inc(3)
        reg.histogram("repro_query_latency_ms").observe(12.0)
        reg.gauge("repro_plan_cache_entries").set(7)
        parsed = parse_prometheus(reg.to_prometheus())
        assert parsed["repro_admissions_total"]["type"] == "counter"
        assert parsed["repro_query_latency_ms"]["type"] == "histogram"
        assert parsed["repro_plan_cache_entries"]["samples"][0][2] == 7

        def sample(family, name, **labels):
            for n, l, v in parsed[family]["samples"]:
                if n == name and l == labels:
                    return v
            raise AssertionError(f"{name}{labels} not found")

        assert sample("repro_admissions_total", "repro_admissions_total") == 4
        assert (
            sample(
                "repro_queries_total", "repro_queries_total", outcome="ok"
            )
            == 3
        )
        assert (
            sample(
                "repro_query_latency_ms", "repro_query_latency_ms_count"
            )
            == 1
        )
        # the bucket series is cumulative and ends at +Inf
        inf = sample(
            "repro_query_latency_ms",
            "repro_query_latency_ms_bucket",
            le="+Inf",
        )
        assert inf == 1

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE broken")
        with pytest.raises(ValueError):
            parse_prometheus('m{x=unquoted} 1')


class TestJsonExport:
    def test_to_json_includes_quantiles(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_ms")
        for value in (1.0, 2.0, 3.0, 100.0):
            hist.observe(value)
        data = json.loads(reg.to_json())
        (series,) = data["lat_ms"]["series"]
        assert series["count"] == 4
        assert series["p50"] == 2.0
        assert series["p99"] == 100.0


class _FakeCache:
    """Just enough of PlanCache's surface for sync_cache_metrics."""

    def __init__(self):
        self.state = {"hits": 3, "misses": 1, "entries": 2, "evictions": 0}

    def counters(self):
        return dict(self.state)

    def __len__(self):
        return self.state["entries"]


class TestCacheSync:
    def test_sync_is_delta_based(self):
        reg = service_registry()
        cache = _FakeCache()
        sync_cache_metrics(reg, cache)
        sync_cache_metrics(reg, cache)  # repeated export: no double count
        assert reg.counter("repro_plan_cache_hits_total").value_for() == 3
        assert reg.counter("repro_plan_cache_misses_total").value_for() == 1
        cache.state.update(hits=5, entries=4)
        sync_cache_metrics(reg, cache)
        assert reg.counter("repro_plan_cache_hits_total").value_for() == 5
        assert reg.gauge("repro_plan_cache_entries").value_for() == 4
        assert reg.gauge("repro_plan_cache_hit_ratio").value_for() == 5 / 6

    def test_service_registry_predeclares_families(self):
        text = service_registry().to_prometheus()
        for name in (
            "repro_admissions_total",
            "repro_sheds_total",
            "repro_queries_total",
            "repro_breaker_transitions_total",
            "repro_engine_failures_total",
            "repro_query_latency_ms",
            "repro_plan_cache_hits_total",
            "repro_plan_cache_misses_total",
            "repro_plan_cache_entries",
            "repro_plan_cache_hit_ratio",
        ):
            assert f"# TYPE {name} " in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert math.inf not in DEFAULT_BUCKETS
