"""Tests for the structured tracer: scoping, nesting, exports.

The contracts under test mirror the module docstring: spans only
exist inside a ``trace_scope``; the disabled path records nothing
(pinned by the module-level ``SPANS_STARTED`` counter); worker threads
build their own root spans without cross-talk; and the three exports
(dict, Chrome trace, text render) agree on the recorded tree.
"""

import json
import threading

import repro.runtime.tracing as tracing
from repro.expr import BaseRel, inner
from repro.expr.predicates import eq
from repro.runtime.tracing import (
    Tracer,
    active_tracer,
    add_counter,
    current_span,
    set_tag,
    span,
    timed,
    trace_op,
    trace_scope,
)

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


class TestDisabledPath:
    def test_records_nothing_without_a_scope(self):
        before = tracing.SPANS_STARTED
        with span("a", k="v") as sp:
            assert sp is None
            add_counter("x", 5)
            set_tag("k", "v")
        with trace_op("vector", R1):
            add_counter("rows_out", 3)
        assert tracing.SPANS_STARTED == before
        assert active_tracer() is None
        assert current_span() is None

    def test_null_manager_is_shared(self):
        # one singleton for every disabled call: no per-call allocation
        assert span("a") is span("b") is trace_op("hash", R1)

    def test_trace_scope_none_is_a_noop(self):
        before = tracing.SPANS_STARTED
        with trace_scope(None):
            with span("a"):
                pass
        assert tracing.SPANS_STARTED == before


class TestSpanTree:
    def test_nesting_and_counters(self):
        t = Tracer()
        with trace_scope(t):
            assert active_tracer() is t
            with span("outer", stage="full") as outer:
                assert current_span() is outer
                with span("inner") as sp:
                    add_counter("rows", 2)
                    add_counter("rows", 3)
                    set_tag("engine", "hash")
                assert current_span() is outer
        assert [r.name for r in t.roots] == ["outer"]
        assert t.roots[0].tags == {"stage": "full"}
        child = t.roots[0].children[0]
        assert child.name == "inner"
        assert child.counters == {"rows": 5}
        assert child.tags == {"engine": "hash"}
        assert child.dur_ms is not None and child.dur_ms >= 0.0

    def test_trace_op_uses_fault_site_names(self):
        t = Tracer()
        join = inner(R1, R2, eq("r1_a0", "r2_a0"))
        with trace_scope(t):
            with trace_op("vector", join):
                with trace_op("reference", R1):
                    pass
            with trace_op("hash", op="scan"):
                pass
        names = [sp.name for sp in t.iter_spans()]
        assert names == ["vector.join", "reference.scan", "hash.scan"]

    def test_exception_still_closes_the_span(self):
        t = Tracer()
        try:
            with trace_scope(t), span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert t.roots[0].dur_ms is not None
        assert current_span() is None

    def test_find_and_counter_total(self):
        t = Tracer()
        with trace_scope(t):
            with span("a"):
                add_counter("n", 1)
                with span("b"):
                    add_counter("n", 2)
            with span("b"):
                add_counter("n", 4)
        assert t.find("b").counters["n"] == 2  # depth-first: nested first
        assert t.find("missing") is None
        assert t.counter_total("n") == 7

    def test_nested_scope_starts_a_fresh_root(self):
        outer_tracer, inner_tracer = Tracer(), Tracer()
        with trace_scope(outer_tracer), span("outer"):
            with trace_scope(inner_tracer):
                with span("standalone"):
                    pass
            # back in the outer scope, nesting resumes under "outer"
            with span("child"):
                pass
        assert [r.name for r in inner_tracer.roots] == ["standalone"]
        assert [c.name for c in outer_tracer.roots[0].children] == ["child"]

    def test_timed_returns_the_value(self):
        t = Tracer()
        with trace_scope(t):
            assert timed("compute", lambda: 42) == 42
        assert t.roots[0].name == "compute"


class TestThreads:
    def test_worker_threads_build_disjoint_roots(self):
        t = Tracer()
        errors = []

        def work(name):
            try:
                with trace_scope(t):
                    with span(name):
                        with span(f"{name}.child"):
                            add_counter("ticks")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(4)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert sorted(r.name for r in t.roots) == ["w0", "w1", "w2", "w3"]
        for root in t.roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]
        assert t.counter_total("ticks") == 4


class TestExports:
    def _sample_tracer(self) -> Tracer:
        t = Tracer()
        with trace_scope(t):
            with span("plan", stage="full"):
                with span("enumerate"):
                    add_counter("plans", 7)
        return t

    def test_to_dict_shape(self):
        data = self._sample_tracer().to_dict()
        (root,) = data["spans"]
        assert root["name"] == "plan"
        assert root["tags"] == {"stage": "full"}
        assert root["children"][0]["counters"] == {"plans": 7}
        assert isinstance(root["dur_ms"], float)

    def test_chrome_trace_events(self):
        t = self._sample_tracer()
        events = t.to_chrome_trace()
        assert [e["name"] for e in events] == ["plan", "enumerate"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["tid"] == 0  # single thread, densely renumbered
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        assert events[1]["args"] == {"plans": 7}
        json.dumps(events)  # must be serializable as-is

    def test_render_text_tree(self):
        text = self._sample_tracer().render()
        lines = text.splitlines()
        assert lines[0].startswith("plan") and "stage=full" in lines[0]
        assert lines[1].startswith("  enumerate") and "plans=7" in lines[1]
        assert "ms" in lines[0]

    def test_render_min_ms_hides_fast_spans(self):
        t = self._sample_tracer()
        t.roots[0].dur_ms = 10.0
        t.roots[0].children[0].dur_ms = 0.01
        text = t.render(min_ms=1.0)
        assert "plan" in text and "enumerate" not in text

    def test_render_roots_subset(self):
        t = Tracer()
        with trace_scope(t):
            with span("first"):
                pass
            with span("second"):
                pass
        text = t.render(roots=t.roots[1:])
        assert "second" in text and "first" not in text
