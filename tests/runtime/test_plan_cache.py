"""Cross-query plan cache: keying, invalidation, session integration."""

import json

from repro.expr import BaseRel, Database, JoinKind, left_outer
from repro.expr.evaluate import evaluate
from repro.expr.nodes import Join
from repro.expr.predicates import cmp_const, eq
from repro.expr.rewrite import iter_nodes, replace_at
from repro.optimizer import OptimizationResult, TableStats
from repro.relalg import Relation
from repro.runtime import DegradationLevel, PlanCache, QuerySession, query_fingerprint

EMP = BaseRel("emp", ("eid", "dept"))
DEPT = BaseRel("dept", ("did", "dname"))
QUERY = left_outer(EMP, DEPT, eq("dept", "did"))


def emp_db() -> Database:
    db = Database()
    db.add(
        "emp",
        Relation.base(
            "emp", ["eid", "dept"], [(1, 10), (2, 10), (3, 20), (4, 99)]
        ),
    )
    db.add(
        "dept",
        Relation.base("dept", ["did", "dname"], [(10, "eng"), (20, "ops")]),
    )
    return db


class TestFingerprint:
    def test_structurally_equal_queries_share_a_fingerprint(self):
        other = left_outer(
            BaseRel("emp", ("eid", "dept")),
            BaseRel("dept", ("did", "dname")),
            eq("dept", "did"),
        )
        assert query_fingerprint(QUERY) == query_fingerprint(other)

    def test_different_constants_give_different_fingerprints(self):
        a = left_outer(EMP, DEPT, eq("dept", "did"))
        from repro.expr.nodes import Select

        sel1 = Select(a, cmp_const("eid", "=", 1))
        sel2 = Select(a, cmp_const("eid", "=", 2))
        assert query_fingerprint(sel1) != query_fingerprint(sel2)


class TestPlanCacheUnit:
    def _result(self, plan):
        return OptimizationResult(
            best=plan,
            best_cost=1.0,
            original_cost=2.0,
            plans_considered=3,
            ranked=[(1.0, plan)],
        )

    def test_lookup_counts_hits_and_misses(self):
        cache = PlanCache()
        assert cache.lookup(QUERY, 0) is None
        cache.store(QUERY, 0, self._result(QUERY))
        assert cache.lookup(QUERY, 0) is not None
        assert cache.counters() == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
            "evictions": 0,
        }

    def test_stats_version_invalidates(self):
        cache = PlanCache()
        cache.store(QUERY, 0, self._result(QUERY))
        assert cache.lookup(QUERY, 1) is None

    def test_lru_bound(self):
        cache = PlanCache(max_entries=2)
        for version in range(3):
            cache.store(QUERY, version, self._result(QUERY))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(QUERY, 0) is None  # the oldest fell out

    def test_evict_plan(self):
        cache = PlanCache()
        cache.store(QUERY, 0, self._result(QUERY))
        assert cache.evict_plan(QUERY) == 1
        assert len(cache) == 0


class TestSessionIntegration:
    def test_second_run_hits_the_cache_at_full_level(self):
        session = QuerySession(emp_db())
        first = session.run(QUERY)
        second = session.run(QUERY)
        assert first.plan_cache["hit"] is False
        assert second.plan_cache["hit"] is True
        assert second.degradation_level is DegradationLevel.FULL
        assert second.chosen == first.chosen
        assert second.relation.same_content(first.relation)
        assert session.plan_cache.hits == 1
        assert session.plan_cache.misses == 1

    def test_counters_surface_in_to_dict(self):
        session = QuerySession(emp_db())
        session.run(QUERY)
        summary = session.run(QUERY).to_dict()
        assert summary["plan_cache"]["hit"] is True
        assert summary["plan_cache"]["hits"] == 1
        assert summary["plan_cache"]["entries"] == 1

    def test_stats_refresh_invalidates_sessions_cache(self):
        session = QuerySession(emp_db())
        session.run(QUERY)
        session.stats.add("emp", TableStats(10_000, {"dept": 50}))
        result = session.run(QUERY)
        assert result.plan_cache["hit"] is False
        assert session.plan_cache.misses == 2

    def test_explain_plan_path_uses_the_cache_too(self):
        session = QuerySession(emp_db())
        session.plan(QUERY)
        session.plan(QUERY)
        assert session.plan_cache.hits == 1
        # and run() piggybacks on the entry plan() stored
        result = session.run(QUERY)
        assert result.plan_cache["hit"] is True

    def test_failed_verification_is_never_cached(self):
        wrong = None
        for path, node in iter_nodes(QUERY):
            if isinstance(node, Join) and node.kind is JoinKind.LEFT:
                wrong = replace_at(
                    QUERY,
                    path,
                    Join(JoinKind.INNER, node.left, node.right, node.predicate),
                )
                break
        assert wrong is not None

        def bad_optimize(query, stats, max_plans=5000, budget=None, **kwargs):
            return OptimizationResult(
                best=wrong,
                best_cost=1.0,
                original_cost=2.0,
                plans_considered=1,
                ranked=[(1.0, wrong)],
            )

        db = emp_db()
        session = QuerySession(db, verify=True, optimize_fn=bad_optimize)
        result = session.run(QUERY)
        assert result.verified is False
        assert len(session.plan_cache) == 0
        # the quarantine incident carries the cache counters
        record = json.loads(session.incidents.to_json_lines().splitlines()[-1])
        assert record["kind"] == "verification-mismatch"
        assert "plan_cache" in record["detail"]

    def test_cached_plan_still_produces_correct_rows(self):
        db = emp_db()
        session = QuerySession(db, verify=True)
        first = session.run(QUERY)
        second = session.run(QUERY)
        expected = evaluate(QUERY, db)
        assert first.relation.same_content(expected)
        assert second.relation.same_content(expected)
        assert second.plan_cache["hit"] is True


class TestCrossSessionQuarantine:
    """A plan quarantined by one session must not be re-served by another
    session sharing the same cache (the service's workers do exactly this)."""

    def _wrong_rewrite(self):
        for path, node in iter_nodes(QUERY):
            if isinstance(node, Join) and node.kind is JoinKind.LEFT:
                return replace_at(
                    QUERY,
                    path,
                    Join(JoinKind.INNER, node.left, node.right, node.predicate),
                )
        raise AssertionError("no outer join in the fixture query")

    def test_quarantined_plan_is_not_served_to_a_sibling_session(self):
        wrong = self._wrong_rewrite()

        def bad_optimize(query, stats, max_plans=5000, budget=None, **kwargs):
            return OptimizationResult(
                best=wrong,
                best_cost=1.0,
                original_cost=2.0,
                plans_considered=1,
                ranked=[(1.0, wrong)],
            )

        db = emp_db()
        shared_cache = PlanCache()
        quarantined: set = set()
        first = QuerySession(
            db,
            verify=True,
            optimize_fn=bad_optimize,
            plan_cache=shared_cache,
            quarantined=quarantined,
        )
        # the poisoned entry is cached before verification catches it
        shared_cache.store(
            QUERY,
            first.stats.version,
            OptimizationResult(
                best=wrong,
                best_cost=1.0,
                original_cost=2.0,
                plans_considered=1,
                ranked=[(1.0, wrong)],
            ),
        )
        result = first.run(QUERY)
        assert result.verified is False
        assert wrong in quarantined
        assert len(shared_cache) == 0  # evicted, not just bypassed

        # a sibling session sharing cache + quarantine set plans afresh
        # and never picks the quarantined plan, even if re-offered
        second = QuerySession(
            db,
            verify=True,
            optimize_fn=bad_optimize,
            plan_cache=shared_cache,
            quarantined=quarantined,
        )
        sibling = second.run(QUERY)
        assert sibling.chosen != wrong
        assert sibling.relation.same_content(evaluate(QUERY, db))
        assert len(shared_cache) == 0  # a quarantined best is never re-cached


class TestConcurrentAccess:
    def test_parallel_store_lookup_evict_is_safe(self):
        import threading

        from repro.expr.nodes import Select

        cache = PlanCache(max_entries=8)
        queries = [
            Select(QUERY, cmp_const("eid", "=", i)) for i in range(16)
        ]

        def result_for(q):
            return OptimizationResult(
                best=q,
                best_cost=1.0,
                original_cost=2.0,
                plans_considered=1,
                ranked=[(1.0, q)],
            )

        errors = []

        def worker(offset: int) -> None:
            try:
                for round_ in range(50):
                    q = queries[(offset + round_) % len(queries)]
                    cache.store(q, 0, result_for(q))
                    cache.lookup(q, 0)
                    if round_ % 7 == 0:
                        cache.evict_plan(q)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] == 8 * 50


class TestShardedPlanCache:
    """The sharded cache must be behavior-identical to the flat one --
    the session, snapshot and metrics sync all duck-type against
    :class:`PlanCache`."""

    def _result(self, plan):
        return OptimizationResult(
            best=plan,
            best_cost=1.0,
            original_cost=2.0,
            plans_considered=3,
            ranked=[(1.0, plan)],
        )

    def _queries(self, n):
        from repro.expr.nodes import Select

        return [
            Select(QUERY, cmp_const("eid", "=", i)) for i in range(n)
        ]

    def test_lookup_and_store_route_consistently(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache(shards=4)
        for q in self._queries(20):
            assert cache.lookup(q, 0) is None
            cache.store(q, 0, self._result(q))
            assert cache.lookup(q, 0).best == q
        assert len(cache) == 20
        assert cache.hits == 20 and cache.misses == 20

    def test_counters_aggregate_and_expose_shards(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache(shards=3, max_entries=30)
        for q in self._queries(6):
            cache.lookup(q, 0)
            cache.store(q, 0, self._result(q))
        counters = cache.counters()
        assert counters["shards"] == 3
        assert counters["misses"] == 6
        assert counters["entries"] == 6
        assert counters["hits"] == 0

    def test_spread_uses_multiple_shards(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache(shards=8, max_entries=800)
        for q in self._queries(64):
            cache.store(q, 0, self._result(q))
        occupied = sum(1 for s in cache._shards if len(s))
        assert occupied >= 2  # 64 fingerprints cannot all collide

    def test_evict_plan_scans_every_shard(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache(shards=4)
        queries = self._queries(10)
        # the same chosen plan cached under many fingerprints
        for q in queries:
            cache.store(q, 0, self._result(QUERY))
        assert cache.evict_plan(QUERY) == 10
        assert len(cache) == 0
        assert cache.evictions == 10

    def test_clear_and_len(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache()
        for q in self._queries(5):
            cache.store(q, 0, self._result(q))
        cache.clear()
        assert len(cache) == 0
        assert cache.counters()["entries"] == 0

    def test_stats_version_still_invalidates(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        cache = ShardedPlanCache()
        cache.store(QUERY, 0, self._result(QUERY))
        assert cache.lookup(QUERY, 1) is None
        assert cache.lookup(QUERY, 0) is not None

    def test_rejects_zero_shards(self):
        import pytest

        from repro.runtime.plan_cache import ShardedPlanCache

        with pytest.raises(ValueError):
            ShardedPlanCache(shards=0)

    def test_session_accepts_sharded_cache(self):
        from repro.runtime.plan_cache import ShardedPlanCache

        db = emp_db()
        cache = ShardedPlanCache()
        session = QuerySession(db, plan_cache=cache)
        first = session.run(QUERY)
        second = session.run(QUERY)
        assert second.relation.same_content(first.relation)
        assert cache.hits >= 1
