"""Shared-memory paging through the process pool.

The page layer itself is proven in ``tests/relalg/test_pages.py``;
these tests prove the *runtime threading*: the supervisor pages the
database once at spawn, children attach instead of unpickling, the
pickle fallback engages per-table and via the feature probe, warm-up
broadcasts reach replacement workers, and every segment is reclaimed
at shutdown.
"""

import os
from fractions import Fraction

import pytest

from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel, Join, JoinKind
from repro.expr.predicates import eq
from repro.relalg import Relation
from repro.relalg.pages import pages_supported
from repro.runtime.procpool import ProcPoolConfig
from repro.runtime.service import QueryService

pytestmark = pytest.mark.skipif(
    not pages_supported(), reason="shared memory unavailable"
)

FAST = ProcPoolConfig(
    heartbeat_timeout_s=5.0,
    restart_backoff_s=0.01,
    restart_backoff_cap_s=0.05,
    restart_jitter_s=0.0,
)


def small_db() -> Database:
    db = Database()
    db.add(
        "r",
        Relation.base("r", ["r_a", "r_b"], [(1, 10), (2, 20), (3, 30)]),
    )
    db.add("s", Relation.base("s", ["s_a"], [(1,), (2,), (4,)]))
    return db


def join_query() -> Join:
    return Join(
        JoinKind.INNER,
        BaseRel("r", ("r_a", "r_b")),
        BaseRel("s", ("s_a",)),
        eq("r_a", "s_a"),
    )


class TestShmPath:
    def test_pages_built_and_reclaimed(self):
        db = small_db()
        expected = evaluate(join_query(), db)
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST
        )
        try:
            assert service.shm_enabled
            registry = service._supervisor.page_registry
            assert registry is not None
            segments = registry.segment_names()
            assert len(segments) == 2
            for segment in segments:
                assert os.path.exists(f"/dev/shm/{segment}")
            result = service.run(join_query(), timeout=120)
            assert result.relation.same_content(expected)
            snap = service.snapshot()
            assert snap["shm"] is True
            proc = snap["procpool"]
            assert proc["shm"]["segments"] == 2
            assert proc["shm"]["fallback_tables"] == []
            assert proc["shm"]["bytes"] > 0
        finally:
            service.close()
        for segment in segments:
            assert not os.path.exists(f"/dev/shm/{segment}")

    def test_shm_metrics_gauges(self):
        service = QueryService(
            small_db(), workers=1, isolation="process", procpool=FAST
        )
        try:
            metrics = service.metrics.to_dict()
            segs = metrics["repro_shm_segments"]["series"][0]["value"]
            nbytes = metrics["repro_shm_bytes"]["series"][0]["value"]
            assert segs == 2.0
            assert nbytes > 0
        finally:
            service.close()

    def test_unpageable_table_falls_back_per_table(self):
        db = small_db()
        db.add(
            "frac",
            Relation.base("frac", ["f_a"], [(Fraction(1, 2),), (Fraction(2, 1),)]),
        )
        expected = evaluate(join_query(), db)
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST
        )
        try:
            registry = service._supervisor.page_registry
            assert set(registry.fallback) == {"frac"}
            assert set(registry.handles) == {"r", "s"}
            snap = service.snapshot()["procpool"]["shm"]
            assert snap["fallback_tables"] == ["frac"]
            # a query over the paged tables still answers correctly
            result = service.run(join_query(), timeout=120)
            assert result.relation.same_content(expected)
            # ... and so does one over the fallback table
            frac = service.run(BaseRel("frac", ("f_a",)), timeout=120)
            assert frac.relation.same_content(db["frac"])
            fallbacks = service.metrics.counter(
                "repro_shm_fallback_total"
            ).value_for()
            assert fallbacks == 1.0
        finally:
            service.close()


class TestFallbackPaths:
    def test_shm_false_forces_pickle_path(self):
        db = small_db()
        expected = evaluate(join_query(), db)
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST, shm=False
        )
        try:
            assert not service.shm_enabled
            assert service._supervisor.page_registry is None
            assert service.snapshot()["procpool"]["shm"] is None
            result = service.run(join_query(), timeout=120)
            assert result.relation.same_content(expected)
        finally:
            service.close()

    def test_probe_kill_switch_forces_pickle_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        db = small_db()
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST
        )
        try:
            assert not service.shm_enabled
            assert service._supervisor.page_registry is None
            result = service.run(join_query(), timeout=120)
            assert result.relation.same_content(evaluate(join_query(), db))
        finally:
            service.close()

    def test_thread_isolation_never_pages(self):
        service = QueryService(small_db(), workers=1, isolation="thread")
        try:
            assert not service.shm_enabled
            assert service.snapshot()["procpool"] is None
        finally:
            service.close()


class TestWarmup:
    def test_replacement_worker_receives_warmup_broadcast(self):
        db = small_db()
        service = QueryService(
            db, workers=1, isolation="process", procpool=FAST
        )
        try:
            service.run(join_query(), timeout=120)
            supervisor = service._supervisor
            assert supervisor.snapshot()["warm_queries"] == 1
            before = service.metrics.counter(
                "repro_cache_warmup_total"
            ).value_for()
            # force a respawn; the next route must broadcast the warm set
            for slot in supervisor._slots:
                supervisor._kill(slot, "test-warmup")
            service.run(join_query(), timeout=120)
            after = service.metrics.counter(
                "repro_cache_warmup_total"
            ).value_for()
            assert after >= before + 1
        finally:
            service.close()

    def test_warm_set_is_bounded(self):
        db = small_db()
        config = ProcPoolConfig(
            heartbeat_timeout_s=5.0,
            restart_backoff_s=0.01,
            restart_jitter_s=0.0,
            warmup_limit=2,
        )
        service = QueryService(
            db, workers=1, isolation="process", procpool=config
        )
        try:
            from repro.expr.nodes import Select
            from repro.expr.predicates import cmp_const

            for i in range(5):
                q = Select(
                    BaseRel("r", ("r_a", "r_b")), cmp_const("r_a", "=", i)
                )
                service.run(q, timeout=120)
            assert service._supervisor.snapshot()["warm_queries"] == 2
        finally:
            service.close()
