"""Cardinality feedback, mid-query re-planning, containment."""

import json

import pytest

from repro.errors import ReplanTriggered, UserInputError
from repro.expr import BaseRel, Database, JoinKind
from repro.expr.evaluate import evaluate
from repro.expr.nodes import Join
from repro.expr.predicates import eq
from repro.optimizer import TableStats
from repro.optimizer.cardinality import estimate
from repro.optimizer.stats import Statistics
from repro.relalg import Relation
from repro.runtime import (
    CardinalityMonitor,
    DegradationLevel,
    FaultPlan,
    FeedbackStore,
    PlanCache,
    QuerySession,
    Tracer,
    fault_scope,
    trace_scope,
)
from repro.runtime.feedback import (
    monitor_record,
    monitor_scope,
    predicate_key,
    subtree_key,
)

R = BaseRel("r", ("r_a", "r_b"))
S = BaseRel("s", ("s_b", "s_c"))
T = BaseRel("t", ("t_c", "t_d"))
RS = Join(JoinKind.INNER, R, S, eq("r_b", "s_b"))
QUERY = Join(JoinKind.INNER, RS, T, eq("s_c", "t_c"))


def skewed_db() -> Database:
    """r join s fans out 12x (10 distinct b values over 120 rows each);
    s join t is tiny (t has 12 rows, unique c)."""
    return Database(
        {
            "r": Relation.base(
                "r", ["r_a", "r_b"], [(i, i % 10) for i in range(120)]
            ),
            "s": Relation.base(
                "s", ["s_b", "s_c"], [(i % 10, i) for i in range(120)]
            ),
            "t": Relation.base(
                "t", ["t_c", "t_d"], [(i, i * 2) for i in range(12)]
            ),
        }
    )


def lying_stats(t_rows: int = 600) -> Statistics:
    """Statistics that undersell r join s (distincts inflated to 120,
    so est = 120 vs actual 1440) and oversell t (claimed ``t_rows``
    vs actual 12) -- the misestimation the adaptive loop must catch."""
    stats = Statistics(
        {
            "r": TableStats(120, {"r_a": 120, "r_b": 120}),
            "s": TableStats(120, {"s_b": 120, "s_c": 120}),
            "t": TableStats(t_rows, {"t_c": 120, "t_d": 120}),
        }
    )
    stats.version = 7
    return stats


class TestFeedbackStoreUnit:
    def test_subtree_observation_overrides_estimate(self):
        store = FeedbackStore()
        store.observe(RS, est=120.0, actual=1440.0)
        assert store.corrected_rows(RS, 120.0) == 1440.0

    def test_predicate_factor_transfers_to_other_join_orders(self):
        store = FeedbackStore()
        store.observe(RS, est=120.0, actual=1440.0)
        # same predicate in a different tree: no subtree entry, but the
        # 12x selectivity factor carries over
        flipped = Join(JoinKind.INNER, S, R, eq("r_b", "s_b"))
        assert store.corrected_rows(flipped, 50.0) == pytest.approx(600.0)

    def test_predicate_factor_composes_to_a_fixpoint(self):
        store = FeedbackStore()
        store.observe(RS, est=120.0, actual=1440.0)
        factor = store._entries[predicate_key(RS.predicate)].factor
        assert factor == pytest.approx(12.0)
        # next round the estimate already includes the 12x factor, so a
        # matching observation must leave it unchanged
        store.observe(RS, est=1440.0, actual=1440.0)
        factor = store._entries[predicate_key(RS.predicate)].factor
        assert factor == pytest.approx(12.0)

    def test_generation_bumps_only_on_material_change(self):
        store = FeedbackStore(bump_ratio=2.0)
        store.observe(RS, est=100.0, actual=130.0)  # 1.3x: immaterial
        assert store.generation == 0
        store.observe(RS, est=130.0, actual=600.0)  # >2x: material
        assert store.generation > 0

    def test_lru_bound_evicts_oldest_fingerprint(self):
        store = FeedbackStore(max_entries=3)
        rels = [BaseRel(f"x{i}", (f"x{i}_a",)) for i in range(5)]
        for rel in rels:
            store.observe(rel, est=10.0, actual=10.0)
        assert len(store) == 3
        assert store.evictions == 2
        assert store.corrected_rows(rels[0], 10.0) is None  # evicted
        assert store.corrected_rows(rels[4], 99.0) == 10.0  # retained

    def test_entries_are_inert_under_a_different_stats_version(self):
        store = FeedbackStore()
        store.observe(RS, est=120.0, actual=1440.0, stats_version=1)
        assert store.corrected_rows(RS, 120.0, stats_version=1) == 1440.0
        assert store.corrected_rows(RS, 120.0, stats_version=2) is None

    def test_suspect_ratio_quarantines_immediately(self):
        store = FeedbackStore(suspect_ratio=1e4)
        store.observe(RS, est=10.0, actual=10.0 * 1e5)  # wildly off
        counters = store.counters()
        assert counters["quarantines"] >= 1
        assert store.corrected_rows(RS, 10.0) is None
        # quarantine sticks: later sane observations are not believed
        store.observe(RS, est=10.0, actual=20.0)
        assert store.corrected_rows(RS, 10.0) is None

    def test_oscillation_quarantines_after_max_swings(self):
        store = FeedbackStore(swing_ratio=16.0, max_swings=2)
        x = BaseRel("x", ("x_a",))
        store.observe(x, est=100.0, actual=100.0 * 32)  # up 32x
        store.observe(x, est=100.0, actual=100.0 / 32)  # down 32x: swing 1
        store.observe(x, est=100.0, actual=100.0 * 32)  # up again: swing 2
        assert store.counters()["quarantined_entries"] >= 1
        assert store.corrected_rows(x, 100.0) is None

    def test_quarantine_bumps_generation(self):
        store = FeedbackStore(suspect_ratio=1e4)
        store.observe(RS, est=120.0, actual=1440.0)
        before = store.generation
        store.observe(RS, est=120.0, actual=1440.0 * 1e5)
        assert store.generation > before

    def test_clear_quarantine_lets_a_fingerprint_learn_again(self):
        store = FeedbackStore(suspect_ratio=1e4)
        store.observe(RS, est=10.0, actual=10.0 * 1e5)
        assert store.clear_quarantine() >= 1
        store.observe(RS, est=10.0, actual=40.0)
        assert store.corrected_rows(RS, 10.0) == 40.0

    def test_json_round_trip_preserves_corrections(self, tmp_path):
        store = FeedbackStore()
        store.observe(RS, est=120.0, actual=1440.0, stats_version=3)
        path = tmp_path / "fb.json"
        store.save(path)
        loaded = FeedbackStore.load(path)
        assert loaded.generation == store.generation
        assert loaded.corrected_rows(RS, 120.0, stats_version=3) == 1440.0
        # the file is plain JSON with a schema version
        data = json.loads(path.read_text())
        assert data["version"] == 1 and data["entries"]

    def test_bad_json_is_a_typed_user_error(self):
        with pytest.raises(UserInputError):
            FeedbackStore.from_json("not json")
        with pytest.raises(UserInputError):
            FeedbackStore.from_json('{"entries": [{"kind": "subtree"}]}')

    def test_feedback_perturb_fault_poisons_then_quarantines(self):
        # a feedback:perturb clause scales observations at the
        # feedback.ingest site -- enough rounds of a 16x lie must end
        # in quarantine, never in a permanently wedged store
        plan = FaultPlan.parse("feedback:perturb=1000000x", seed=1)
        store = FeedbackStore(suspect_ratio=1e4)
        with fault_scope(plan.stream(0)):
            store.observe(RS, est=120.0, actual=120.0)
        assert store.counters()["quarantines"] >= 1
        assert store.corrected_rows(RS, 120.0) is None


class TestCardinalityMonitor:
    def test_threshold_must_exceed_one(self):
        with pytest.raises(UserInputError):
            CardinalityMonitor(threshold=1.0)

    def test_record_triggers_once_per_node(self):
        monitor = CardinalityMonitor(threshold=4.0)
        monitor.estimates[subtree_key(RS)] = 100.0
        with pytest.raises(ReplanTriggered) as excinfo:
            monitor.record(RS, 1000)
        assert excinfo.value.est == 100.0
        assert excinfo.value.actual == 1000.0
        monitor.record(RS, 1000)  # fired set: same node never re-trips

    def test_result_is_cached_before_the_trigger_raises(self):
        monitor = CardinalityMonitor(threshold=4.0)
        monitor.estimates[subtree_key(RS)] = 100.0
        sentinel = object()
        with pytest.raises(ReplanTriggered):
            monitor.record(RS, 1000, result=sentinel)
        assert monitor.lookup(RS) is sentinel
        assert monitor.reused == 1

    def test_cache_respects_the_row_bound(self):
        monitor = CardinalityMonitor(max_cached_rows=10)
        monitor.record(R, 8, result="small")
        monitor.record(S, 8, result="too-big-now")
        assert monitor.lookup(R) == "small"
        assert monitor.lookup(S) is None

    def test_disarm_keeps_observing_without_triggering(self):
        monitor = CardinalityMonitor(threshold=4.0)
        monitor.estimates[subtree_key(RS)] = 100.0
        monitor.disarm()
        monitor.record(RS, 10_000)
        assert not monitor.armed
        assert len(monitor.drain()) == 1

    def test_hooks_are_inert_without_an_active_scope(self):
        monitor_record(RS, 10_000)  # no monitor: must not raise
        monitor = CardinalityMonitor(threshold=4.0)
        monitor.estimates[subtree_key(RS)] = 1.0
        with monitor_scope(monitor):
            with pytest.raises(ReplanTriggered):
                monitor_record(RS, 1000)


class TestEstimatorCorrection:
    def test_estimate_applies_feedback_and_scales_parents(self):
        stats = lying_stats()
        baseline = estimate(QUERY, stats).rows
        feedback = FeedbackStore()
        feedback.observe(RS, est=120.0, actual=1440.0, stats_version=7)
        stats.feedback = feedback
        corrected = estimate(RS, stats).rows
        assert corrected == 1440.0
        assert estimate(QUERY, stats).rows > baseline  # parent re-scaled

    def test_no_feedback_attached_means_no_change(self):
        stats = lying_stats()
        assert estimate(RS, stats).rows == pytest.approx(120.0)


class TestAdaptiveSession:
    def test_replan_lands_on_a_cheaper_plan_and_stays_correct(self):
        db = skewed_db()
        truth = evaluate(QUERY, db)
        session = QuerySession(
            db, stats=lying_stats(), executor="vector", replan_threshold=4.0
        )
        tracer = Tracer()
        with trace_scope(tracer):
            result = session.run(QUERY)
        assert result.relation.same_content(truth)
        assert result.replans == 1
        (event,) = result.replan_events
        assert event["outcome"] == "replanned"
        assert event["new_cost"] < event["old_cost"]
        assert event["actual"] >= 4.0 * event["est"]
        spans = {s.name for s in tracer.iter_spans()}
        assert {"replan.trigger", "replan.reoptimize", "replan.resume"} <= spans
        incident = next(i for i in session.incidents if i.kind == "replan")
        assert incident.action == "replanned"

    def test_second_run_is_pre_corrected_and_replan_free(self):
        db = skewed_db()
        session = QuerySession(
            db, stats=lying_stats(), executor="vector", replan_threshold=4.0
        )
        first = session.run(QUERY)
        second = session.run(QUERY)
        assert first.replans == 1
        assert second.replans == 0
        assert second.relation.same_content(first.relation)

    def test_replan_cap_gives_up_gracefully(self):
        db = skewed_db()
        session = QuerySession(
            db,
            stats=lying_stats(),
            executor="vector",
            replan_threshold=1.5,
            max_replans=0,
        )
        result = session.run(QUERY)
        truth = evaluate(QUERY, db)
        assert result.relation.same_content(truth)
        assert any(
            e["outcome"] == "gave-up" for e in result.replan_events
        )

    def test_all_three_engines_answer_correctly_under_replanning(self):
        db = skewed_db()
        truth = evaluate(QUERY, db)
        for engine in ("vector", "hash", "reference"):
            session = QuerySession(
                db,
                stats=lying_stats(),
                executor=engine,
                replan_threshold=4.0,
            )
            result = session.run(QUERY)
            assert result.relation.same_content(truth), engine
            assert result.replans >= 1, engine

    def test_bad_threshold_is_a_typed_user_error(self):
        with pytest.raises(UserInputError):
            QuerySession(skewed_db(), replan_threshold=0.5).run(QUERY)


class TestPlanCacheFeedbackInvalidation:
    def test_warm_hit_then_material_ingest_then_miss_then_recached(self):
        db = skewed_db()
        stats = Statistics.from_database(db)  # honest stats: no replans
        feedback = FeedbackStore()
        session = QuerySession(
            db,
            stats=stats,
            executor="vector",
            feedback=feedback,
            replan_threshold=50.0,
        )
        session.run(QUERY)
        session.run(QUERY)
        counters = session.plan_cache.counters()
        assert counters["hits"] == 1  # warm
        # a material correction bumps the generation...
        generation = feedback.generation
        feedback.observe(RS, est=10.0, actual=10_000.0,
                         stats_version=stats.version)
        assert feedback.generation > generation
        # ...so the cached plan self-invalidates (miss) and is re-cached
        session.run(QUERY)
        after = session.plan_cache.counters()
        assert after["hits"] == 1
        assert after["misses"] == counters["misses"] + 1
        session.run(QUERY)
        assert session.plan_cache.counters()["hits"] == 2

    def test_generation_composes_across_sessions_sharing_the_cache(self):
        # the PR-4 shared-cache path: worker sessions share one
        # PlanCache *and* one FeedbackStore, so one worker's correction
        # invalidates every worker's cached plans
        db = skewed_db()
        stats = Statistics.from_database(db)
        cache = PlanCache()
        feedback = FeedbackStore()

        def worker() -> QuerySession:
            return QuerySession(
                db,
                stats=stats,
                executor="vector",
                plan_cache=cache,
                feedback=feedback,
                replan_threshold=50.0,
            )

        worker().run(QUERY)
        assert worker().run(QUERY).plan_cache["hit"] is True
        feedback.observe(RS, est=10.0, actual=10_000.0,
                         stats_version=stats.version)
        third = worker().run(QUERY)
        assert third.plan_cache["hit"] is False  # invalidated for all
        assert worker().run(QUERY).plan_cache["hit"] is True  # re-cached

    def test_monitor_only_arms_at_the_full_rung(self):
        # with optimization unavailable the ladder answers as written;
        # re-planning must not trigger there (nothing to re-plan with)
        db = skewed_db()

        def broken_optimize(*args, **kwargs):
            from repro.errors import OptimizerInternalError

            raise OptimizerInternalError("no optimizer today")

        session = QuerySession(
            db,
            stats=lying_stats(),
            executor="vector",
            replan_threshold=1.5,
            optimize_fn=broken_optimize,
        )
        result = session.run(QUERY)
        assert result.degradation_level is not DegradationLevel.FULL
        assert result.replans == 0
        assert result.relation.same_content(evaluate(QUERY, db))
