"""Property test: hash engine == reference interpreter, adversarially.

The fast executor (``repro.exec.execute``) must produce the same bag
of rows as the reference interpreter for *every* query shape it
accepts: all four join kinds, complex (multi-atom) predicates, and --
critically -- predicates with no equality atom at all, where the hash
path cannot apply and the engine must fall back to nested loops.
Databases are salted with NULLs well past the usual rate, and empty
relations are drawn on purpose: padded tuples, never-matching NULL
keys, and zero-row operands are exactly where outer-join execution
bugs hide.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.exec import execute
from repro.expr import JoinKind, evaluate, to_algebra
from repro.expr.nodes import Join
from repro.expr.rewrite import iter_nodes
from repro.workloads.random_db import random_database, random_join_query


def _check(query, rng, null_probability, rounds=3):
    names = tuple(sorted(query.base_names))
    for _ in range(rounds):
        db = random_database(
            rng, names, null_probability=null_probability, max_rows=4
        )
        got = execute(query, db)
        want = evaluate(query, db)
        assert got.same_content(want), to_algebra(query)


class TestEngineEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=5),
        null_probability=st.sampled_from([0.0, 0.15, 0.35]),
        outer_probability=st.sampled_from([0.0, 0.5, 1.0]),
    )
    def test_mixed_kind_queries(
        self, seed, n, null_probability, outer_probability
    ):
        rng = random.Random(seed)
        query = random_join_query(
            rng,
            n,
            outer_probability=outer_probability,
            complex_probability=0.4,
        )
        _check(query, rng, null_probability)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=4),
        null_probability=st.sampled_from([0.1, 0.35]),
    )
    def test_no_equi_atom_forces_nested_loop_fallback(
        self, seed, n, null_probability
    ):
        # no "=" in the op pool: split_equi_conjuncts finds no keys and
        # every join must take the nested-loop path
        rng = random.Random(seed)
        query = random_join_query(
            rng,
            n,
            outer_probability=0.6,
            complex_probability=0.4,
            ops=("<", "<>"),
        )
        _check(query, rng, null_probability)

    def test_every_join_kind_is_reachable(self):
        """The generator really does emit all four kinds (meta-check:
        the properties above aren't vacuously skipping FULL/RIGHT)."""
        rng = random.Random(0)
        seen = set()
        for _ in range(200):
            query = random_join_query(rng, 4, outer_probability=0.7)
            for _, node in iter_nodes(query):
                if isinstance(node, Join):
                    seen.add(node.kind)
            if seen == set(JoinKind):
                break
        assert seen == set(JoinKind)
