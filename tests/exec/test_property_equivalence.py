"""Property test: hash and vector engines == reference, adversarially.

Both fast executors (``repro.exec.execute`` and the columnar
``repro.exec.execute_vector``) must produce the same bag of rows as
the reference interpreter for *every* query shape they accept: all
four join kinds, complex (multi-atom) predicates, and -- critically --
predicates with no equality atom at all, where the hash path cannot
apply and the engines must fall back to nested loops.  Databases are
salted with NULLs well past the usual rate, and empty relations are
drawn on purpose: padded tuples, never-matching NULL keys, and
zero-row operands are exactly where outer-join execution bugs hide.
GS-bearing plans from the paper's enumerator and duplicate-heavy bags
get their own properties: generalized selection's set difference and
the vector engine's virtual-id provenance are only exercised there.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import enumerate_plans
from repro.exec import execute, execute_vector
from repro.expr import JoinKind, evaluate, to_algebra
from repro.expr.nodes import GenSelect, Join
from repro.expr.rewrite import iter_nodes
from repro.workloads.random_db import random_database, random_join_query


def _check(query, rng, null_probability, rounds=3, max_rows=4, min_rows=0):
    names = tuple(sorted(query.base_names))
    for _ in range(rounds):
        db = random_database(
            rng,
            names,
            null_probability=null_probability,
            max_rows=max_rows,
            min_rows=min_rows,
        )
        want = evaluate(query, db)
        assert execute(query, db).same_content(want), to_algebra(query)
        assert execute_vector(query, db).same_content(want), to_algebra(query)


class TestEngineEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=5),
        null_probability=st.sampled_from([0.0, 0.15, 0.35]),
        outer_probability=st.sampled_from([0.0, 0.5, 1.0]),
    )
    def test_mixed_kind_queries(
        self, seed, n, null_probability, outer_probability
    ):
        rng = random.Random(seed)
        query = random_join_query(
            rng,
            n,
            outer_probability=outer_probability,
            complex_probability=0.4,
        )
        _check(query, rng, null_probability)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=4),
        null_probability=st.sampled_from([0.1, 0.35]),
    )
    def test_no_equi_atom_forces_nested_loop_fallback(
        self, seed, n, null_probability
    ):
        # no "=" in the op pool: split_equi_conjuncts finds no keys and
        # every join must take the nested-loop path
        rng = random.Random(seed)
        query = random_join_query(
            rng,
            n,
            outer_probability=0.6,
            complex_probability=0.4,
            ops=("<", "<>"),
        )
        _check(query, rng, null_probability)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=4),
        null_probability=st.sampled_from([0.1, 0.3]),
    )
    def test_gs_bearing_plans_match_original(self, seed, n, null_probability):
        """Reordered plans containing the paper's generalized selection
        evaluate identically on every engine -- σ*'s set difference
        over virtual ids is the vector engine's hardest case."""
        rng = random.Random(seed)
        query = random_join_query(rng, n, outer_probability=0.8)
        plans = enumerate_plans(query, max_plans=60)
        gs_plans = [
            plan
            for plan in plans
            if any(isinstance(node, GenSelect) for node in plan.walk())
        ][:3]
        names = tuple(sorted(query.base_names))
        for _ in range(2):
            db = random_database(
                rng, names, null_probability=null_probability, max_rows=4
            )
            want = evaluate(query, db)
            for plan in gs_plans:
                assert evaluate(plan, db).same_content(want), to_algebra(plan)
                assert execute(plan, db).same_content(want), to_algebra(plan)
                assert execute_vector(plan, db).same_content(want), (
                    to_algebra(plan)
                )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=4),
        outer_probability=st.sampled_from([0.0, 0.7]),
    )
    def test_duplicate_heavy_bags(self, seed, n, outer_probability):
        """Bags with many duplicate rows: the tiny value domain forces
        repeated tuples, so any engine that conflates bag and set
        semantics (or loses virtual-id provenance) diverges here."""
        rng = random.Random(seed)
        query = random_join_query(
            rng, n, outer_probability=outer_probability
        )
        _check(
            query, rng, null_probability=0.15, min_rows=4, max_rows=8
        )

    def test_every_join_kind_is_reachable(self):
        """The generator really does emit all four kinds (meta-check:
        the properties above aren't vacuously skipping FULL/RIGHT)."""
        rng = random.Random(0)
        seen = set()
        for _ in range(200):
            query = random_join_query(rng, 4, outer_probability=0.7)
            for _, node in iter_nodes(query):
                if isinstance(node, Join):
                    seen.add(node.kind)
            if seen == set(JoinKind):
                break
        assert seen == set(JoinKind)
