"""Property tests: order-aware execution == reference, adversarially.

The order machinery adds three behaviors that must not change query
*content*: the Sort enforcer (all engines must emit the exact same
sequence, not just the same bag -- that is the operator's whole
contract), the vector engine's merge join (taken when both inputs
arrive sorted on the keys), and the streaming GROUP BY / σ* paths
(taken when the input is run-clustered).  Inputs are duplicate-heavy
and NULL-salted on purpose: ties, NULL keys, and padded tuples are
where run detection and merge alignment break first.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import enumerate_plans
from repro.exec import execute, execute_vector
from repro.expr import evaluate, to_algebra
from repro.expr.nodes import BaseRel, GenSelect, GroupBy, Join, JoinKind, Sort
from repro.expr.orderprops import provided_order, streaming_run_prefix
from repro.expr.predicates import eq
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.relalg.ordering import attr_key_fn
from repro.workloads.random_db import random_database, random_join_query

_ENGINES = (evaluate, execute, execute_vector)


def _signature(relation):
    """Row sequence projected to real attrs (virtual ids differ by
    construction order across engines only for non-Sort shapes)."""
    attrs = relation.real.attrs
    return [tuple(repr(row[a]) for a in attrs) for row in relation.rows]


def _sorted_query(rng, n):
    """A random inner/outer join wrapped in a root Sort on real attrs."""
    query = random_join_query(rng, n, outer_probability=0.4)
    attrs = rng.sample(query.real_attrs, k=min(2, len(query.real_attrs)))
    keys = tuple((a, rng.random() < 0.5) for a in attrs)
    return Sort(query, keys)


class TestSortEnforcer:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        n=st.integers(min_value=2, max_value=4),
        null_probability=st.sampled_from([0.0, 0.2, 0.4]),
    )
    def test_all_engines_emit_identical_sequences(
        self, seed, n, null_probability
    ):
        rng = random.Random(seed)
        query = _sorted_query(rng, n)
        db = random_database(
            rng,
            tuple(sorted(query.base_names)),
            null_probability=null_probability,
            max_rows=5,
        )
        want = evaluate(query, db)
        # exact sequence equality, not bag equality: Sort's contract
        for engine in (execute, execute_vector):
            got = engine(query, db)
            assert _signature(got) == _signature(want), to_algebra(query)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_output_actually_sorted_by_the_convention(self, seed):
        rng = random.Random(seed)
        query = _sorted_query(rng, 3)
        db = random_database(
            rng,
            tuple(sorted(query.base_names)),
            null_probability=0.3,
            max_rows=5,
        )
        rows = evaluate(query, db).rows
        key = attr_key_fn(query.keys)
        assert all(
            key(rows[i]) <= key(rows[i + 1]) for i in range(len(rows) - 1)
        )


class TestMergeJoin:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        null_probability=st.sampled_from([0.0, 0.25, 0.5]),
        dup_values=st.sampled_from([1, 2]),
    )
    def test_merge_path_matches_hash_on_duplicates_and_nulls(
        self, seed, null_probability, dup_values
    ):
        """Both join inputs sorted on the keys routes the vector
        engine through ``merge.join``; tiny key domains force heavy
        duplication, the worst case for run alignment."""
        rng = random.Random(seed)
        db = random_database(
            rng,
            ("r1", "r2"),
            null_probability=null_probability,
            max_rows=3 + 3 * dup_values,
        )
        lk = f"r1_a{rng.randint(0, 1)}"
        rk = f"r2_a{rng.randint(0, 1)}"
        kind = rng.choice((JoinKind.INNER, JoinKind.LEFT))
        sorted_join = Join(
            kind,
            Sort(BaseRel("r1", ("r1_a0", "r1_a1")), ((lk, False),)),
            Sort(BaseRel("r2", ("r2_a0", "r2_a1")), ((rk, False),)),
            eq(lk, rk),
        )
        want = evaluate(sorted_join, db)
        assert execute(sorted_join, db).same_content(want)
        assert execute_vector(sorted_join, db).same_content(want)

    def test_left_major_order_passes_through(self):
        """An inner join's output carries its left child's order, the
        fact the Pareto DP leans on -- verified on every engine."""
        rng = random.Random(11)
        db = random_database(rng, ("r1", "r2"), max_rows=6)
        join = Join(
            JoinKind.INNER,
            Sort(BaseRel("r1", ("r1_a0", "r1_a1")), (("r1_a0", False),)),
            BaseRel("r2", ("r2_a0", "r2_a1")),
            eq("r1_a1", "r2_a0"),
        )
        assert provided_order(join) == (("r1_a0", False),)
        key = attr_key_fn(provided_order(join))
        for engine in _ENGINES:
            rows = engine(join, db).rows
            assert all(
                key(rows[i]) <= key(rows[i + 1])
                for i in range(len(rows) - 1)
            ), engine.__name__


class TestStreamingGrouping:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        null_probability=st.sampled_from([0.0, 0.3]),
        group_arity=st.integers(min_value=1, max_value=2),
    )
    def test_streaming_group_by_identical_to_hash(
        self, seed, null_probability, group_arity
    ):
        """GROUP BY over a sorted child takes the streaming path; the
        result must be byte-identical (same rows, same order, same
        virtual ids) to the reference hash grouping."""
        rng = random.Random(seed)
        db = random_database(
            rng, ("r1", "r2"), null_probability=null_probability, max_rows=6
        )
        core = random_join_query(rng, 2, outer_probability=0.0)
        group_by = tuple(rng.sample(core.real_attrs, k=group_arity))
        agg_arg = rng.choice(core.real_attrs)
        specs = (
            AggregateSpec("n", AggregateFunction.COUNT),
            AggregateSpec("s", AggregateFunction.SUM, agg_arg),
        )
        sort_keys = tuple((a, False) for a in group_by)
        streaming = GroupBy(
            Sort(core, sort_keys), group_by, specs, name="g"
        )
        assert streaming_run_prefix(
            provided_order(streaming.child), group_by
        ), "precondition: the child order must enable streaming"
        want = evaluate(GroupBy(Sort(core, sort_keys), group_by, specs, name="g"), db)
        for engine in (execute, execute_vector):
            got = engine(streaming, db)
            assert _signature(got) == _signature(want), to_algebra(streaming)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        null_probability=st.sampled_from([0.1, 0.3]),
    )
    def test_gs_plans_over_sorted_inputs_match(self, seed, null_probability):
        """σ*-bearing reordered plans stay bag-equivalent when their
        outer-join inputs are NULL-salted -- the streaming σ* path's
        per-run set difference against the hash operator's global
        one."""
        rng = random.Random(seed)
        query = random_join_query(rng, 3, outer_probability=0.9)
        plans = [
            plan
            for plan in enumerate_plans(query, max_plans=60)
            if any(isinstance(node, GenSelect) for node in plan.walk())
        ][:3]
        db = random_database(
            rng,
            tuple(sorted(query.base_names)),
            null_probability=null_probability,
            max_rows=4,
        )
        want = evaluate(query, db)
        for plan in plans:
            for engine in (execute, execute_vector):
                assert engine(plan, db).same_content(want), to_algebra(plan)
