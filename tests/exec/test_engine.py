"""The fast executor must agree with the reference interpreter, always."""

import random
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import execute, hash_join
from repro.exec.hash_join import split_equi_conjuncts
from repro.expr import (
    BaseRel,
    Database,
    GroupBy,
    JoinKind,
    evaluate,
    full_outer,
    inner,
    left_outer,
    right_outer,
    to_algebra,
)
from repro.expr.predicates import cmp_attr, eq, make_conjunction
from repro.relalg import Relation
from repro.relalg.aggregates import count_star
from repro.workloads.random_db import random_database, random_join_query

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


class TestSplitEquiConjuncts:
    def test_extracts_cross_side_equalities(self):
        left = frozenset({"a", "b"})
        right = frozenset({"c", "d"})
        pred = make_conjunction([eq("a", "c"), cmp_attr("b", "<", "d")])
        keys, residual = split_equi_conjuncts(pred, left, right)
        assert keys == [("a", "c")]
        assert residual == cmp_attr("b", "<", "d")

    def test_orients_reversed_equality(self):
        left = frozenset({"a"})
        right = frozenset({"c"})
        keys, _ = split_equi_conjuncts(eq("c", "a"), left, right)
        assert keys == [("a", "c")]

    def test_same_side_equality_is_residual(self):
        left = frozenset({"a", "b"})
        right = frozenset({"c"})
        keys, residual = split_equi_conjuncts(eq("a", "b"), left, right)
        assert keys == [] and residual == eq("a", "b")


class TestHashJoinAgainstReference:
    @pytest.mark.parametrize(
        "maker,kind",
        [
            (inner, JoinKind.INNER),
            (left_outer, JoinKind.LEFT),
            (right_outer, JoinKind.RIGHT),
            (full_outer, JoinKind.FULL),
        ],
    )
    def test_all_kinds_random(self, maker, kind):
        rng = random.Random(kind.value.__hash__() % 1000)
        pred = make_conjunction(
            [eq("r1_a0", "r2_a0"), cmp_attr("r1_a1", "<", "r2_a1")]
        )
        q = maker(R1, R2, pred)
        for _ in range(60):
            db = random_database(rng, ("r1", "r2"), null_probability=0.2)
            want = evaluate(q, db)
            got = hash_join(db["r1"], db["r2"], pred, kind)
            assert got.same_content(want)

    def test_null_keys_never_match(self):
        from repro.relalg.nulls import NULL

        left = Relation.from_mappings(
            ["r1_a0", "r1_a1"],
            ["#r1"],
            [{"r1_a0": NULL, "r1_a1": 1, "#r1": ("r1", 0)}],
        )
        right = Relation.from_mappings(
            ["r2_a0", "r2_a1"],
            ["#r2"],
            [{"r2_a0": NULL, "r2_a1": 1, "#r2": ("r2", 0)}],
        )
        out = hash_join(left, right, eq("r1_a0", "r2_a0"), JoinKind.FULL)
        assert len(out) == 2  # both padded, no match

    def test_non_equi_falls_back(self):
        rng = random.Random(77)
        pred = cmp_attr("r1_a0", "<", "r2_a0")
        q = left_outer(R1, R2, pred)
        for _ in range(40):
            db = random_database(rng, ("r1", "r2"), null_probability=0.1)
            got = hash_join(db["r1"], db["r2"], pred, JoinKind.LEFT)
            assert got.same_content(evaluate(q, db))


class TestExecuteAgainstReference:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=5),
    )
    def test_random_queries(self, seed, n):
        rng = random.Random(seed)
        query = random_join_query(
            rng, n, outer_probability=0.6, complex_probability=0.4
        )
        names = tuple(sorted(query.base_names))
        for _ in range(3):
            db = random_database(rng, names, null_probability=0.15)
            assert execute(query, db).same_content(evaluate(query, db)), (
                to_algebra(query)
            )

    def test_group_by_and_gs(self):
        from repro.core.split import defer_conjunct

        rng = random.Random(5)
        q = left_outer(
            R1, R2, make_conjunction([eq("r1_a0", "r2_a0"), eq("r1_a1", "r2_a1")])
        )
        deferred = defer_conjunct(q, (), eq("r1_a1", "r2_a1")).expr
        grouped = GroupBy(deferred, ("r1_a0",), (count_star("n"),), "g")
        for _ in range(30):
            db = random_database(rng, ("r1", "r2"), null_probability=0.1)
            assert execute(grouped, db).same_content(evaluate(grouped, db))

    def test_faster_than_reference_on_large_equijoin(self):
        rng = random.Random(11)
        rows = [(rng.randrange(200), rng.randrange(50)) for _ in range(800)]
        db = Database(
            {
                "r1": Relation.base("r1", ["r1_a0", "r1_a1"], rows),
                "r2": Relation.base("r2", ["r2_a0", "r2_a1"], rows),
            }
        )
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))

        start = time.perf_counter()
        fast = execute(q, db)
        fast_time = time.perf_counter() - start

        start = time.perf_counter()
        slow = evaluate(q, db)
        slow_time = time.perf_counter() - start

        assert fast.same_content(slow)
        assert fast_time < slow_time / 3  # hash beats nested loop clearly
