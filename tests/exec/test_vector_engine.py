"""The columnar vector engine must agree with the reference, always.

Operator-by-operator unit coverage (the adversarial cross-engine
sweeps live in test_property_equivalence.py): every join kind, the
set-style operators, grouping edge cases, generalized selection,
padding repair, and the engine-level contracts -- column pruning,
budget ticks, and physical-plan routing via VectorFragment.
"""

import random

import pytest

from repro import enumerate_plans
from repro.errors import BudgetExceeded
from repro.exec import execute, execute_vector
from repro.expr import (
    BaseRel,
    Database,
    GroupBy,
    JoinKind,
    evaluate,
    full_outer,
    inner,
    left_outer,
    right_outer,
    to_algebra,
)
from repro.expr.nodes import (
    AdjustPadding,
    GenSelect,
    Join,
    Project,
    Rename,
    Select,
    SemiJoin,
    UnionAll,
)
from repro.expr.predicates import (
    TRUE,
    Arith,
    Col,
    Comparison,
    Const,
    InList,
    IsNull,
    cmp_attr,
    cmp_const,
    eq,
    make_conjunction,
)
from repro.relalg import Relation
from repro.relalg.aggregates import (
    avg,
    count_distinct,
    count_star,
    max_,
    min_,
    sum_,
)
from repro.relalg.nulls import NULL
from repro.runtime import Budget
from repro.workloads.random_db import random_database, random_join_query

R1 = BaseRel("r1", ("a", "b"))
R2 = BaseRel("r2", ("c", "d"))


@pytest.fixture()
def db():
    return Database(
        {
            "r1": Relation.base(
                "r1",
                ["a", "b"],
                [(1, 10), (1, NULL), (2, 20), (NULL, 5), (2, 20)],
            ),
            "r2": Relation.base(
                "r2", ["c", "d"], [(1, 7), (3, 8), (NULL, 9), (1, 7)]
            ),
        }
    )


def check(query, db):
    want = evaluate(query, db)
    got = execute_vector(query, db)
    assert got.same_content(want), to_algebra(query)
    return got


class TestJoins:
    @pytest.mark.parametrize(
        "maker", [inner, left_outer, right_outer, full_outer]
    )
    def test_equi_join_all_kinds(self, maker, db):
        check(maker(R1, R2, eq("a", "c")), db)

    @pytest.mark.parametrize(
        "maker", [inner, left_outer, right_outer, full_outer]
    )
    def test_residual_conjunct(self, maker, db):
        predicate = make_conjunction([eq("a", "c"), cmp_attr("b", ">", "d")])
        check(maker(R1, R2, predicate), db)

    @pytest.mark.parametrize(
        "maker", [inner, left_outer, right_outer, full_outer]
    )
    def test_non_equi_fallback(self, maker, db):
        check(maker(R1, R2, cmp_attr("a", "<", "c")), db)

    def test_true_predicate_cross_product(self, db):
        out = check(Join(JoinKind.INNER, R1, R2, TRUE), db)
        assert len(out) == len(evaluate(R1, db)) * len(evaluate(R2, db))

    def test_empty_side(self, db):
        empty = Select(R2, cmp_const("c", ">", 99))
        check(left_outer(R1, empty, eq("a", "c")), db)
        check(full_outer(empty, Rename(R1, (("a", "e"), ("b", "f"))), eq("c", "e")), db)

    def test_multi_key_join(self, db):
        predicate = make_conjunction([eq("a", "c"), eq("b", "d")])
        check(inner(R1, R2, predicate), db)


class TestSemiAntiUnion:
    @pytest.mark.parametrize("anti", [False, True])
    def test_equi(self, anti, db):
        check(SemiJoin(R1, R2, eq("a", "c"), anti=anti), db)

    @pytest.mark.parametrize("anti", [False, True])
    def test_non_equi(self, anti, db):
        check(SemiJoin(R1, R2, cmp_attr("a", "<", "c"), anti=anti), db)

    def test_union_all_pads_virtuals(self, db):
        query = UnionAll(Rename(R1, (("a", "c"), ("b", "d"))), R2)
        out = check(query, db)
        assert len(out) == 9


class TestProjectAndPredicates:
    def test_bag_project_keeps_duplicates(self, db):
        out = check(Project(R1, ("b",)), db)
        assert len(out) == 5

    def test_distinct_project(self, db):
        out = check(Project(R1, ("a", "b"), distinct=True), db)
        assert len(out) == 4  # the duplicate (2, 20) collapses

    def test_arith_term_null_propagates(self, db):
        predicate = Comparison(Arith(Col("a"), "*", Const(10)), "=", Col("b"))
        check(Select(R1, predicate), db)

    @pytest.mark.parametrize("negated", [False, True])
    def test_is_null(self, negated, db):
        check(Select(R1, IsNull(Col("b"), negated=negated)), db)

    def test_in_list(self, db):
        check(Select(R1, InList(Col("a"), (1, 5))), db)

    def test_select_chain_stays_a_view(self, db):
        query = Select(
            Select(R1, cmp_const("a", ">", 0)), cmp_const("b", ">", 15)
        )
        check(query, db)


class TestGrouping:
    def test_all_aggregate_kinds(self, db):
        query = GroupBy(
            R1,
            ("a",),
            (
                count_star("n"),
                sum_("b", "s"),
                avg("b", "av"),
                min_("b", "mn"),
                max_("b", "mx"),
                count_distinct("b", "cd"),
            ),
            "g",
        )
        check(query, db)

    def test_count_only_fast_path_multi_key(self, db):
        check(GroupBy(R1, ("a", "b"), (count_star("n"),), "g"), db)

    def test_global_aggregate_over_empty_input(self, db):
        query = GroupBy(
            Select(R1, cmp_const("a", ">", 99)),
            (),
            (count_star("n"), sum_("b", "s")),
            "g",
        )
        out = check(query, db)
        assert len(out) == 1  # SQL: one row, COUNT 0 / SUM NULL

    def test_group_over_join(self, db):
        query = GroupBy(
            left_outer(R1, R2, eq("a", "c")),
            ("a",),
            (count_star("n"), sum_("d", "s")),
            "g",
        )
        check(query, db)


class TestCompensationOperators:
    def test_generalized_selection_plans(self, db):
        """GS-bearing reorderings of an outer join agree with the
        original on all engines (σ* as set-difference over vid columns)."""
        r3 = BaseRel("r3", ("e", "f"))
        db.add(
            "r3",
            Relation.base("r3", ["e", "f"], [(1, 10), (2, NULL), (4, 5)]),
        )
        query = full_outer(inner(R1, R2, eq("a", "c")), r3, eq("b", "f"))
        plans = enumerate_plans(query, max_plans=80)
        gs_plans = [
            plan
            for plan in plans
            if any(isinstance(node, GenSelect) for node in plan.walk())
        ]
        assert gs_plans, "enumerator produced no GS plan for the FOJ"
        want = evaluate(query, db)
        for plan in gs_plans[:4]:
            assert execute_vector(plan, db).same_content(want), (
                to_algebra(plan)
            )

    def test_adjust_padding(self, db):
        grouped = GroupBy(
            left_outer(R1, R2, eq("a", "c")),
            ("a",),
            (count_star("w"), sum_("d", "s")),
            "g",
        )
        query = AdjustPadding(grouped, "w", ("s",))
        check(query, db)


class TestEngineContracts:
    def test_pruning_keeps_full_root_schema(self, db):
        out = execute_vector(inner(R1, R2, eq("a", "c")), db)
        assert set(out.real) == {"a", "b", "c", "d"}
        assert set(out.virtual) == {"#r1", "#r2"}

    def test_budget_row_cap_trips(self, db):
        budget = Budget(max_rows=3)
        with pytest.raises(BudgetExceeded):
            execute_vector(inner(R1, R2, eq("a", "c")), db, budget)

    def test_budget_untouched_when_under_cap(self, db):
        budget = Budget(max_rows=10_000)
        out = execute_vector(inner(R1, R2, eq("a", "c")), db, budget)
        assert out.same_content(evaluate(inner(R1, R2, eq("a", "c")), db))

    def test_random_queries_with_renames(self):
        rng = random.Random(7)
        for _ in range(15):
            n = rng.randint(2, 4)
            query = random_join_query(rng, n, complex_probability=0.5)
            names = tuple(sorted(query.base_names))
            database = random_database(
                rng, names, null_probability=0.25, max_rows=4
            )
            want = evaluate(query, database)
            assert execute_vector(query, database).same_content(want)
            assert execute(query, database).same_content(want)


class TestPhysicalRouting:
    def test_fragment_wraps_batch_profitable_subtree(self, db):
        from repro.physical import VectorFragment, compile_plan, run_plan

        query = GroupBy(
            inner(R1, R2, eq("a", "c")), ("a",), (count_star("n"),), "g"
        )
        plan = compile_plan(query, prefer_vector=True)
        assert isinstance(plan, VectorFragment)
        assert run_plan(plan, db).same_content(evaluate(query, db))
        assert plan.rows_out == len(evaluate(query, db))

    def test_pure_pipeline_stays_row_based(self, db):
        from repro.physical import VectorFragment, compile_plan, run_plan

        query = Select(R1, cmp_const("a", "=", 1))
        plan = compile_plan(query, prefer_vector=True)
        assert not isinstance(plan, VectorFragment)
        assert run_plan(plan, db).same_content(evaluate(query, db))
