"""EXPLAIN ANALYZE rendering: est/actual cardinalities and timings.

The centerpiece is a golden-file test on the paper's Example 3.1 shape
(a left outer join whose ON references a count column, pulled up into
a generalized selection): the analyzed operator tree -- with wall
times masked -- must match ``golden/example31_analyze.txt`` exactly.
Regenerate the golden by running this file as a script:

    PYTHONPATH=src python tests/physical/test_explain_analyze.py
"""

import re
from pathlib import Path

from repro.core.aggregation import pull_up_once
from repro.expr import BaseRel, Database, GenSelect, GroupBy, left_outer
from repro.expr.predicates import Col, Comparison, eq, make_conjunction
from repro.optimizer.cost import CostModel
from repro.optimizer.stats import Statistics
from repro.physical import compile_plan, explain_analyze
from repro.relalg import Relation
from repro.relalg.aggregates import count_star

GOLDEN = Path(__file__).parent / "golden" / "example31_analyze.txt"

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


def example31_query():
    """Example 3.1's shape: the ON references the count column."""
    grouped = GroupBy(R2, ("r2_a0",), (count_star("cnt"),), "g")
    on = make_conjunction(
        [eq("r1_a0", "r2_a0"), Comparison(Col("r1_a1"), "<", Col("cnt"))]
    )
    return left_outer(R1, grouped, on)


def example31_database() -> Database:
    return Database(
        {
            "r1": Relation.base(
                "r1",
                ["r1_a0", "r1_a1"],
                [("k1", 0), ("k1", 5), ("k2", 1), ("k3", 0)],
            ),
            "r2": Relation.base(
                "r2",
                ["r2_a0", "r2_a1"],
                [("k1", 10), ("k1", 20), ("k2", 30)],
            ),
        }
    )


def analyzed_report() -> str:
    db = example31_database()
    query = example31_query()
    plan_expr = pull_up_once(query)  # the GS-bearing rewrite
    assert isinstance(plan_expr, GenSelect)
    model = CostModel(Statistics.from_database(db))
    plan = compile_plan(
        plan_expr, estimator=lambda node: model.estimate(node).rows
    )
    return explain_analyze(plan, db, timings=True)


def mask_times(text: str) -> str:
    """Mask run-dependent fragments: wall times, and the witness-column
    counter (a process-global sequence, so its number depends on how
    many pull-ups ran earlier in the test session)."""
    text = re.sub(r"time=\d+\.\d+ms", "time=<T>", text)
    return re.sub(r"__witness\d+", "__witness<N>", text)


class TestGolden:
    def test_example31_matches_golden(self):
        got = mask_times(analyzed_report())
        want = GOLDEN.read_text().rstrip("\n")
        assert got == want, f"regenerate with:\n  python {__file__}\ngot:\n{got}"


class TestEstimates:
    def test_gs_plan_has_estimates_on_every_operator(self):
        db = example31_database()
        plan_expr = pull_up_once(example31_query())
        model = CostModel(Statistics.from_database(db))
        plan = compile_plan(
            plan_expr, estimator=lambda node: model.estimate(node).rows
        )

        def walk(op):
            yield op
            for child in op.children:
                yield from walk(child)

        for op in walk(plan):
            assert op.est_rows is not None, f"{op.label} missing est_rows"
            assert op.est_rows >= 0
        # the rendered analyze tree therefore never shows "est=?"
        explain_analyze(plan, db, timings=True)
        assert "est=?" not in "\n".join(plan.tree_lines(analyze=True))

    def test_without_estimator_est_is_unknown(self):
        db = example31_database()
        plan = compile_plan(pull_up_once(example31_query()))
        text = explain_analyze(plan, db, timings=True)
        assert "est=?" in text
        # and the stable default EXPLAIN shape is untouched
        assert "(rows=" in explain_analyze(plan, db)
        assert "est=" not in explain_analyze(plan, db)

    def test_elapsed_accumulates_per_operator(self):
        db = example31_database()
        plan = compile_plan(pull_up_once(example31_query()))
        explain_analyze(plan, db)
        assert plan.elapsed_ms > 0.0

        def walk(op):
            yield op
            for child in op.children:
                yield from walk(child)

        for op in walk(plan):
            assert op.elapsed_ms >= 0.0


if __name__ == "__main__":  # golden regeneration
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(mask_times(analyzed_report()) + "\n")
    print(f"wrote {GOLDEN}")
