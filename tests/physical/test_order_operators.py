"""Physical order operators: SortOp, StreamAggregate, merge re-key.

The planner side of order-awareness: ``Sort`` compiles to ``SortOp``
(shared key convention, optional top-N), GROUP BY over a
run-clustered child compiles to ``StreamAggregate`` and matches hash
aggregation byte for byte, and a join whose inputs both arrive
ordered on the keys auto-selects ``MergeJoinOp`` even without
``prefer_merge`` -- the internal re-sort is then a linear pass.
"""

import random

from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import BaseRel, GroupBy, Join, JoinKind, Sort
from repro.expr.predicates import eq
from repro.physical import compile_plan, run_plan
from repro.physical.operators import (
    HashAggregate,
    HashJoinOp,
    MergeJoinOp,
    SortOp,
    StreamAggregate,
)
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.relalg.nulls import NULL
from repro.relalg.ordering import attr_key_fn
from repro.relalg.relation import Relation
from repro.workloads.random_db import random_database


def _db():
    return Database(
        {
            "r1": Relation.base(
                "r1",
                ["a", "b"],
                [(3, "x"), (1, "y"), (2, "z"), (1, "w"), (None, "n")],
            ),
            "r2": Relation.base(
                "r2", ["c", "d"], [(1, 10), (2, 20), (1, 30), (None, 40)]
            ),
        }
    )


R1 = BaseRel("r1", ("a", "b"))
R2 = BaseRel("r2", ("c", "d"))


class TestSortOp:
    def test_sort_compiles_and_orders_by_convention(self):
        q = Sort(R1, (("a", False), ("b", True)))
        plan = compile_plan(q)
        assert isinstance(plan, SortOp)
        rows = run_plan(plan, _db()).rows
        key = attr_key_fn(q.keys)
        assert all(
            key(rows[i]) <= key(rows[i + 1]) for i in range(len(rows) - 1)
        )
        # NULLS LAST under the leading ascending key
        assert rows[-1]["a"] is NULL or rows[-1]["a"] is None

    def test_matches_reference_engine_sequence(self):
        q = Sort(
            Join(JoinKind.INNER, R1, R2, eq("a", "c")),
            (("a", False), ("d", True)),
        )
        db = _db()
        got = run_plan(compile_plan(q), db)
        want = evaluate(q, db)
        attrs = got.real.attrs
        assert [tuple(repr(r[a]) for a in attrs) for r in got.rows] == [
            tuple(repr(r[a]) for a in attrs) for r in want.rows
        ]

    def test_top_n_agrees_with_full_sort_prefix(self):
        child = compile_plan(R1)
        keys = (("a", False),)
        db = _db()
        full = run_plan(SortOp(compile_plan(R1), keys), db).rows
        for n in (0, 1, 3, 10):
            top = run_plan(SortOp(compile_plan(R1), keys, limit=n), db).rows
            assert [repr(r) for r in top] == [repr(r) for r in full[:n]]

    def test_labels(self):
        assert SortOp(compile_plan(R1), (("a", True),)).label == "Sort[a desc]"
        assert (
            SortOp(compile_plan(R1), (("a", False),), limit=5).label
            == "TopN[5; a]"
        )


class TestStreamAggregate:
    def _specs(self):
        return (
            AggregateSpec("n", AggregateFunction.COUNT),
            AggregateSpec("s", AggregateFunction.SUM, "a"),
        )

    def test_selected_for_run_clustered_child(self):
        q = GroupBy(Sort(R1, (("a", False),)), ("a",), self._specs(), name="g")
        plan = compile_plan(q)
        assert isinstance(plan, StreamAggregate)

    def test_hash_kept_for_unordered_child(self):
        q = GroupBy(R1, ("a",), self._specs(), name="g")
        assert isinstance(compile_plan(q), HashAggregate)

    def test_identical_to_hash_aggregation(self):
        """Same rows, same order, same virtual ids as the hash
        operator over the identical (sorted) input."""
        db = _db()
        sorted_child = Sort(R1, (("a", False),))
        q = GroupBy(sorted_child, ("a",), self._specs(), name="g")
        streaming = run_plan(compile_plan(q), db)
        hashed = HashAggregate(
            compile_plan(sorted_child), ("a",), self._specs(), "g"
        )
        reference = hashed.to_relation(db)
        attrs = streaming.all_attrs.attrs
        assert [tuple(repr(r[a]) for a in attrs) for r in streaming.rows] == [
            tuple(repr(r[a]) for a in attrs) for r in reference.rows
        ]


class TestMergeJoinSelection:
    def test_auto_merge_when_both_sides_ordered(self):
        q = Join(
            JoinKind.INNER,
            Sort(R1, (("a", False),)),
            Sort(R2, (("c", False),)),
            eq("a", "c"),
        )
        plan = compile_plan(q)
        assert isinstance(plan, MergeJoinOp)

    def test_hash_when_only_one_side_ordered(self):
        q = Join(JoinKind.INNER, Sort(R1, (("a", False),)), R2, eq("a", "c"))
        assert isinstance(compile_plan(q), HashJoinOp)

    def test_merge_key_uses_shared_convention(self):
        """Heterogeneous key values (ints mixed with strings) must
        merge under the same total order the Sort enforcer uses --
        the old per-operator ``(type, repr)`` key ordered ``10``
        before ``9`` lexicographically and disagreed with SortOp."""
        db = Database(
            {
                "r1": Relation.base(
                    "r1", ["a", "b"], [(9, "i"), (10, "j"), ("x", "k")]
                ),
                "r2": Relation.base(
                    "r2", ["c", "d"], [(10, 1), (9, 2), ("x", 3)]
                ),
            }
        )
        q = Join(
            JoinKind.INNER,
            Sort(R1, (("a", False),)),
            Sort(R2, (("c", False),)),
            eq("a", "c"),
        )
        got = run_plan(compile_plan(q), db)
        want = evaluate(q, db)
        assert got.same_content(want)
        assert len(got) == 3

    def test_merge_matches_hash_on_random_inputs(self):
        rng = random.Random(3)
        for trial in range(10):
            db = random_database(
                rng, ("r1", "r2"), null_probability=0.25, max_rows=6
            )
            kind = rng.choice((JoinKind.INNER, JoinKind.LEFT))
            q = Join(
                kind,
                Sort(BaseRel("r1", ("r1_a0", "r1_a1")), (("r1_a0", False),)),
                Sort(BaseRel("r2", ("r2_a0", "r2_a1")), (("r2_a0", False),)),
                eq("r1_a0", "r2_a0"),
            )
            merged = run_plan(compile_plan(q), db)
            assert merged.same_content(evaluate(q, db)), trial
