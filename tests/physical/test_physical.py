"""Physical layer tests: operators, planner choices, explain-analyze.

The oracle is the reference interpreter: every physical plan for a
random logical query must produce the same bag of rows.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import (
    BaseRel,
    Database,
    GroupBy,
    JoinKind,
    Project,
    Select,
    evaluate,
    full_outer,
    inner,
    left_outer,
    to_algebra,
)
from repro.expr.predicates import cmp_attr, cmp_const, eq, make_conjunction
from repro.physical import compile_plan, explain_analyze, run_plan
from repro.physical.operators import (
    CrossProduct,
    HashJoinOp,
    MergeJoinOp,
    NestedLoopJoin,
)
from repro.relalg import Relation
from repro.relalg.aggregates import count_star, sum_
from repro.workloads.random_db import random_database, random_join_query

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))


class TestPlannerChoices:
    def test_equi_join_gets_hash(self):
        plan = compile_plan(inner(R1, R2, eq("r1_a0", "r2_a0")))
        assert isinstance(plan, HashJoinOp)

    def test_prefer_merge_for_inner_and_left(self):
        plan = compile_plan(
            left_outer(R1, R2, eq("r1_a0", "r2_a0")), prefer_merge=True
        )
        assert isinstance(plan, MergeJoinOp)

    def test_full_outer_falls_back_to_hash_under_merge(self):
        plan = compile_plan(
            full_outer(R1, R2, eq("r1_a0", "r2_a0")), prefer_merge=True
        )
        assert isinstance(plan, HashJoinOp)

    def test_non_equi_gets_nested_loop(self):
        plan = compile_plan(inner(R1, R2, cmp_attr("r1_a0", "<", "r2_a0")))
        assert isinstance(plan, NestedLoopJoin)

    def test_true_predicate_gets_cross_product(self):
        from repro.expr.predicates import TRUE

        plan = compile_plan(inner(R1, R2, TRUE))
        assert isinstance(plan, CrossProduct)


class TestOperatorCorrectness:
    @pytest.mark.parametrize("prefer_merge", [False, True])
    @pytest.mark.parametrize(
        "maker", [inner, left_outer, full_outer]
    )
    def test_joins_match_reference(self, maker, prefer_merge):
        pred = make_conjunction(
            [eq("r1_a0", "r2_a0"), cmp_attr("r1_a1", "<", "r2_a1")]
        )
        q = maker(R1, R2, pred)
        plan = compile_plan(q, prefer_merge=prefer_merge)
        rng = random.Random(21)
        for _ in range(50):
            db = random_database(rng, ("r1", "r2"), null_probability=0.2)
            assert run_plan(plan, db).same_content(evaluate(q, db))

    def test_aggregate_and_filters(self):
        q = GroupBy(
            Select(
                inner(R1, R2, eq("r1_a0", "r2_a0")),
                cmp_const("r1_a1", ">", 0),
            ),
            ("r1_a0",),
            (count_star("n"), sum_("r2_a1", "s")),
            "g",
        )
        plan = compile_plan(q)
        rng = random.Random(22)
        for _ in range(40):
            db = random_database(rng, ("r1", "r2"), null_probability=0.1)
            assert run_plan(plan, db).same_content(evaluate(q, db))

    def test_generalized_selection_operator(self):
        from repro.core.split import defer_conjunct

        q = left_outer(
            left_outer(R1, R2, eq("r1_a0", "r2_a0")),
            R3,
            make_conjunction(
                [eq("r1_a1", "r3_a1"), eq("r2_a1", "r3_a0")]
            ),
        )
        deferred = defer_conjunct(q, (), eq("r1_a1", "r3_a1")).expr
        plan = compile_plan(deferred)
        rng = random.Random(23)
        for _ in range(40):
            db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.1)
            assert run_plan(plan, db).same_content(evaluate(q, db))

    def test_project_distinct(self):
        q = Project(R1, ("r1_a0",), distinct=True)
        plan = compile_plan(q)
        rng = random.Random(24)
        for _ in range(20):
            db = random_database(rng, ("r1",), null_probability=0.2)
            assert run_plan(plan, db).same_content(evaluate(q, db))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=4),
        prefer_merge=st.booleans(),
    )
    def test_random_queries(self, seed, n, prefer_merge):
        rng = random.Random(seed)
        query = random_join_query(
            rng, n, outer_probability=0.5, complex_probability=0.4
        )
        names = tuple(sorted(query.base_names))
        plan = compile_plan(query, prefer_merge=prefer_merge)
        for _ in range(3):
            db = random_database(rng, names, null_probability=0.15)
            assert run_plan(plan, db).same_content(evaluate(query, db)), (
                to_algebra(query)
            )


class TestExplainAnalyze:
    def test_reports_row_counts(self):
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        plan = compile_plan(q)
        db = Database(
            {
                "r1": Relation.base("r1", ["r1_a0", "r1_a1"], [(1, 1), (2, 2)]),
                "r2": Relation.base("r2", ["r2_a0", "r2_a1"], [(1, 9)]),
            }
        )
        text = explain_analyze(plan, db)
        assert "HashJoin" in text
        assert "Scan(r1)  (rows=2)" in text
        assert "-- result: 1 row(s)" in text

    def test_gs_operator_in_tree(self):
        from repro.core.split import defer_conjunct

        q = left_outer(
            R1,
            R2,
            make_conjunction([eq("r1_a0", "r2_a0"), eq("r1_a1", "r2_a1")]),
        )
        deferred = defer_conjunct(q, (), eq("r1_a1", "r2_a1")).expr
        plan = compile_plan(deferred)
        rng = random.Random(25)
        db = random_database(rng, ("r1", "r2"), min_rows=2)
        text = explain_analyze(plan, db)
        assert "GeneralizedSelection" in text
