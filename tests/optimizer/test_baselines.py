"""The baselines: typed empty-closure errors, left-deep DP, wrapper care."""

import random

import pytest

from repro.errors import UserInputError
from repro.expr import BaseRel, Database, evaluate, left_outer
from repro.expr.nodes import (
    AdjustPadding,
    GenSelect,
    GroupBy,
    Project,
    Select,
)
from repro.expr.predicates import cmp_const, eq
from repro.optimizer import Statistics
from repro.optimizer.baselines import (
    EmptyClosureError,
    greedy_reorder,
    left_deep_join_order,
    optimize_no_gs,
    tis_cost,
)
from repro.optimizer.dp import dp_cost, dp_join_order
from repro.relalg import Relation
from repro.relalg.aggregates import count_star
from repro.workloads.random_db import random_database, random_join_query
from repro.workloads.topologies import chain_query

from tests.optimizer.test_dp import chain_stats


class TestEmptyClosureErrors:
    """Degenerate enumerations raise the typed error the ladder absorbs,
    not an ``IndexError``/``ValueError`` from deep inside a baseline."""

    def test_optimize_no_gs_with_empty_closure(self, monkeypatch):
        # the closure always contains its seed, so an empty result needs
        # a broken enumerator -- the guard turns the would-be IndexError
        # into the typed error the ladder knows how to absorb
        import repro.optimizer.baselines as baselines

        monkeypatch.setattr(
            baselines, "enumerate_plans", lambda *a, **k: []
        )
        with pytest.raises(EmptyClosureError):
            optimize_no_gs(chain_query(3), chain_stats(3))

    def test_greedy_fallback_with_empty_closure(self, monkeypatch):
        # force the DpError fallback path (outer join core), then make
        # the closure come back empty
        import repro.optimizer.baselines as baselines

        monkeypatch.setattr(
            baselines, "enumerate_plans", lambda *a, **k: []
        )
        query = left_outer(
            BaseRel("a", ("ax",)), BaseRel("b", ("bx",)), eq("ax", "bx")
        )
        with pytest.raises(EmptyClosureError):
            greedy_reorder(query, Statistics())

    def test_empty_closure_error_is_optimizer_internal(self):
        from repro.errors import OptimizerInternalError

        assert issubclass(EmptyClosureError, OptimizerInternalError)


class TestTisCost:
    def test_flat_query_raises_typed_error(self):
        from repro.core.unnest import NestedCountQuery

        flat = NestedCountQuery(
            relation=BaseRel("a", ("ax",)),
            correlation=None,
            compare_attr="ax",
            theta="=",
            subquery=None,
        )
        db = Database({"a": Relation.base("a", ["ax"], [(1,), (2,)])})
        with pytest.raises(UserInputError):
            tis_cost(flat, db)


class TestLeftDeep:
    @pytest.mark.parametrize("n", [3, 5, 7])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_never_better_than_bushy_optimum(self, n, seed):
        query = chain_query(n)
        stats = chain_stats(n, seed)
        bushy = dp_cost(dp_join_order(query, stats), stats)
        left_deep = dp_cost(left_deep_join_order(query, stats), stats)
        assert left_deep >= bushy - 1e-9

    def test_plans_are_equivalent(self):
        rng = random.Random(30)
        for _ in range(8):
            query = random_join_query(
                rng, rng.randint(2, 5), outer_probability=0.0,
                complex_probability=0.4,
            )
            names = tuple(sorted(query.base_names))
            db = random_database(rng, names, null_probability=0.1)
            stats = Statistics.from_database(db)
            plan = left_deep_join_order(query, stats)
            assert evaluate(plan, db).same_content(evaluate(query, db))

    def test_plans_are_left_deep(self):
        from repro.expr.nodes import Join

        plan = left_deep_join_order(chain_query(6), chain_stats(6))
        node = plan
        while isinstance(node, Join):
            assert not isinstance(node.right, Join)
            node = node.left

    def test_cross_product_query_completes(self):
        # no applicable atoms at all: the strict pass dead-ends and the
        # allow-cross retry must still produce a full plan
        from repro.expr import inner
        from repro.expr.predicates import make_conjunction

        r1 = BaseRel("r1", ("r1_a0", "r1_a1"))
        r2 = BaseRel("r2", ("r2_a0", "r2_a1"))
        r3 = BaseRel("r3", ("r3_a0", "r3_a1"))
        query = inner(
            inner(r1, r2, make_conjunction(())), r3, make_conjunction(())
        )
        plan = left_deep_join_order(query, chain_stats(3))
        assert plan.base_names == {"r1", "r2", "r3"}

    def test_single_relation_passthrough(self):
        rel = BaseRel("a", ("ax",))
        assert left_deep_join_order(rel, Statistics()) is rel


def _wrapped_queries():
    """One query per wrapper type, plus the full five-deep stack.

    Each wraps the same 3-relation inner chain; the greedy rung must
    reorder only the core and reassemble the chain byte-for-byte in
    structure (same wrapper types, same order, same parameters).
    """
    core = chain_query(3)
    sel = Select(core, cmp_const("r2_a0", ">=", 0))
    grouped = GroupBy(sel, ("r1_a0",), (count_star("w"), count_star("n")), "g")
    padded = AdjustPadding(grouped, "w", ("n",))
    gen = GenSelect(padded, cmp_const("n", ">=", 0), ())
    full_stack = Project(gen, ("r1_a0", "n"))
    return {
        "select": Select(core, cmp_const("r1_a0", ">=", 0)),
        "project": Project(core, ("r1_a0", "r3_a1")),
        "group_by": GroupBy(core, ("r1_a0",), (count_star("n"),), "g"),
        "gen_select": GenSelect(core, cmp_const("r1_a0", ">=", 0), ()),
        "adjust_padding": AdjustPadding(
            GroupBy(core, ("r1_a0",), (count_star("w"), count_star("n")), "g"),
            "w",
            ("n",),
        ),
        "stack": full_stack,
    }


class TestGreedyWrapperReassembly:
    """Satellite regression: ``_greedy_reorder`` must put every unary
    wrapper back exactly where it was, for all five wrapper types."""

    @pytest.mark.parametrize("label", sorted(_wrapped_queries()))
    def test_wrapper_chain_survives_and_answer_matches(self, label):
        from repro.optimizer.tiers import peel_wrappers

        query = _wrapped_queries()[label]
        rng = random.Random(40)
        db = random_database(
            rng, ("r1", "r2", "r3"), max_rows=4, null_probability=0.0
        )
        stats = Statistics.from_database(db)
        result = greedy_reorder(query, stats)

        before, _ = peel_wrappers(query)
        after, core = peel_wrappers(result.best)
        assert [type(w) for w in after] == [type(w) for w in before]
        # the join core was reordered over the same relations
        assert core.base_names == {"r1", "r2", "r3"}
        assert evaluate(result.best, db).same_content(evaluate(query, db))
