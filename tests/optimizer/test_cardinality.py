"""Unit tests for the cardinality estimator's pieces."""

import random

import pytest

from repro.expr import (
    BaseRel,
    GenSelect,
    GroupBy,
    Project,
    Rename,
    Select,
    evaluate,
    full_outer,
    inner,
    left_outer,
    preserved_for,
)
from repro.expr.predicates import (
    Arith,
    Col,
    Comparison,
    Const,
    cmp_const,
    eq,
    make_conjunction,
)
from repro.optimizer import Statistics, TableStats, estimate
from repro.optimizer.cardinality import Estimate, selectivity
from repro.relalg.aggregates import count_star
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))


def stats_with_freq():
    return Statistics(
        {
            "r1": TableStats(
                100,
                {"r1_a0": 4, "r1_a1": 100},
                {"r1_a0": {"a": 70, "b": 10, "c": 10, "d": 10}},
            ),
            "r2": TableStats(50, {"r2_a0": 25, "r2_a1": 50}),
        }
    )


class TestFrequencySelectivity:
    def test_equality_uses_actual_fraction(self):
        stats = stats_with_freq()
        sel = Select(R1, Comparison(Col("r1_a0"), "=", Const("a")))
        assert estimate(sel, stats).rows == pytest.approx(70.0)

    def test_rare_value(self):
        stats = stats_with_freq()
        sel = Select(R1, Comparison(Col("r1_a0"), "=", Const("b")))
        assert estimate(sel, stats).rows == pytest.approx(10.0)

    def test_missing_value_floors_at_epsilon(self):
        # a value absent from the histogram is *near*-zero, never a
        # hard zero: zero selectivity would zero every enclosing plan
        # cost and make the optimizer's choice among them arbitrary
        from repro.optimizer.cardinality import _MIN_SELECTIVITY

        stats = stats_with_freq()
        sel = Select(R1, Comparison(Col("r1_a0"), "=", Const("zzz")))
        rows = estimate(sel, stats).rows
        assert rows == pytest.approx(100.0 * _MIN_SELECTIVITY)
        assert rows > 0.0

    def test_flipped_constant_side(self):
        stats = stats_with_freq()
        sel = Select(R1, Comparison(Const("a"), "=", Col("r1_a0")))
        assert estimate(sel, stats).rows == pytest.approx(70.0)

    def test_without_frequencies_uniform_guess(self):
        stats = Statistics({"r1": TableStats(100, {"r1_a0": 4})})
        sel = Select(R1, Comparison(Col("r1_a0"), "=", Const("a")))
        assert estimate(sel, stats).rows == pytest.approx(25.0)

    def test_fraction_survives_rename_and_project(self):
        stats = stats_with_freq()
        renamed = Rename(R1, (("r1_a0", "x"),))
        narrowed = Project(renamed, ("x",))
        sel = Select(narrowed, Comparison(Col("x"), "=", Const("a")))
        assert estimate(sel, stats).rows == pytest.approx(70.0)


class TestNodeEstimates:
    def test_gen_select_includes_padding(self):
        stats = Statistics(
            {
                "r1": TableStats(100, {"r1_a0": 10, "r1_a1": 100}),
                "r2": TableStats(100, {"r2_a0": 10, "r2_a1": 100}),
            }
        )
        q = left_outer(
            R1, R2, make_conjunction([eq("r1_a0", "r2_a0"), eq("r1_a1", "r2_a1")])
        )
        from repro.core.split import defer_conjunct

        deferred = defer_conjunct(q, (), eq("r1_a1", "r2_a1")).expr
        est = estimate(deferred, stats)
        # selected rows plus expected preserved padding: never zero
        assert est.rows > 0

    def test_adjust_padding_passthrough(self):
        from repro.core.aggregation import pull_up_once

        g = GroupBy(R2, ("r2_a0",), (count_star("cnt"),), "g")
        q = left_outer(R1, g, eq("r1_a0", "r2_a0"))
        pulled = pull_up_once(q)
        stats = Statistics(
            {
                "r1": TableStats(20, {"r1_a0": 10}),
                "r2": TableStats(200, {"r2_a0": 10}),
            }
        )
        assert estimate(pulled, stats).rows > 0

    def test_distinct_project_caps(self):
        stats = Statistics({"r1": TableStats(1000, {"r1_a0": 7})})
        q = Project(R1, ("r1_a0",), distinct=True)
        assert estimate(q, stats).rows == pytest.approx(7.0)

    def test_full_outer_adds_both_unmatched(self):
        stats = Statistics(
            {
                "r1": TableStats(100, {"r1_a0": 1000}),
                "r2": TableStats(60, {"r2_a0": 1000}),
            }
        )
        est = estimate(full_outer(R1, R2, eq("r1_a0", "r2_a0")), stats)
        assert est.rows >= 150  # close to |r1| + |r2| with rare matches


class TestQError:
    def test_equijoin_q_error_bounded_with_exact_stats(self):
        """With exact stats and independent uniform data, the estimator

        stays within an order of magnitude (sanity, not a guarantee).
        """
        rng = random.Random(3)
        worst = 1.0
        for _ in range(20):
            db = random_database(
                rng, ("r1", "r2"), max_rows=40, min_rows=15, null_probability=0.0
            )
            stats = Statistics.from_database(db)
            q = inner(R1, R2, eq("r1_a0", "r2_a0"))
            est = max(estimate(q, stats).rows, 0.5)
            actual = max(len(evaluate(q, db)), 0.5)
            worst = max(worst, est / actual, actual / est)
        assert worst < 10
