"""Optimizer tests: estimation sanity, cost ordering, plan choice."""

import random

import pytest

from repro.expr import (
    BaseRel,
    Database,
    GenSelect,
    GroupBy,
    evaluate,
    inner,
    left_outer,
)
from repro.expr.predicates import cmp_const, eq, make_conjunction
from repro.optimizer import (
    Statistics,
    TableStats,
    as_written,
    estimate,
    estimated_cost,
    measured_cost,
    optimize,
    optimize_no_gs,
)
from repro.optimizer.cost import intermediate_sizes
from repro.relalg import Relation
from repro.relalg.aggregates import count_star
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))


def make_stats(**counts):
    stats = Statistics()
    for name, (rows, distinct) in counts.items():
        stats.add(name, TableStats(rows, distinct))
    return stats


class TestEstimation:
    def test_base_and_select(self):
        stats = make_stats(r1=(100, {"r1_a0": 50}))
        assert estimate(R1, stats).rows == 100
        from repro.expr import Select

        sel = Select(R1, cmp_const("r1_a0", "=", 7))
        assert estimate(sel, stats).rows == pytest.approx(2.0)

    def test_equijoin_selectivity(self):
        stats = make_stats(
            r1=(100, {"r1_a0": 50}), r2=(200, {"r2_a0": 100})
        )
        j = inner(R1, R2, eq("r1_a0", "r2_a0"))
        # 100*200/max(50,100) = 200
        assert estimate(j, stats).rows == pytest.approx(200.0)

    def test_outer_join_at_least_preserved(self):
        stats = make_stats(r1=(100, {"r1_a0": 1000}), r2=(3, {"r2_a0": 1000}))
        j = left_outer(R1, R2, eq("r1_a0", "r2_a0"))
        assert estimate(j, stats).rows >= 100

    def test_group_by_caps_at_input(self):
        stats = make_stats(r1=(100, {"r1_a0": 5000}))
        g = GroupBy(R1, ("r1_a0",), (count_star("n"),), "g")
        assert estimate(g, stats).rows <= 100

    def test_estimate_accuracy_on_real_data(self):
        """Exact stats + equijoin: estimate within a small factor."""
        rng = random.Random(9)
        db = random_database(
            rng, ("r1", "r2"), max_rows=40, min_rows=20, null_probability=0.0
        )
        stats = Statistics.from_database(db)
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        est = estimate(q, stats).rows
        actual = len(evaluate(q, db))
        assert est > 0
        assert 0.2 <= (est / max(actual, 1)) <= 5.0


class TestCost:
    def test_cost_sums_operators(self):
        stats = make_stats(r1=(10, {}), r2=(20, {}))
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        total = estimated_cost(q, stats)
        assert total > 30  # scans plus join output

    def test_measured_cost_ground_truth(self):
        """C_out counts join/GP/GS outputs; scans and row-local unary

        operators are pipelined and free.
        """
        rng = random.Random(13)
        db = random_database(rng, ("r1", "r2"), max_rows=5, min_rows=2)
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        assert measured_cost(q, db) == len(evaluate(q, db))
        g = GroupBy(q, ("r1_a0",), (), "g")
        assert measured_cost(g, db) == len(evaluate(q, db)) + len(
            evaluate(g, db)
        )

    def test_intermediate_sizes_report(self):
        rng = random.Random(13)
        db = random_database(rng, ("r1", "r2"), max_rows=5, min_rows=2)
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        report = intermediate_sizes(q, db)
        assert report[0][0] == "Join"
        assert {"scan(r1)", "scan(r2)"} <= {label for label, _ in report}


class TestOptimize:
    def test_optimizer_picks_selective_join_first(self):
        """Chain r1-r2-r3 where r1xr2 is huge and r2xr3 tiny: the

        optimizer must reorder to join r2, r3 first.
        """
        stats = make_stats(
            r1=(1000, {"r1_a0": 10}),
            r2=(1000, {"r2_a0": 10, "r2_a1": 1000}),
            r3=(10, {"r3_a0": 1000}),
        )
        q = inner(
            inner(R1, R2, eq("r1_a0", "r2_a0")), R3, eq("r2_a1", "r3_a0")
        )
        result = optimize(q, stats, max_plans=500)
        assert result.best_cost < result.original_cost
        assert result.improvement > 2

    def test_optimizer_result_is_equivalent(self):
        rng = random.Random(19)
        db = random_database(rng, ("r1", "r2", "r3"), max_rows=4)
        stats = Statistics.from_database(db)
        q = left_outer(
            inner(R1, R2, eq("r1_a0", "r2_a0")), R3, eq("r2_a1", "r3_a0")
        )
        result = optimize(q, stats, max_plans=400)
        assert evaluate(result.best, db).same_content(evaluate(q, db))

    def test_gs_beats_no_gs_on_complex_predicate(self):
        """A complex-predicate LOJ with a tiny third relation: with GS

        the optimizer can join it early; without, the order is frozen.
        """
        stats = make_stats(
            r1=(2000, {"r1_a0": 20, "r1_a1": 2000}),
            r2=(2000, {"r2_a0": 20, "r2_a1": 2000}),
            r3=(5, {"r3_a0": 2000, "r3_a1": 2000}),
        )
        p13 = eq("r1_a1", "r3_a1")
        p23 = eq("r2_a1", "r3_a0")
        q = left_outer(
            inner(R1, R2, eq("r1_a0", "r2_a0")),
            R3,
            make_conjunction([p13, p23]),
        )
        with_gs = optimize(q, stats, max_plans=2000)
        without = optimize_no_gs(q, stats, max_plans=2000)
        assert with_gs.plans_considered > without.plans_considered
        assert with_gs.best_cost <= without.best_cost

    def test_as_written_matches_original_cost(self):
        stats = make_stats(r1=(10, {}), r2=(10, {}))
        q = inner(R1, R2, eq("r1_a0", "r2_a0"))
        assert as_written(q, stats) == estimated_cost(q, stats)


class TestZeroSelectivityRegression:
    """A constant absent from the frequency stats used to produce a
    selectivity of exactly 0, zeroing every downstream cost and making
    plan ranking an arbitrary tie-break.  The epsilon floor keeps
    costs positive and the ranking deterministic."""

    def _query_and_stats(self):
        from repro.expr import Select

        stats = Statistics()
        stats.add(
            "r1",
            TableStats(100, {"r1_a0": 10, "r1_a1": 10}, {"r1_a1": {1: 50, 2: 50}}),
        )
        stats.add("r2", TableStats(200, {"r2_a0": 10, "r2_a1": 20}))
        stats.add("r3", TableStats(50, {"r3_a0": 20, "r3_a1": 5}))
        # 999 never occurs in r1_a1's frequency table -> raw sel = 0
        filtered = Select(R1, cmp_const("r1_a1", "=", 999))
        q = inner(
            inner(filtered, R2, eq("r1_a0", "r2_a0")),
            R3,
            eq("r2_a1", "r3_a0"),
        )
        return q, stats

    def test_zero_selectivity_atom_keeps_costs_positive(self):
        q, stats = self._query_and_stats()
        result = optimize(q, stats, max_plans=500)
        assert result.best_cost > 0.0
        assert all(cost > 0.0 for cost, _ in result.ranked)

    def test_plan_choice_is_deterministic_and_cost_ordered(self):
        q, stats = self._query_and_stats()
        first = optimize(q, stats, max_plans=500)
        second = optimize(q, stats, max_plans=500)
        assert first.best == second.best
        assert [c for c, _ in first.ranked] == [c for c, _ in second.ranked]
        assert [p for _, p in first.ranked] == [p for _, p in second.ranked]
        costs = [c for c, _ in first.ranked]
        assert costs == sorted(costs)
