"""The DP join enumerator: optimality vs the closure, and scalability."""

import random
import time

import pytest

from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, JoinKind, evaluate, inner, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.optimizer import Statistics, TableStats
from repro.optimizer.cost import estimated_cost
from repro.optimizer.dp import DpError, dp_join_order
from repro.workloads.random_db import random_database, random_join_query
from repro.workloads.topologies import chain_query


def chain_stats(n, seed=1):
    rng = random.Random(seed)
    stats = Statistics()
    for i in range(1, n + 1):
        rows = rng.choice((10, 100, 1000))
        stats.add(
            f"r{i}",
            TableStats(rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}),
        )
    return stats


class TestOptimality:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_closure_optimum(self, n, seed):
        """Under the DP's shape-independent measure, its plan is exactly

        as cheap as the best plan in the whole transformation closure.
        """
        from repro.optimizer.dp import dp_cost

        query = chain_query(n)
        stats = chain_stats(n, seed)
        dp_plan = dp_join_order(query, stats)
        closure = enumerate_plans(query, max_plans=6000, with_gs=False)
        closure_best = min(dp_cost(p, stats) for p in closure)
        assert dp_cost(dp_plan, stats) <= closure_best + 1e-9

    def test_random_inner_queries_equivalent(self):
        rng = random.Random(10)
        for _ in range(15):
            query = random_join_query(
                rng, rng.randint(2, 5), outer_probability=0.0,
                complex_probability=0.5,
            )
            names = tuple(sorted(query.base_names))
            db = random_database(rng, names, null_probability=0.1)
            stats = Statistics.from_database(db)
            plan = dp_join_order(query, stats)
            assert evaluate(plan, db).same_content(evaluate(query, db))


class TestScalability:
    def test_ten_relation_chain(self):
        query = chain_query(10)
        stats = chain_stats(10)
        start = time.perf_counter()
        plan = dp_join_order(query, stats)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert plan.base_names == query.base_names

    def test_complex_predicates_handled(self):
        query = chain_query(6, complex_every=2)
        stats = chain_stats(6)
        plan = dp_join_order(query, stats)
        # every atom of the original appears exactly once in the plan
        from repro.expr import Join
        from repro.expr.predicates import conjuncts_of

        def atom_bag(expr):
            out = []
            for node in expr.walk():
                if isinstance(node, Join):
                    out.extend(conjuncts_of(node.predicate))
            return sorted(str(a) for a in out)

        assert atom_bag(plan) == atom_bag(query)


class TestHyperedgeConnectivity:
    """Regression: connected subsets reachable only through a 3-relation
    hyperedge (or an explicit cross product) used to be reported as
    "disconnected" because no binary split of them carried an atom.
    The cross-product last resort in ``_splits`` fixes that: the DP now
    always returns a plan for a connected query, and it is still the
    closure optimum under its own measure.
    """

    @staticmethod
    def _hyperedge_query():
        from repro.expr.predicates import Arith, Col, Comparison

        r1 = BaseRel("r1", ("r1_a0", "r1_a1"))
        r2 = BaseRel("r2", ("r2_a0", "r2_a1"))
        r3 = BaseRel("r3", ("r3_a0", "r3_a1"))
        r4 = BaseRel("r4", ("r4_a0", "r4_a1"))
        # r1 x r2, connected to r3 only through a single atom spanning
        # all three relations, then an ordinary binary atom to r4
        three_way = Comparison(
            Arith(Col("r1_a0"), "+", Col("r2_a0")), "=", Col("r3_a0")
        )
        return inner(
            inner(
                inner(r1, r2, make_conjunction(())),
                r3,
                three_way,
            ),
            r4,
            eq("r3_a1", "r4_a0"),
        )

    @staticmethod
    def _stats():
        stats = Statistics()
        for i, rows in enumerate((10, 20, 40, 80), start=1):
            stats.add(
                f"r{i}",
                TableStats(
                    rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}
                ),
            )
        return stats

    def test_returns_plan_not_disconnected_error(self):
        plan = dp_join_order(self._hyperedge_query(), self._stats())
        assert plan.base_names == {"r1", "r2", "r3", "r4"}

    def test_plan_is_closure_optimal(self):
        from repro.optimizer.dp import dp_cost

        query = self._hyperedge_query()
        stats = self._stats()
        plan = dp_join_order(query, stats)
        closure = enumerate_plans(query, max_plans=6000, with_gs=False)
        closure_best = min(dp_cost(p, stats) for p in closure)
        assert dp_cost(plan, stats) <= closure_best + 1e-9

    def test_plan_is_equivalent(self):
        rng = random.Random(7)
        query = self._hyperedge_query()
        db = random_database(
            rng, ("r1", "r2", "r3", "r4"), max_rows=5, null_probability=0.1
        )
        plan = dp_join_order(query, self._stats())
        assert evaluate(plan, db).same_content(evaluate(query, db))

    def test_pure_cross_product_still_planned(self):
        # no predicates at all: every split is a cross product
        r1 = BaseRel("r1", ("r1_a0",))
        r2 = BaseRel("r2", ("r2_a0",))
        r3 = BaseRel("r3", ("r3_a0",))
        query = inner(
            inner(r1, r2, make_conjunction(())), r3, make_conjunction(())
        )
        plan = dp_join_order(query, self._stats())
        assert plan.base_names == {"r1", "r2", "r3"}


class TestScope:
    def test_outer_join_rejected(self):
        q = left_outer(
            BaseRel("a", ("ax",)), BaseRel("b", ("bx",)), eq("ax", "bx")
        )
        with pytest.raises(DpError):
            dp_join_order(q, Statistics())

    def test_single_relation_passthrough(self):
        rel = BaseRel("a", ("ax",))
        assert dp_join_order(rel, Statistics()) is rel
