"""The DP join enumerator: optimality vs the closure, and scalability."""

import random
import time

import pytest

from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, JoinKind, evaluate, inner, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.optimizer import Statistics, TableStats
from repro.optimizer.cost import estimated_cost
from repro.optimizer.dp import DpError, dp_join_order
from repro.workloads.random_db import random_database, random_join_query
from repro.workloads.topologies import chain_query


def chain_stats(n, seed=1):
    rng = random.Random(seed)
    stats = Statistics()
    for i in range(1, n + 1):
        rows = rng.choice((10, 100, 1000))
        stats.add(
            f"r{i}",
            TableStats(rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}),
        )
    return stats


class TestOptimality:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_closure_optimum(self, n, seed):
        """Under the DP's shape-independent measure, its plan is exactly

        as cheap as the best plan in the whole transformation closure.
        """
        from repro.optimizer.dp import dp_cost

        query = chain_query(n)
        stats = chain_stats(n, seed)
        dp_plan = dp_join_order(query, stats)
        closure = enumerate_plans(query, max_plans=6000, with_gs=False)
        closure_best = min(dp_cost(p, stats) for p in closure)
        assert dp_cost(dp_plan, stats) <= closure_best + 1e-9

    def test_random_inner_queries_equivalent(self):
        rng = random.Random(10)
        for _ in range(15):
            query = random_join_query(
                rng, rng.randint(2, 5), outer_probability=0.0,
                complex_probability=0.5,
            )
            names = tuple(sorted(query.base_names))
            db = random_database(rng, names, null_probability=0.1)
            stats = Statistics.from_database(db)
            plan = dp_join_order(query, stats)
            assert evaluate(plan, db).same_content(evaluate(query, db))


class TestScalability:
    def test_ten_relation_chain(self):
        query = chain_query(10)
        stats = chain_stats(10)
        start = time.perf_counter()
        plan = dp_join_order(query, stats)
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert plan.base_names == query.base_names

    def test_complex_predicates_handled(self):
        query = chain_query(6, complex_every=2)
        stats = chain_stats(6)
        plan = dp_join_order(query, stats)
        # every atom of the original appears exactly once in the plan
        from repro.expr import Join
        from repro.expr.predicates import conjuncts_of

        def atom_bag(expr):
            out = []
            for node in expr.walk():
                if isinstance(node, Join):
                    out.extend(conjuncts_of(node.predicate))
            return sorted(str(a) for a in out)

        assert atom_bag(plan) == atom_bag(query)


class TestScope:
    def test_outer_join_rejected(self):
        q = left_outer(
            BaseRel("a", ("ax",)), BaseRel("b", ("bx",)), eq("ax", "bx")
        )
        with pytest.raises(DpError):
            dp_join_order(q, Statistics())

    def test_single_relation_passthrough(self):
        rel = BaseRel("a", ("ax",))
        assert dp_join_order(rel, Statistics()) is rel
