"""Order-aware planning: the Pareto DP and the session order pass.

The acceptance bar (ISSUE criterion 3): a plan produced by the
order-aware DP under a required order is **never costlier than the
order-blind optimum plus one root sort** -- the DP can always fall
back to exactly that plan, so anything worse is a search bug.  We
assert it across chain and star topologies and seeds, and separately
check the pieces: interesting-order seeding, equality-derived free
orders, enforcer placement below joins when the discount pays, and
``order_aware_reorder``'s never-worse contract on wrapped queries.
"""

import math
import random

import pytest

from repro.expr import evaluate
from repro.expr.nodes import GroupBy, Sort
from repro.expr.orderprops import order_satisfies, provided_order
from repro.expr.predicates import eq
from repro.optimizer import Statistics, TableStats
from repro.optimizer.cost import CostModel, sort_penalty
from repro.optimizer.dp import (
    DpError,
    dp_cost,
    dp_join_order,
    dp_join_order_pareto,
    pareto_frontier,
)
from repro.optimizer.orders import (
    equality_classes,
    interesting_orders,
    order_aware_reorder,
)
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.workloads.random_db import random_database
from repro.workloads.topologies import chain_query, star_query

from tests.optimizer.test_dp import chain_stats
from tests.optimizer.test_tiers import star_stats


def _root_sort_bound(query, stats, required):
    """Cost of the order-blind optimum with one sort bolted on top."""
    blind = dp_join_order(query, stats)
    model = CostModel(stats)
    rows = model.estimate(blind).rows
    return dp_cost(blind, stats) + sort_penalty(rows, rows or 1.0)


class TestCriterionThree:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chain_never_worse_than_blind_plus_root_sort(self, n, seed):
        query = chain_query(n)
        stats = chain_stats(n, seed)
        required = ((f"r1_a0", False),)
        plan, cost = dp_join_order_pareto(query, stats, required=required)
        eq_classes = equality_classes(query)
        assert order_satisfies(provided_order(plan), required, eq_classes)
        assert cost <= _root_sort_bound(query, stats, required) + 1e-9

    @pytest.mark.parametrize("n", [3, 4])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_star_never_worse_than_blind_plus_root_sort(self, n, seed):
        query = star_query(n)
        stats = star_stats(n, seed)
        required = (("r0_a0", False),)
        plan, cost = dp_join_order_pareto(query, stats, required=required)
        eq_classes = equality_classes(query)
        assert order_satisfies(provided_order(plan), required, eq_classes)
        assert cost <= _root_sort_bound(query, stats, required) + 1e-9

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_blind_entry_matches_blind_dp(self, seed):
        """The ()-order frontier entry replicates the order-blind DP
        move for move, so its cost is exactly the blind optimum."""
        query = chain_query(4)
        stats = chain_stats(4, seed)
        frontier = pareto_frontier(query, stats)
        blind = dp_join_order(query, stats)
        assert frontier[()][0] == pytest.approx(dp_cost(blind, stats))

    def test_unsatisfiable_required_order_raises(self):
        query = chain_query(3)
        stats = chain_stats(3)
        with pytest.raises(DpError):
            dp_join_order_pareto(
                query, stats, required=(("not_an_attr", False),)
            )


class TestFrontier:
    def test_interesting_order_entries_are_satisfied(self):
        query = chain_query(4)
        stats = chain_stats(4)
        interesting = interesting_orders(query)
        assert interesting  # equi-join atoms seed candidate orders
        frontier = pareto_frontier(query, stats, interesting)
        eq_classes = equality_classes(query)
        for order, (cost, plan) in frontier.items():
            if order:
                assert order_satisfies(
                    provided_order(plan), order, eq_classes
                )
            assert cost >= frontier[()][0] - 1e-9  # order is never free

    def test_dominance_pruning_keeps_frontier_small(self):
        query = chain_query(5)
        stats = chain_stats(5)
        interesting = interesting_orders(query)
        frontier = pareto_frontier(query, stats, interesting)
        # at most one entry per distinct interesting order plus ()
        assert len(frontier) <= len(interesting) + 1

    def test_equality_classes_union_join_atoms(self):
        query = chain_query(3)  # r1_a1 = r2_a0, r2_a1 = r3_a0
        classes = equality_classes(query)
        assert classes["r1_a1"] == frozenset({"r1_a1", "r2_a0"})
        assert classes["r2_a1"] == frozenset({"r2_a1", "r3_a0"})

    def test_free_order_via_equality_class(self):
        """A required order on the *other* side of an equi atom is
        satisfied without a second sort (Szlichta-style free order)."""
        query = chain_query(3)
        stats = chain_stats(3)
        required = (("r2_a0", False),)  # r1_a1 = r2_a0 in the query
        plan, cost = dp_join_order_pareto(query, stats, required=required)
        sorts = [n for n in plan.walk() if isinstance(n, Sort)]
        assert len(sorts) <= 1
        assert order_satisfies(
            provided_order(plan), required, equality_classes(query)
        )


class TestEnforcerPlacement:
    def test_sort_below_join_when_cheaper(self):
        """With a large final result and a small ordered relation, the
        DP pushes the enforcer below the joins instead of sorting the
        whole output at the root."""
        stats = Statistics()
        stats.add("r1", TableStats(10, {"r1_a0": 5, "r1_a1": 5}))
        stats.add("r2", TableStats(1000, {"r2_a0": 500, "r2_a1": 500}))
        stats.add("r3", TableStats(1000, {"r3_a0": 500, "r3_a1": 500}))
        query = chain_query(3)
        plan, cost = dp_join_order_pareto(
            query, stats, required=(("r1_a0", False),)
        )
        sorts = [n for n in plan.walk() if isinstance(n, Sort)]
        assert sorts, "expected an enforcer somewhere in the plan"
        # the enforcer sorts the 10-row relation, not the join output
        model = CostModel(stats)
        assert all(model.estimate(s.child).rows <= 10 for s in sorts)


class TestOrderAwareReorder:
    def test_never_worse_and_semantics_preserved(self):
        rng = random.Random(7)
        query = chain_query(3)
        stats = chain_stats(3)
        wrapped = GroupBy(
            query,
            ("r1_a0",),
            (AggregateSpec("n", AggregateFunction.COUNT),),
            name="g",
        )
        required = (("r1_a0", False),)
        plan = order_aware_reorder(wrapped, stats, required=required)
        db = random_database(
            rng, tuple(sorted(query.base_names)), max_rows=6, min_rows=1
        )
        assert evaluate(plan, db).same_content(evaluate(wrapped, db))

    def test_group_by_prefix_makes_order_by_free(self):
        """Ordering below a GROUP BY on the group key yields a plan
        whose output is already sorted: no root Sort is needed.

        (Seed 2's statistics make the streaming plan the cheaper one;
        under other statistics a root sort over few groups can
        legitimately win, which is the point of costing enforcers
        instead of always pushing them down.)"""
        query = chain_query(3)
        stats = chain_stats(3, seed=2)
        wrapped = GroupBy(
            query,
            ("r1_a0",),
            (AggregateSpec("n", AggregateFunction.COUNT),),
            name="g",
        )
        required = (("r1_a0", False),)
        plan = order_aware_reorder(wrapped, stats, required=required)
        assert order_satisfies(
            provided_order(plan), required, equality_classes(query)
        )
        assert not isinstance(plan, Sort), (
            "enforcer should sit below the aggregation, not at the root"
        )

    def test_no_required_order_is_a_no_op_or_improvement(self):
        query = chain_query(4)
        stats = chain_stats(4)
        blind = dp_join_order(query, stats)
        plan = order_aware_reorder(blind, stats)
        model = CostModel(stats)
        assert model.cost(plan) <= model.cost(blind) + 1e-9
