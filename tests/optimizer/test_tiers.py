"""The enumeration tiers: GOO and partitioned DP between full DP and greedy."""

import random
import time

import pytest

from repro.errors import DeadlineExceeded
from repro.expr import BaseRel, evaluate, inner, left_outer
from repro.expr.nodes import Project, Select
from repro.expr.predicates import cmp_const, eq
from repro.optimizer import Statistics, TableStats
from repro.optimizer.dp import DpError, dp_cost, dp_join_order
from repro.optimizer.tiers import (
    TIER_NAMES,
    choose_tier,
    goo_join_order,
    goo_reorder,
    partitioned_dp_join_order,
    partitioned_reorder,
    peel_wrappers,
    rebuild_wrappers,
)
from repro.runtime.budget import Budget, TierThresholds
from repro.workloads.random_db import random_database, random_join_query
from repro.workloads.topologies import chain_query, star_query

from tests.optimizer.test_dp import chain_stats


def star_stats(n_satellites, seed=1):
    rng = random.Random(seed)
    stats = Statistics()
    hub_attrs = {f"r0_a{i}": 5 for i in range(n_satellites)}
    stats.add("r0", TableStats(10, hub_attrs))
    for i in range(1, n_satellites + 1):
        rows = rng.choice((10, 100, 1000))
        stats.add(
            f"r{i}",
            TableStats(rows, {f"r{i}_a0": rows // 2, f"r{i}_a1": rows // 2}),
        )
    return stats


class TestPolicy:
    def test_choose_tier_default_thresholds(self):
        assert choose_tier(2) == "dp"
        assert choose_tier(12) == "dp"
        assert choose_tier(13) == "partitioned"
        assert choose_tier(40) == "partitioned"
        assert choose_tier(41) == "goo"

    def test_choose_tier_custom_thresholds(self):
        th = TierThresholds(full_max_relations=3, partitioned_max_relations=5)
        assert choose_tier(3, th) == "dp"
        assert choose_tier(4, th) == "partitioned"
        assert choose_tier(6, th) == "goo"

    def test_tier_names_cover_the_cli_choices(self):
        assert TIER_NAMES == ("auto", "dp", "partitioned", "goo")


class TestPeelRebuild:
    def test_round_trip_is_identity(self):
        core = chain_query(3)
        wrapped = Project(
            Select(core, cmp_const("r1_a0", ">=", 0)), ("r1_a0", "r2_a0")
        )
        stack, peeled = peel_wrappers(wrapped)
        assert peeled is core
        assert [type(w) for w in stack] == [Project, Select]
        assert rebuild_wrappers(stack, peeled) == wrapped

    def test_bare_core_peels_to_itself(self):
        core = chain_query(2)
        stack, peeled = peel_wrappers(core)
        assert stack == [] and peeled is core


class TestGooQuality:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chain_cost_close_to_exact(self, n, seed):
        query = chain_query(n)
        stats = chain_stats(n, seed)
        exact = dp_cost(dp_join_order(query, stats), stats)
        greedy = dp_cost(goo_join_order(query, stats), stats)
        assert greedy >= exact - 1e-9  # sanity: exact really is a lower bound
        assert greedy <= 3.0 * exact + 1e-9

    def test_star_matches_exact(self):
        query = star_query(4)
        stats = star_stats(4)
        exact = dp_cost(dp_join_order(query, stats), stats)
        greedy = dp_cost(goo_join_order(query, stats), stats)
        assert greedy == pytest.approx(exact)


class TestPartitionedQuality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_chain_recovers_exact_optimum(self, seed):
        """On a chain every connected subset is an interval of the BFS
        order, so the linearized refinement recovers the exact bushy
        optimum even when the partitions cut the chain."""
        query = chain_query(9)
        stats = chain_stats(9, seed)
        exact = dp_cost(dp_join_order(query, stats), stats)
        tiered = partitioned_dp_join_order(
            query, stats, thresholds=TierThresholds(partition_size=3)
        )
        assert dp_cost(tiered, stats) == pytest.approx(exact)

    @pytest.mark.parametrize("n", [8, 12])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_never_worse_than_goo(self, n, seed):
        query = chain_query(n, complex_every=3)
        stats = chain_stats(n, seed)
        goo = dp_cost(goo_join_order(query, stats), stats)
        tiered = dp_cost(
            partitioned_dp_join_order(
                query, stats, thresholds=TierThresholds(partition_size=4)
            ),
            stats,
        )
        assert tiered <= goo + 1e-9


class TestEquivalence:
    """Both tiers only recombine the query's own atoms -- every plan
    must return the exact same bag as the original query."""

    @pytest.mark.parametrize("order_fn", [goo_join_order, partitioned_dp_join_order])
    def test_random_inner_queries(self, order_fn):
        rng = random.Random(20)
        for _ in range(10):
            query = random_join_query(
                rng, rng.randint(2, 6), outer_probability=0.0,
                complex_probability=0.4,
            )
            names = tuple(sorted(query.base_names))
            db = random_database(rng, names, null_probability=0.1)
            stats = Statistics.from_database(db)
            plan = order_fn(query, stats)
            assert evaluate(plan, db).same_content(evaluate(query, db))

    @pytest.mark.parametrize("order_fn", [goo_join_order, partitioned_dp_join_order])
    def test_chain_with_complex_predicates(self, order_fn):
        rng = random.Random(21)
        query = chain_query(7, complex_every=3)
        names = tuple(sorted(query.base_names))
        db = random_database(rng, names, max_rows=4, null_probability=0.0)
        stats = Statistics.from_database(db)
        plan = order_fn(query, stats)
        assert evaluate(plan, db).same_content(evaluate(query, db))
        assert plan.base_names == query.base_names


class TestScalability:
    def test_goo_handles_sixty_relations(self):
        query = chain_query(60)
        stats = chain_stats(60)
        start = time.perf_counter()
        plan = goo_join_order(query, stats)
        assert time.perf_counter() - start < 10.0
        assert plan.base_names == query.base_names

    def test_partitioned_handles_forty_relations(self):
        query = chain_query(40)
        stats = chain_stats(40)
        start = time.perf_counter()
        plan = partitioned_dp_join_order(query, stats)
        assert time.perf_counter() - start < 20.0
        assert plan.base_names == query.base_names


class TestBudgets:
    def test_goo_observes_the_deadline(self):
        budget = Budget(deadline_ms=0.0)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded):
            goo_join_order(chain_query(6), chain_stats(6), budget=budget)

    def test_partitioned_observes_the_deadline(self):
        budget = Budget(deadline_ms=0.0)
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded):
            partitioned_dp_join_order(
                chain_query(16), chain_stats(16), budget=budget
            )


class TestScope:
    @pytest.mark.parametrize("reorder", [goo_reorder, partitioned_reorder])
    def test_outer_join_core_declined(self, reorder):
        q = left_outer(
            BaseRel("a", ("ax",)), BaseRel("b", ("bx",)), eq("ax", "bx")
        )
        with pytest.raises(DpError):
            reorder(q, Statistics())

    @pytest.mark.parametrize(
        "order_fn", [goo_join_order, partitioned_dp_join_order]
    )
    def test_single_relation_passthrough(self, order_fn):
        rel = BaseRel("a", ("ax",))
        assert order_fn(rel, Statistics()) is rel

    def test_reorder_peels_wrappers_and_reports_costs(self):
        query = Select(chain_query(4), cmp_const("r1_a0", ">=", 0))
        stats = chain_stats(4)
        result = goo_reorder(query, stats)
        assert isinstance(result.best, Select)
        assert result.plans_considered == 1
        assert result.best_cost == result.ranked[0][0]
