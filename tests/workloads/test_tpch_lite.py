"""TPC-H-lite workload: generation and query semantics."""

import random

import pytest

from repro.exec import execute
from repro.expr import evaluate
from repro.optimizer import Statistics, measured_cost, optimize
from repro.sql import parse_statements, translate
from repro.workloads.tpch_lite import (
    ALL_QUERIES,
    Q13_CUSTOMER_DISTRIBUTION,
    tpch_lite_catalog,
    tpch_lite_database,
)


@pytest.fixture()
def setup():
    rng = random.Random(99)
    db = tpch_lite_database(rng, customers=20, suppliers=6)
    return db, tpch_lite_catalog()


def run_last(script, catalog, db):
    statements = parse_statements(script)
    for stmt in statements[:-1]:
        catalog.add_view(stmt)
    translation = translate(statements[-1], catalog)
    return translation, evaluate(translation.expr, db)


class TestGenerator:
    def test_shapes(self, setup):
        db, _ = setup
        assert len(db["customer"]) == 20
        assert len(db["supplier"]) == 6
        assert len(db["orders"]) > 0
        assert len(db["lineitem"]) > 0

    def test_some_customers_without_orders(self, setup):
        db, _ = setup
        with_orders = {row["o_custkey"] for row in db["orders"]}
        all_customers = {row["c_key"] for row in db["customer"]}
        assert all_customers - with_orders, "need order-less customers"


class TestQ13Distribution:
    def test_matches_manual_computation(self, setup):
        db, catalog = setup
        _, out = run_last(Q13_CUSTOMER_DISTRIBUTION, catalog, db)
        counts = {}
        per_customer = {row["c_key"]: 0 for row in db["customer"]}
        for row in db["orders"]:
            per_customer[row["o_custkey"]] += 1
        for n in per_customer.values():
            counts[n] = counts.get(n, 0) + 1
        got = {row["cust_orders_n"]: row["custdist"] for row in out}
        assert got == counts

    def test_zero_bucket_present(self, setup):
        """Customers without orders land in the n=0 bucket (the whole

        point of Q13's outer join)."""
        db, catalog = setup
        _, out = run_last(Q13_CUSTOMER_DISTRIBUTION, catalog, db)
        buckets = {row["cust_orders_n"] for row in out}
        assert 0 in buckets


class TestAllQueries:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_fast_executor_agrees(self, setup, name):
        db, catalog = setup
        translation, want = run_last(ALL_QUERIES[name], catalog, db)
        assert execute(translation.expr, db).same_content(want)

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_optimizer_preserves_semantics(self, setup, name):
        db, catalog = setup
        translation, want = run_last(ALL_QUERIES[name], catalog, db)
        stats = Statistics.from_database(db)
        result = optimize(translation.expr, stats, max_plans=300)
        assert evaluate(result.best, db).same_content(want)
        assert measured_cost(result.best, db) <= measured_cost(
            translation.expr, db
        ) + 1  # never meaningfully worse
