"""Tests for the public equivalence-testing utilities."""

import pytest

from repro.expr import BaseRel, full_outer, inner, left_outer
from repro.expr.predicates import eq
from repro.testing import assert_equivalent, check_equivalent

A = BaseRel("a", ("ax", "ay"))
B = BaseRel("b", ("bx", "by"))
C = BaseRel("c", ("cx", "cy"))


class TestCheckEquivalent:
    def test_equivalent_pair_passes(self):
        lhs = inner(A, B, eq("ax", "bx"))
        rhs = inner(B, A, eq("ax", "bx"))
        assert check_equivalent(lhs, rhs, trials=80) is None

    def test_inequivalent_pair_found(self):
        """LOJ vs inner join differ whenever an `a` row is unmatched."""
        lhs = left_outer(A, B, eq("ax", "bx"))
        rhs = inner(A, B, eq("ax", "bx"))
        witness = check_equivalent(lhs, rhs, trials=200)
        assert witness is not None
        assert witness.left_rows != witness.right_rows
        assert "counterexample" in witness.describe()

    def test_famous_non_identity_caught(self):
        """(a → (b ⋈ c)) vs ((a → b) ⋈ c): the paper's blocked shape."""
        p_ab = eq("ax", "bx")
        p_bc = eq("by", "cx")
        lhs = left_outer(A, inner(B, C, p_bc), p_ab)
        rhs = inner(left_outer(A, B, p_ab), C, p_bc)
        assert check_equivalent(lhs, rhs, trials=300) is not None

    def test_mismatched_relations_rejected(self):
        with pytest.raises(ValueError, match="different base relations"):
            check_equivalent(A, B)

    def test_assert_equivalent_raises_with_description(self):
        lhs = left_outer(A, B, eq("ax", "bx"))
        rhs = inner(A, B, eq("ax", "bx"))
        with pytest.raises(AssertionError, match="counterexample"):
            assert_equivalent(lhs, rhs, trials=200)

    def test_full_outer_commutativity_via_util(self):
        assert_equivalent(
            full_outer(A, B, eq("ax", "bx")),
            full_outer(B, A, eq("ax", "bx")),
            trials=100,
        )
