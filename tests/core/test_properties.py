"""Property-based tests (hypothesis): the master soundness invariants.

* every plan in the rewrite closure of a random query is equivalent to
  the query on random databases;
* deferring any conjunct of any join of a random query preserves
  semantics;
* simplification preserves semantics;
* generalized selection satisfies Definition 2.1 structurally.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.simplify import simplify_outer_joins
from repro.core.split import SplitError, defer_conjunct
from repro.core.transform import enumerate_plans
from repro.expr import Join, evaluate, to_algebra
from repro.expr.predicates import conjuncts_of
from repro.expr.rewrite import iter_nodes
from repro.workloads.random_db import random_database, random_join_query

SEEDS = st.integers(min_value=0, max_value=10_000)


def make_case(seed, n_relations):
    rng = random.Random(seed)
    query = random_join_query(
        rng, n_relations, outer_probability=0.6, complex_probability=0.5
    )
    names = tuple(sorted(query.base_names))
    dbs = [
        random_database(rng, names, null_probability=0.15) for _ in range(4)
    ]
    return query, dbs


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, n=st.integers(min_value=2, max_value=4))
def test_closure_plans_equivalent(seed, n):
    query, dbs = make_case(seed, n)
    plans = enumerate_plans(query, max_plans=120)
    references = [evaluate(query, db) for db in dbs]
    for plan in plans:
        for db, want in zip(dbs, references):
            got = evaluate(plan, db)
            assert got.same_content(want), to_algebra(plan)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, n=st.integers(min_value=2, max_value=5))
def test_defer_any_conjunct_equivalent(seed, n):
    query, dbs = make_case(seed, n)
    references = [evaluate(query, db) for db in dbs]
    for path, node in iter_nodes(query):
        if not isinstance(node, Join):
            continue
        for atom in conjuncts_of(node.predicate):
            try:
                result = defer_conjunct(query, path, atom)
            except SplitError:
                continue
            for db, want in zip(dbs, references):
                got = evaluate(result.expr, db)
                assert got.same_content(want), to_algebra(result.expr)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS, n=st.integers(min_value=2, max_value=5))
def test_simplification_equivalent(seed, n):
    query, dbs = make_case(seed, n)
    simplified = simplify_outer_joins(query)
    for db in dbs:
        assert evaluate(simplified, db).same_content(evaluate(query, db))


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS)
def test_generalized_selection_definition(seed):
    """σ*_p[ri](r) decomposes per Definition 2.1:

    E' = σ_p(r) ⊎ (π_{RiVi}(r) − π_{RiVi}(σ_p(r))), modulo the
    provenance presence rule.
    """
    rng = random.Random(seed)
    from repro.relalg import (
        PreservedSpec,
        Relation,
        generalized_selection,
        left_outer_join,
        select,
    )
    from repro.relalg.nulls import compare, is_null
    from repro.relalg.operators import FunctionPredicate

    left = Relation.base(
        "l",
        ["l_k", "l_v"],
        [
            (rng.choice((1, 2)), rng.choice((1, 2)))
            for _ in range(rng.randint(0, 4))
        ],
    )
    right = Relation.base(
        "r",
        ["r_k", "r_v"],
        [
            (rng.choice((1, 2)), rng.choice((1, 2)))
            for _ in range(rng.randint(0, 4))
        ],
    )
    joined = left_outer_join(
        left,
        right,
        FunctionPredicate(lambda row: compare(row["l_k"], "=", row["r_k"]), "k="),
    )
    pred = FunctionPredicate(
        lambda row: compare(row["l_v"], "=", row["r_v"]), "v="
    )
    spec = PreservedSpec.of("l", ["l_k", "l_v"], ["#l"])
    out = generalized_selection(joined, pred, [spec])

    selected = select(joined, pred)
    # every selected row is in the output
    assert all(row in out.rows for row in selected)
    # rows added beyond the selection are null-padded l-parts
    extra = [row for row in out.rows if row not in selected.rows]
    for row in extra:
        assert is_null(row["r_k"]) and is_null(row["r_v"])
        part = row.project(("l_k", "l_v", "#l"))
        # the part occurs in the input and in no selected row
        assert any(
            r.project(("l_k", "l_v", "#l")) == part for r in joined.rows
        )
        assert not any(
            r.project(("l_k", "l_v", "#l")) == part for r in selected.rows
        )
