"""Equivalence tests for conjunct deferral (split) on randomized data.

These encode the empirically-derived walking rules: every case was
first isolated by hand against brute-force evaluation (see DESIGN.md).
"""

import random

import pytest

from repro.core.split import SplitError, defer_conjunct, defer_conjuncts
from repro.expr import (
    BaseRel,
    Database,
    evaluate,
    full_outer,
    inner,
    left_outer,
    right_outer,
)
from repro.expr.predicates import eq, make_conjunction
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))
R4 = BaseRel("r4", ("r4_a0", "r4_a1"))
R5 = BaseRel("r5", ("r5_a0", "r5_a1"))

p12 = eq("r1_a0", "r2_a0")
p12b = eq("r1_a1", "r2_a1")
p13 = eq("r1_a1", "r3_a1")
p23 = eq("r2_a1", "r3_a0")
p34 = eq("r3_a1", "r4_a0")
p14 = eq("r1_a1", "r4_a0")
p52 = eq("r5_a1", "r2_a1")


def assert_equivalent(original, transformed, names, trials=120, seed=11):
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database(rng, names, null_probability=0.15)
        want = evaluate(original, db)
        got = evaluate(transformed, db)
        assert got.same_content(want), (
            f"mismatch on trial {trial}:\nwant:\n{want.to_text()}\n"
            f"got:\n{got.to_text()}"
        )


class TestBasicShapes:
    def test_split_at_root_loj(self):
        """Identity (1) via the general machinery."""
        q = left_outer(R1, R2, make_conjunction([p12, p12b]))
        res = defer_conjunct(q, (), p12b)
        assert res.groups == (frozenset({"r1"}),)
        assert_equivalent(q, res.expr, ("r1", "r2"))

    def test_split_at_root_foj(self):
        q = full_outer(R1, R2, make_conjunction([p12, p12b]))
        res = defer_conjunct(q, (), p12b)
        assert set(res.groups) == {frozenset({"r1"}), frozenset({"r2"})}
        assert_equivalent(q, res.expr, ("r1", "r2"))

    def test_split_at_root_inner(self):
        q = inner(R1, R2, make_conjunction([p12, p12b]))
        res = defer_conjunct(q, (), p12b)
        assert res.groups == ()
        assert_equivalent(q, res.expr, ("r1", "r2"))

    def test_split_complex_pred_identity3(self):
        """(r1 → r2) →^{p13∧p23} r3 = σ*_{p13}[r1r2](...)."""
        q = left_outer(left_outer(R1, R2, p12), R3, make_conjunction([p13, p23]))
        res = defer_conjunct(q, (), p13)
        assert res.groups == (frozenset({"r1", "r2"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3"))

    def test_split_only_conjunct_leaves_true_join(self):
        from repro.expr.predicates import TRUE

        q = left_outer(R1, R2, p12)
        res = defer_conjunct(q, (), p12)
        assert res.expr.child.predicate is TRUE
        assert_equivalent(q, res.expr, ("r1", "r2"))


class TestNonRootShapes:
    def test_inner_join_ancestor_extends_group(self):
        """pres extends through joins above: pres = {r1, r4}."""
        q = inner(
            left_outer(R1, inner(R2, R3, p23), make_conjunction([p12, p13])),
            R4,
            p14,
        )
        res = defer_conjunct(q, (0,), p13)
        assert res.groups == (frozenset({"r1", "r4"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r4"))

    def test_loj_ancestor_null_side_drops_and_adds(self):
        """r5 →p52 (r1 →c (r2 ⋈ r3)): pres(h) dies, [r5] appears."""
        q = left_outer(
            R5,
            left_outer(R1, inner(R2, R3, p23), make_conjunction([p12, p13])),
            p52,
        )
        res = defer_conjunct(q, (1,), p13)
        assert res.groups == (frozenset({"r5"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r5"))

    def test_foj_ancestor_adds_far_side(self):
        """(r1 →c (r2 ⋈ r3)) ↔p34 r4: compensation [r4, r1-kept?]."""
        q = full_outer(
            left_outer(R1, inner(R2, R3, p23), make_conjunction([p12, p13])),
            R4,
            p34,
        )
        res = defer_conjunct(q, (0,), p13)
        assert frozenset({"r4"}) in res.groups
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r4"))

    def test_foj_below_in_null_hypernode_needs_only_pres(self):
        """r1 →^{p12∧p13} (r2 ↔p23 r3): [r1] alone."""
        q = left_outer(
            R1, full_outer(R2, R3, p23), make_conjunction([p12, p13])
        )
        res = defer_conjunct(q, (), p13)
        assert res.groups == (frozenset({"r1"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3"))

    def test_loj_ancestor_preserved_side_keeps_group(self):
        """(r1 →c (r2 ⋈ r3)) →p34 r4 with p34 on the null side of c's

        padding: group [r1] survives the preserving ancestor.
        """
        q = left_outer(
            left_outer(R1, inner(R2, R3, p23), make_conjunction([p12, p13])),
            R4,
            p34,
        )
        res = defer_conjunct(q, (0,), p13)
        assert res.groups == (frozenset({"r1"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r4"))

    def test_loj_ancestor_predicate_within_group_extends(self):
        """(r1 →c (r2 ⋈ r3)) →p14 r4: q refs r1 ⊆ group → extend."""
        q = left_outer(
            left_outer(R1, inner(R2, R3, p23), make_conjunction([p12, p13])),
            R4,
            p14,
        )
        res = defer_conjunct(q, (0,), p13)
        assert res.groups == (frozenset({"r1", "r4"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r4"))


class TestMultipleConjuncts:
    def test_q6_style_two_complex_predicates(self):
        """Q6: r1 ↔^{p12∧p14} (r2 →^{p23∧p24} (r3 → r4))."""
        p12_ = eq("r1_a0", "r2_a0")
        p14_ = eq("r1_a1", "r4_a1")
        p23_ = eq("r2_a1", "r3_a0")
        p24_ = eq("r2_a0", "r4_a0")
        p34_ = eq("r3_a1", "r4_a0")
        q = full_outer(
            R1,
            left_outer(R2, left_outer(R3, R4, p34_), make_conjunction([p23_, p24_])),
            make_conjunction([p12_, p14_]),
        )
        # break the root (independent) predicate first, then the inner one
        out = defer_conjuncts(q, [((), p14_), ((1,), p24_)])
        assert_equivalent(q, out, ("r1", "r2", "r3", "r4"), trials=150)

    def test_extension_subsumes_far_side(self):
        """FOJ ancestor whose predicate is covered by a group: the

        group extends and the far side must NOT be added separately
        (validated empirically -- [r2],[r1] mismatches 110/300).
        """
        p24p = eq("r2_a0", "r4_a1")
        p34_ = eq("r3_a1", "r4_a0")
        q = full_outer(
            R1,
            left_outer(R2, left_outer(R3, R4, p34_), make_conjunction([p23, p24p])),
            p12,
        )
        res = defer_conjunct(q, (1,), p24p)
        assert res.groups == (frozenset({"r1", "r2"}),)
        assert_equivalent(q, res.expr, ("r1", "r2", "r3", "r4"))

    def test_two_conjuncts_same_join(self):
        q = left_outer(R1, R2, make_conjunction([p12, p12b]))
        out = defer_conjuncts(q, [((), p12), ((), p12b)])
        assert_equivalent(q, out, ("r1", "r2"))


class TestErrors:
    def test_split_non_join_raises(self):
        with pytest.raises(SplitError):
            defer_conjunct(R1, (), p12)

    def test_split_missing_conjunct_raises(self):
        q = left_outer(R1, R2, p12)
        with pytest.raises(SplitError):
            defer_conjunct(q, (), p13)

    def test_split_below_groupby_raises(self):
        from repro.expr import GroupBy
        from repro.relalg.aggregates import count_star

        q = GroupBy(
            left_outer(R1, R2, make_conjunction([p12, p12b])),
            ("r1_a0",),
            (count_star("n"),),
            "g",
        )
        with pytest.raises(SplitError):
            defer_conjunct(q, (0,), p12b)
