"""Unnesting vs tuple iteration semantics, on randomized data."""

import random

import pytest

from repro.core.unnest import (
    NestedCountQuery,
    example_join_aggregate,
    execute_tis,
    unnest,
)
from repro.expr import BaseRel, Database, evaluate
from repro.expr.predicates import eq
from repro.relalg import Relation


def random_db(rng, max_rows=5):
    def rows(spec, n):
        return [tuple(rng.choice((1, 2, 3)) for _ in spec) for _ in range(n)]

    db = Database()
    specs = {
        "r1": ("r1_key", "r1_a", "r1_b", "r1_c", "r1_f"),
        "r2": ("r2_key", "r2_c", "r2_d", "r2_e"),
        "r3": ("r3_key", "r3_e", "r3_f"),
    }
    for name, attrs in specs.items():
        db.add(
            name,
            Relation.base(name, list(attrs), rows(attrs, rng.randint(0, max_rows))),
        )
    return db


class TestTwoLevelUnnesting:
    """Single nesting: SELECT a FROM r1 WHERE b θ (SELECT count(*) ...)."""

    def make_query(self, theta):
        r1 = BaseRel("r1", ("r1_key", "r1_a", "r1_b", "r1_c", "r1_f"))
        r2 = BaseRel("r2", ("r2_key", "r2_c", "r2_d", "r2_e"))
        inner_level = NestedCountQuery(
            relation=r2,
            correlation=eq("r2_c", "r1_c"),
            compare_attr="",
            theta="",
            subquery=None,
        )
        return NestedCountQuery(
            relation=r1,
            correlation=None,
            compare_attr="r1_b",
            theta=theta,
            subquery=inner_level,
            select_attrs=("r1_a",),
        )

    @pytest.mark.parametrize("theta", ["=", ">", "<", ">=", "<="])
    def test_matches_tis(self, theta):
        query = self.make_query(theta)
        plan = unnest(query)
        rng = random.Random(61)
        for _ in range(60):
            db = random_db(rng)
            want = execute_tis(query, db)
            got = evaluate(plan, db)
            assert got.same_content(want), (theta, want.to_text(), got.to_text())

    def test_count_bug_zero_matches(self):
        """r1 rows with NO matching r2 must still qualify when θ

        compares against 0 -- the classical COUNT bug.
        """
        query = self.make_query("=")  # r1_b = count(...)
        db = Database()
        db.add(
            "r1",
            Relation.base(
                "r1",
                ["r1_key", "r1_a", "r1_b", "r1_c", "r1_f"],
                [(1, "keep", 0, 99, 0)],  # r1_b = 0, no r2 matches c=99
            ),
        )
        db.add("r2", Relation.base("r2", ["r2_key", "r2_c", "r2_d", "r2_e"], []))
        db.add("r3", Relation.base("r3", ["r3_key", "r3_e", "r3_f"], []))
        plan = unnest(query)
        got = evaluate(plan, db)
        want = execute_tis(query, db)
        assert want.rows and got.same_content(want)


class TestThreeLevelUnnesting:
    """The paper's doubly nested query with the complex inner correlation."""

    @pytest.mark.parametrize(
        "theta1,theta2", [(">", "<"), ("=", "="), ("<=", ">="), ("<", ">")]
    )
    def test_matches_tis(self, theta1, theta2):
        query = example_join_aggregate(theta1, theta2)
        plan = unnest(query)
        rng = random.Random(71)
        for _ in range(50):
            db = random_db(rng, max_rows=4)
            want = execute_tis(query, db)
            got = evaluate(plan, db)
            assert got.same_content(want), (
                theta1,
                theta2,
                want.to_text(),
                got.to_text(),
            )

    def test_inner_count_bug(self):
        """(r1, r2) pairs with zero r3 matches must test θ2 against 0."""
        query = example_join_aggregate("=", "=")
        db = Database()
        db.add(
            "r1",
            Relation.base(
                "r1",
                ["r1_key", "r1_a", "r1_b", "r1_c", "r1_f"],
                [(1, "x", 1, 7, 5)],
            ),
        )
        db.add(
            "r2",
            Relation.base(
                "r2",
                ["r2_key", "r2_c", "r2_d", "r2_e"],
                [(10, 7, 0, 3)],  # matches r1 (c=7), d=0 -> needs count(r3)=0
            ),
        )
        db.add("r3", Relation.base("r3", ["r3_key", "r3_e", "r3_f"], []))
        plan = unnest(query)
        want = execute_tis(query, db)
        got = evaluate(plan, db)
        assert want.rows  # r1 qualifies: count = 1 (the r2 row passes)
        assert got.same_content(want)

    def test_unnested_plan_is_reorderable(self):
        """The complex correlation becomes a complex-predicate LOJ; the

        closure (with GS) reorders it -- e.g. joining r2, r3 first.
        """
        from repro.core.transform import enumerate_plans
        from repro.expr import Join

        query = example_join_aggregate()
        plan = unnest(query)
        # find the join core: dig to the join chain below GroupBy etc.
        core = plan
        while core.children() and not isinstance(core, Join):
            core = core.children()[0]
        plans = enumerate_plans(core, max_plans=500)
        assert len(plans) > 1

        def pairs_first(p, pair):
            return any(
                isinstance(n, Join)
                and n.left.base_names | n.right.base_names == pair
                for n in p.walk()
            )

        assert any(pairs_first(p, frozenset({"r2", "r3"})) for p in plans)

    def test_raises_without_subquery(self):
        r1 = BaseRel("r1", ("r1_a",))
        flat = NestedCountQuery(r1, None, "r1_a", "=", None, ("r1_a",))
        with pytest.raises(ValueError):
            unnest(flat)
