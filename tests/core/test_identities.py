"""Randomized verification of identities (1)-(8), Section 3.1."""

import random

import pytest

from repro.core.identities import (
    identity_1,
    identity_2,
    identity_3,
    identity_4,
    identity_5,
    identity_6,
    identity_6_as_printed,
    identity_7,
    identity_8,
)
from repro.expr import BaseRel, JoinKind, evaluate
from repro.expr.predicates import eq
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))
R4 = BaseRel("r4", ("r4_a0", "r4_a1"))

p12 = eq("r1_a0", "r2_a0")
p12b = eq("r1_a1", "r2_a1")
p13 = eq("r1_a1", "r3_a1")
p23 = eq("r2_a1", "r3_a0")
p23b = eq("r2_a0", "r3_a1")
p24 = eq("r2_a1", "r4_a0")


def check(pair, names, trials=150, seed=23):
    lhs, rhs = pair
    rng = random.Random(seed)
    disagreements = 0
    for _ in range(trials):
        db = random_database(rng, names, null_probability=0.1)
        if not evaluate(rhs, db).same_content(evaluate(lhs, db)):
            disagreements += 1
    return disagreements


class TestIdentities:
    def test_identity_1(self):
        assert check(identity_1(R1, R2, p12, p12b), ("r1", "r2")) == 0

    def test_identity_2(self):
        assert check(identity_2(R1, R2, p12, p12b), ("r1", "r2")) == 0

    @pytest.mark.parametrize(
        "kind", [JoinKind.INNER, JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL]
    )
    def test_identity_3_all_inner_ops(self, kind):
        pair = identity_3(R1, R2, R3, kind, p12, p13, p23)
        assert check(pair, ("r1", "r2", "r3")) == 0

    @pytest.mark.parametrize(
        "kind", [JoinKind.INNER, JoinKind.LEFT, JoinKind.FULL]
    )
    def test_identity_4_all_inner_ops(self, kind):
        pair = identity_4(R1, R2, R3, kind, p12, p13, p23)
        assert check(pair, ("r1", "r2", "r3")) == 0

    def test_identity_5(self):
        pair = identity_5(R1, R2, R3, p12, p23, p23b)
        assert check(pair, ("r1", "r2", "r3")) == 0

    def test_identity_6_corrected(self):
        pair = identity_6(R1, R2, R3, p12, p23, p23b)
        assert check(pair, ("r1", "r2", "r3")) == 0

    def test_identity_6_as_printed_is_an_erratum(self):
        """The printed form over-preserves; this documents the erratum."""
        pair = identity_6_as_printed(R1, R2, R3, p12, p23, p23b)
        assert check(pair, ("r1", "r2", "r3")) > 0

    def test_identity_7(self):
        pair = identity_7(R1, R2, R3, p12, p23, p23b)
        assert check(pair, ("r1", "r2", "r3")) == 0

    def test_identity_8(self):
        pair = identity_8(R1, R2, R3, R4, p12, p23, p23b, p24)
        assert check(pair, ("r1", "r2", "r3", "r4"), trials=120) == 0


class TestAgainstGeneralMachinery:
    """The literal identities agree with defer_conjunct where shapes match."""

    def test_identity_1_matches_split(self):
        from repro.core.split import defer_conjunct
        from repro.expr import left_outer
        from repro.expr.predicates import make_conjunction

        lhs, rhs = identity_1(R1, R2, p12, p12b)
        res = defer_conjunct(lhs, (), p12)
        assert res.expr == rhs

    def test_identity_3_matches_split(self):
        from repro.core.split import defer_conjunct

        lhs, rhs = identity_3(R1, R2, R3, JoinKind.LEFT, p12, p13, p23)
        res = defer_conjunct(lhs, (), p13)
        assert res.expr == rhs
