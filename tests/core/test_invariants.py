"""Cross-cutting invariants discovered during the reproduction."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.assoc_tree import association_trees, count_association_trees
from repro.expr import BaseRel, GenSelect, evaluate, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import hypergraph_of
from repro.workloads.random_db import random_database, random_join_query

SEEDS = st.integers(min_value=0, max_value=50_000)


@settings(max_examples=50, deadline=None)
@given(seed=SEEDS)
def test_generalized_selection_idempotent(seed):
    """σ*_p[s](σ*_p[s](r)) = σ*_p[s](r).

    The padded rows carry NULLs in the predicate's attributes, so the
    second application drops and immediately re-preserves them.
    """
    from repro.core.split import defer_conjunct

    rng = random.Random(seed)
    r1 = BaseRel("r1", ("r1_a0", "r1_a1"))
    r2 = BaseRel("r2", ("r2_a0", "r2_a1"))
    q = left_outer(
        r1, r2, make_conjunction([eq("r1_a0", "r2_a0"), eq("r1_a1", "r2_a1")])
    )
    once = defer_conjunct(q, (), eq("r1_a1", "r2_a1")).expr
    twice = GenSelect(once, once.predicate, once.preserved)
    db = random_database(rng, ("r1", "r2"), null_probability=0.2)
    assert evaluate(twice, db).same_content(evaluate(once, db))


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, n=st.integers(min_value=2, max_value=5))
def test_assoc_tree_count_matches_enumeration(seed, n):
    """The counting DP and the materializing enumerator agree, for

    both the Definition 3.2 and the BHAR95a connectivity notions, on
    random query topologies.
    """
    rng = random.Random(seed)
    query = random_join_query(
        rng, n, outer_probability=0.5, complex_probability=0.6
    )
    graph = hypergraph_of(query)
    for breakup in (True, False):
        assert count_association_trees(graph, breakup) == len(
            association_trees(graph, breakup)
        )


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, n=st.integers(min_value=2, max_value=5))
def test_def32_space_superset_of_bhar95a(seed, n):
    rng = random.Random(seed)
    query = random_join_query(
        rng, n, outer_probability=0.5, complex_probability=0.6
    )
    graph = hypergraph_of(query)
    new = {str(t) for t in association_trees(graph, True)}
    old = {str(t) for t in association_trees(graph, False)}
    assert old <= new


@settings(max_examples=30, deadline=None)
@given(seed=SEEDS)
def test_simplified_queries_have_same_tree_counts_or_more(seed):
    """Simplification (outer -> inner) never shrinks the plan space."""
    from repro.core.simplify import simplify_outer_joins

    rng = random.Random(seed)
    query = random_join_query(
        rng, 4, outer_probability=0.8, complex_probability=0.3
    )
    simplified = simplify_outer_joins(query)
    before = count_association_trees(hypergraph_of(query), True)
    after = count_association_trees(hypergraph_of(simplified), True)
    # association trees carry no operators, so the counts match; the
    # operator-assignment freedom is what grows (see X10)
    assert after == before
