"""Tests for aggregation push-up (Example 3.1 machinery)."""

import random

import pytest

from repro.core.aggregation import (
    PullUpError,
    pull_up_aggregations,
    pull_up_once,
    raise_genselect,
    spine_virtuals,
)
from repro.expr import (
    BaseRel,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    evaluate,
    full_outer,
    inner,
    left_outer,
    preserved_for,
)
from repro.expr.nodes import AdjustPadding
from repro.expr.predicates import Arith, Col, Comparison, Const, eq, make_conjunction
from repro.relalg.aggregates import count_star, min_, sum_
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))


def assert_equiv(original, transformed, names, trials=120, seed=41):
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database(rng, names, null_probability=0.1, max_rows=4)
        want = evaluate(original, db)
        got = evaluate(transformed, db)
        assert got.same_content(want), (
            f"trial {trial}\nwant:\n{want.to_text()}\ngot:\n{got.to_text()}"
        )


def gp_of(rel, name="g"):
    """count(*) + sum + min grouped on the first attribute."""
    prefix = rel.name
    return GroupBy(
        rel,
        (f"{prefix}_a0",),
        (
            count_star("cnt"),
            sum_(f"{prefix}_a1", "total"),
            min_(f"{prefix}_a1", "low"),
        ),
        name,
    )


class TestSpine:
    def test_base_and_joins(self):
        assert spine_virtuals(R1) == {"#r1"}
        assert spine_virtuals(inner(R1, R2, eq("r1_a0", "r2_a0"))) == {
            "#r1",
            "#r2",
        }
        assert spine_virtuals(left_outer(R1, R2, eq("r1_a0", "r2_a0"))) == {"#r1"}
        assert spine_virtuals(full_outer(R1, R2, eq("r1_a0", "r2_a0"))) == frozenset()

    def test_groupby(self):
        g = GroupBy(R1, ("#r1",), (count_star("n"),), "g")
        assert "#g" in spine_virtuals(g)
        assert "#r1" in spine_virtuals(g)


class TestPullUpOnce:
    def test_gp_on_preserved_side_of_loj(self):
        q = left_outer(gp_of(R2), R1, eq("r2_a0", "r1_a0"))
        out = pull_up_once(q)
        assert isinstance(out, GroupBy)
        assert_equiv(q, out, ("r1", "r2"))

    def test_gp_on_null_side_of_loj_count_bug(self):
        """The COUNT-bug case: unmatched preserved rows must see NULL,

        not 0, in the count column.
        """
        q = left_outer(R1, gp_of(R2), eq("r1_a0", "r2_a0"))
        out = pull_up_once(q)
        assert isinstance(out, AdjustPadding)
        assert_equiv(q, out, ("r1", "r2"))

    def test_gp_under_inner_join(self):
        q = inner(gp_of(R2), R1, eq("r2_a0", "r1_a0"))
        out = pull_up_once(q)
        assert_equiv(q, out, ("r1", "r2"))

    def test_gp_under_full_outer_join(self):
        q = full_outer(R1, gp_of(R2), eq("r1_a0", "r2_a0"))
        out = pull_up_once(q)
        assert_equiv(q, out, ("r1", "r2"))

    def test_aggregate_referencing_atom_deferred(self):
        """Example 3.1's shape: the ON references the count column."""
        on = make_conjunction(
            [
                eq("r1_a0", "r2_a0"),
                Comparison(Col("r1_a1"), "<", Col("cnt")),
            ]
        )
        q = left_outer(R1, gp_of(R2), on)
        out = pull_up_once(q)
        assert isinstance(out, GenSelect)
        assert out.predicate.attrs & {"cnt"}
        assert_equiv(q, out, ("r1", "r2"), trials=160)

    def test_agg_atom_on_preserved_gp(self):
        on = make_conjunction(
            [
                eq("r2_a0", "r1_a0"),
                Comparison(Col("cnt"), ">", Col("r1_a1")),
            ]
        )
        q = left_outer(gp_of(R2), R1, on)
        out = pull_up_once(q)
        assert isinstance(out, GenSelect)
        assert_equiv(q, out, ("r1", "r2"), trials=160)

    def test_non_key_atom_refused(self):
        # predicate references r2_a1 which is aggregated away -- it is
        # neither a key nor an aggregate output at the GP level, so the
        # GP's own scope cannot even express it; use a key-looking attr
        # that is not in group_by: group on a0, predicate on the GP's
        # low output is an aggregate (fine); there is no expressible
        # non-key non-agg atom, so assert the guard via group counts:
        g = GroupBy(R2, ("r2_a0", "r2_a1"), (count_star("cnt"),), "g")
        on = eq("r2_a1", "r1_a0")  # references a key -> allowed
        q = left_outer(g, R1, on)
        out = pull_up_once(q)
        assert_equiv(q, out, ("r1", "r2"))

    def test_no_groupby_operand_raises(self):
        with pytest.raises(PullUpError):
            pull_up_once(inner(R1, R2, eq("r1_a0", "r2_a0")))


class TestRaiseGenSelect:
    def test_raise_through_join(self):
        inner_q = left_outer(R2, R3, make_conjunction([eq("r2_a1", "r3_a0"), eq("r2_a0", "r3_a1")]))
        from repro.core.split import defer_conjunct

        res = defer_conjunct(inner_q, (), eq("r2_a0", "r3_a1"))
        gs = res.expr
        q_with = inner(gs, R1, eq("r2_a0", "r1_a0"))
        q_orig = inner(inner_q, R1, eq("r2_a0", "r1_a0"))
        out = raise_genselect(q_with)
        assert isinstance(out, GenSelect)
        assert_equiv(q_orig, out, ("r1", "r2", "r3"), trials=150)


class TestHoistWrapper:
    def test_rename_hoisted_through_join(self):
        from repro.core.aggregation import hoist_wrapper
        from repro.expr import Rename

        renamed = Rename(R2, (("r2_a0", "k"), ("r2_a1", "v")))
        q = inner(renamed, R1, eq("k", "r1_a0"))
        out = hoist_wrapper(q)
        assert isinstance(out, Rename)
        assert_equiv(q, out, ("r1", "r2"), trials=60)

    def test_project_hoisted_through_join(self):
        from repro.core.aggregation import hoist_wrapper
        from repro.expr import Project

        projected = Project(R2, ("r2_a0",))
        q = left_outer(R1, projected, eq("r1_a0", "r2_a0"))
        out = hoist_wrapper(q)
        assert isinstance(out, Project)
        assert_equiv(q, out, ("r1", "r2"), trials=60)

    def test_sql_view_aggregation_pulled_up(self):
        """A view's GroupBy behind Rename/Project wrappers is exposed

        and pulled above the join by the full pipeline.
        """
        from repro.sql import SqlCatalog, parse_statements, translate

        catalog = SqlCatalog(
            {"t": ("k", "v"), "u": ("k2", "w")}
        )
        stmts = parse_statements(
            """
            create view agg as select k, n = count(*) from t group by k;
            select u.w, agg.n from u left outer join agg on u.k2 = agg.k;
            """
        )
        catalog.add_view(stmts[0])
        query = translate(stmts[1], catalog).expr
        out = pull_up_aggregations(query)
        # the GroupBy is no longer a (wrapped) operand of any join
        for node in out.walk():
            if isinstance(node, Join):
                for op in node.children():
                    assert not any(isinstance(n, GroupBy) for n in op.walk())
        from repro.expr import Database
        from repro.relalg import Relation

        rng = random.Random(77)
        for _ in range(40):
            db = Database(
                {
                    "t": Relation.base(
                        "t",
                        ["k", "v"],
                        [
                            (rng.choice((1, 2)), rng.choice((1, 2)))
                            for _ in range(rng.randint(0, 4))
                        ],
                    ),
                    "u": Relation.base(
                        "u",
                        ["k2", "w"],
                        [
                            (rng.choice((1, 2)), rng.choice((1, 2)))
                            for _ in range(rng.randint(0, 3))
                        ],
                    ),
                }
            )
            assert evaluate(out, db).same_content(evaluate(query, db))


class TestFullPipelinePullUp:
    def test_pull_to_root_two_joins(self):
        """GP below two joins ends at the root after iteration."""
        g = gp_of(R2)
        q = inner(
            left_outer(R1, g, eq("r1_a0", "r2_a0")),
            R3,
            eq("r1_a1", "r3_a0"),
        )
        out = pull_up_aggregations(q)
        # no GroupBy below a Join anymore
        for node in out.walk():
            if isinstance(node, Join):
                assert not isinstance(node.left, GroupBy)
                assert not isinstance(node.right, GroupBy)
        assert_equiv(q, out, ("r1", "r2", "r3"), trials=100)

    def test_example_11_supplier_query(self):
        """Example 1.1: the analyst query pulls its aggregation up."""
        from repro.workloads.supplier import supplier_database, supplier_query

        q = supplier_query()
        out = pull_up_aggregations(q)
        assert out != q
        rng = random.Random(3)
        for _ in range(5):
            db = supplier_database(
                rng, n_suppliers=6, n_parts=4, detail_rows=30
            )
            want = evaluate(q, db)
            got = evaluate(out, db)
            assert got.same_content(want)
