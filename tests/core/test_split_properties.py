"""Property tests for multi-conjunct deferral (defer_conjuncts)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.split import SplitError, defer_conjuncts
from repro.expr import Join, evaluate, to_algebra
from repro.expr.predicates import conjuncts_of
from repro.expr.rewrite import iter_nodes
from repro.workloads.random_db import random_database, random_join_query


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    n=st.integers(min_value=3, max_value=5),
)
def test_stacked_deferrals_equivalent(seed, n):
    """Defer up to two randomly chosen conjuncts from different joins;

    the stacked compensation must stay equivalent to the original.
    """
    rng = random.Random(seed)
    query = random_join_query(
        rng, n, outer_probability=0.6, complex_probability=0.7
    )
    candidates = []
    for path, node in iter_nodes(query):
        if isinstance(node, Join):
            for atom in conjuncts_of(node.predicate):
                candidates.append((path, atom))
    if len(candidates) < 2:
        return
    rng.shuffle(candidates)
    picks = []
    used_paths = set()
    for path, atom in candidates:
        if path in used_paths:
            continue
        picks.append((path, atom))
        used_paths.add(path)
        if len(picks) == 2:
            break
    try:
        stacked = defer_conjuncts(query, picks)
    except SplitError:
        return  # unsupported combination: skipping is sound
    names = tuple(sorted(query.base_names))
    for _ in range(3):
        db = random_database(rng, names, null_probability=0.15)
        assert evaluate(stacked, db).same_content(evaluate(query, db)), (
            to_algebra(query)
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_deferring_every_conjunct_of_one_join(seed):
    """Stripping a join's predicate entirely (all conjuncts deferred)

    still compensates exactly.
    """
    rng = random.Random(seed)
    query = random_join_query(
        rng, 3, outer_probability=0.7, complex_probability=1.0
    )
    target = None
    for path, node in iter_nodes(query):
        if isinstance(node, Join) and len(conjuncts_of(node.predicate)) >= 2:
            target = (path, node)
            break
    if target is None:
        return
    path, node = target
    picks = [(path, atom) for atom in conjuncts_of(node.predicate)]
    try:
        stacked = defer_conjuncts(query, picks)
    except SplitError:
        return
    names = tuple(sorted(query.base_names))
    for _ in range(3):
        db = random_database(rng, names, null_probability=0.15)
        assert evaluate(stacked, db).same_content(evaluate(query, db))
