"""Association-tree enumeration tests (Definition 3.2 vs BHAR95a)."""

from repro.core.assoc_tree import (
    AssocLeaf,
    AssocNode,
    association_trees,
    count_association_trees,
)
from repro.expr import BaseRel, inner, left_outer
from repro.expr.predicates import eq
from repro.hypergraph import hypergraph_of
from tests.hypergraph.test_hypergraph import q4_expression


def tree_strings(trees):
    return {str(t) for t in trees}


class TestQ4:
    """Example 3.2: the paper's listed association trees for Q4."""

    def test_paper_trees_are_valid_under_def32(self):
        graph = hypergraph_of(q4_expression())
        got = tree_strings(association_trees(graph, breakup=True))

        def tree(spec):
            """Build the canonical AssocTree from a nested tuple spec."""
            if isinstance(spec, str):
                return AssocLeaf(spec)
            return AssocNode(tree(spec[0]), tree(spec[1]))

        # the trees the paper lists explicitly (canonicalized)
        paper_trees = [
            (("r1", "r2"), (("r4", "r5"), "r3")),   # original shape
            (("r1", "r2"), ("r4", ("r5", "r3"))),   # (r1.r2).(r4.(r5.r3))
            ("r1", (("r2", "r4"), ("r5", "r3"))),   # Q4^2's tree
        ]
        for spec in paper_trees:
            assert str(tree(spec)) in got, f"missing paper tree {spec}"
        # Erratum: the paper also lists (r1.((r2.r5).(r4.r3))), but its
        # subtree (r4.r3) induces a DISCONNECTED sub-hypergraph ({r3,r4}
        # share no edge or sub-edge), violating Definition 3.2 item 2 --
        # almost certainly a typo for the (r2.r5)-first variant.  Our
        # enumerator correctly rejects it.
        erratum = ("r1", (("r2", "r5"), ("r4", "r3")))
        assert str(tree(erratum)) not in got
        # trees pairing r2 with r5 first do exist (h2 broken up):
        assert any("(r2.r5)" in t for t in got)

    def test_breakup_trees_invalid_under_old_definition(self):
        graph = hypergraph_of(q4_expression())
        old = tree_strings(association_trees(graph, breakup=False))
        # trees combining r2 with r4 or r5 alone require breaking h2
        assert "(r1.((r2.r4).(r3.r5)))" not in old
        assert all("(r2.r4)" not in t and "(r2.r5)" not in t for t in old)

    def test_new_definition_strictly_larger(self):
        graph = hypergraph_of(q4_expression())
        assert count_association_trees(graph, True) > count_association_trees(
            graph, False
        )

    def test_count_matches_enumeration(self):
        graph = hypergraph_of(q4_expression())
        for breakup in (True, False):
            assert count_association_trees(graph, breakup) == len(
                association_trees(graph, breakup)
            )


class TestSmallGraphs:
    def test_two_relations(self):
        q = inner(BaseRel("a", ("a_x",)), BaseRel("b", ("b_x",)), eq("a_x", "b_x"))
        graph = hypergraph_of(q)
        trees = association_trees(graph)
        assert tree_strings(trees) == {"(a.b)"}

    def test_three_chain_counts(self):
        a, b, c = (BaseRel(n, (f"{n}_x", f"{n}_y")) for n in "abc")
        q = inner(inner(a, b, eq("a_y", "b_x")), c, eq("b_y", "c_x"))
        graph = hypergraph_of(q)
        # chains of 3: (a.b).c, a.(b.c) -- (a.c) not connected
        assert count_association_trees(graph) == 2

    def test_three_clique_counts(self):
        from repro.expr.predicates import make_conjunction

        a, b, c = (BaseRel(n, (f"{n}_x", f"{n}_y")) for n in "abc")
        q = inner(
            inner(a, b, eq("a_y", "b_x")),
            c,
            make_conjunction([eq("b_y", "c_x"), eq("a_x", "c_y")]),
        )
        graph = hypergraph_of(q)
        # triangle: all three pairings possible
        assert count_association_trees(graph) == 3

    def test_leaves_and_canonical_order(self):
        node = AssocNode(AssocLeaf("b"), AssocLeaf("a"))
        assert str(node) == "(a.b)"
        assert node.leaves == {"a", "b"}

    def test_canonical_order_makes_mirrors_identical(self):
        # (A.B) and (B.A) are the same unordered combination: they
        # must compare and hash equal after canonicalization
        ab = AssocNode(AssocLeaf("a"), AssocLeaf("b"))
        ba = AssocNode(AssocLeaf("b"), AssocLeaf("a"))
        assert ab == ba
        assert hash(ab) == hash(ba)
        assert len({ab, ba}) == 1
        # and recursively, with whole subtrees swapped
        c = AssocLeaf("c")
        outer1 = AssocNode(ab, c)
        outer2 = AssocNode(c, ba)
        assert outer1 == outer2
        assert hash(outer1) == hash(outer2)
        assert str(outer1) == str(outer2) == "((a.b).c)"

    def test_sort_key_matches_string_form(self):
        # the cached structural key reproduces the historical
        # str()-comparison canonical orientation exactly
        node = AssocNode(
            AssocLeaf("a"), AssocNode(AssocLeaf("d"), AssocLeaf("b"))
        )
        assert node.sort_key == str(node)
        # '(' sorts before letters, so the composite child leads --
        # the same orientation the old str()-comparison produced
        assert str(node) == "((b.d).a)"

    def test_directed_edges_do_not_block_association(self):
        """Association trees carry no operators; direction does not

        restrict the tree shapes (operator assignment does).
        """
        a, b = BaseRel("a", ("a_x",)), BaseRel("b", ("b_x",))
        q = left_outer(a, b, eq("a_x", "b_x"))
        graph = hypergraph_of(q)
        assert count_association_trees(graph) == 1
