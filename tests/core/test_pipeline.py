"""End-to-end pipeline tests (Section 4)."""

import random

from repro.core.pipeline import reorder_pipeline
from repro.expr import BaseRel, GroupBy, evaluate, inner, left_outer, to_algebra
from repro.expr.predicates import eq, make_conjunction
from repro.relalg.aggregates import count_star
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))


class TestPipeline:
    def test_plans_equivalent_plain_joins(self):
        q = left_outer(
            inner(R1, R2, eq("r1_a0", "r2_a0")), R3, eq("r2_a1", "r3_a0")
        )
        plans = reorder_pipeline(q, max_plans=300)
        assert len(plans) > 1
        rng = random.Random(81)
        for _ in range(15):
            db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.1)
            want = evaluate(q, db)
            for plan in plans[:50]:
                assert evaluate(plan, db).same_content(want), to_algebra(plan)

    def test_plans_equivalent_with_aggregation(self):
        g = GroupBy(R2, ("r2_a0",), (count_star("cnt"),), "g")
        q = left_outer(R1, g, eq("r1_a0", "r2_a0"))
        plans = reorder_pipeline(q, max_plans=100)
        assert len(plans) >= 1
        rng = random.Random(91)
        for _ in range(20):
            db = random_database(rng, ("r1", "r2"), null_probability=0.1)
            want = evaluate(q, db)
            for plan in plans:
                assert evaluate(plan, db).same_content(want), to_algebra(plan)

    def test_aggregation_query_exposes_join_core(self):
        """After the pipeline, the GP sits above the join core, so the

        core's joins are enumerable.
        """
        g = GroupBy(R2, ("r2_a0",), (count_star("cnt"),), "g")
        q = inner(
            left_outer(R1, g, eq("r1_a0", "r2_a0")),
            R3,
            eq("r1_a1", "r3_a0"),
        )
        plans = reorder_pipeline(q, max_plans=500)
        assert len(plans) > 1
        rng = random.Random(101)
        for _ in range(10):
            db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.1)
            want = evaluate(q, db)
            for plan in plans[:40]:
                assert evaluate(plan, db).same_content(want), to_algebra(plan)
