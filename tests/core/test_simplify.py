"""Tests for outer-join simplification (BHAR95c prerequisite)."""

import random

from repro.core.simplify import simplify_outer_joins
from repro.expr import (
    BaseRel,
    Join,
    JoinKind,
    Select,
    evaluate,
    full_outer,
    inner,
    left_outer,
    right_outer,
)
from repro.expr.predicates import eq
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))

p12 = eq("r1_a0", "r2_a0")
p23 = eq("r2_a1", "r3_a0")
p13 = eq("r1_a1", "r3_a1")


def assert_equiv(original, simplified, names, trials=100, seed=51):
    rng = random.Random(seed)
    for _ in range(trials):
        db = random_database(rng, names, null_probability=0.15)
        assert evaluate(simplified, db).same_content(evaluate(original, db))


def kinds_of(expr):
    return [n.kind for n in expr.walk() if isinstance(n, Join)]


class TestSimplification:
    def test_loj_under_null_intolerant_join_becomes_inner(self):
        """(r1 → r2) ⋈p23 r3 with p23 on r2: padding dies."""
        q = inner(left_outer(R1, R2, p12), R3, p23)
        out = simplify_outer_joins(q)
        assert kinds_of(out) == [JoinKind.INNER, JoinKind.INNER]
        assert_equiv(q, out, ("r1", "r2", "r3"))

    def test_loj_predicate_on_preserved_side_stays(self):
        """(r1 → r2) ⋈p13 r3 with p13 on r1 only: padding survives."""
        q = inner(left_outer(R1, R2, p12), R3, p13)
        out = simplify_outer_joins(q)
        assert JoinKind.LEFT in kinds_of(out)
        assert_equiv(q, out, ("r1", "r2", "r3"))

    def test_foj_degrades_one_side(self):
        """(r1 ↔ r2) ⋈p23 r3: r2-nulls die -> right outer join."""
        q = inner(full_outer(R1, R2, p12), R3, p23)
        out = simplify_outer_joins(q)
        assert JoinKind.FULL not in kinds_of(out)
        assert_equiv(q, out, ("r1", "r2", "r3"))

    def test_foj_degrades_both_sides(self):
        from repro.expr.predicates import make_conjunction

        q = inner(
            full_outer(R1, R2, p12),
            R3,
            make_conjunction([p23, p13]),
        )
        out = simplify_outer_joins(q)
        assert kinds_of(out) == [JoinKind.INNER, JoinKind.INNER]
        assert_equiv(q, out, ("r1", "r2", "r3"))

    def test_select_above_simplifies(self):
        q = Select(left_outer(R1, R2, p12), eq("r2_a0", "r2_a1"))
        out = simplify_outer_joins(q)
        assert kinds_of(out) == [JoinKind.INNER]
        assert_equiv(q, out, ("r1", "r2"))

    def test_preserving_ancestor_does_not_simplify(self):
        """r3 → (r1 → r2): the outer LOJ preserves the side the inner

        padding lives on -- no simplification.
        """
        q = left_outer(R3, left_outer(R1, R2, p12), p13)
        out = simplify_outer_joins(q)
        assert out == q
        assert_equiv(q, out, ("r1", "r2", "r3"))

    def test_nested_fixpoint(self):
        """Simplifying one join can enable simplifying another."""
        q = inner(
            left_outer(left_outer(R1, R2, p12), R3, p23),
            BaseRel("r4", ("r4_a0", "r4_a1")),
            eq("r3_a1", "r4_a0"),
        )
        out = simplify_outer_joins(q)
        assert kinds_of(out) == [JoinKind.INNER] * 3
        assert_equiv(q, out, ("r1", "r2", "r3", "r4"))

    def test_right_outer_join_simplified(self):
        q = inner(right_outer(R1, R2, p12), R3, p13)
        out = simplify_outer_joins(q)
        assert JoinKind.RIGHT not in kinds_of(out)
        assert_equiv(q, out, ("r1", "r2", "r3"))
