"""Theorem 1's hypergraph formula vs the validated tree-walk machinery.

For root-position complex predicates (the theorem's premise), the
preserved sets computed from Definition 3.3's conflict machinery must
coincide with the groups `defer_conjunct` derives by walking the tree
-- and both must be *correct* on data, which the split tests already
guarantee for the walk.
"""

import random

import pytest

from repro.core.split import defer_conjunct
from repro.core.theorem1 import Theorem1Error, theorem1_preserved_sets
from repro.expr import (
    BaseRel,
    evaluate,
    full_outer,
    inner,
    left_outer,
)
from repro.expr.predicates import eq, make_conjunction
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))
R4 = BaseRel("r4", ("r4_a0", "r4_a1"))

p12 = eq("r1_a0", "r2_a0")
p13 = eq("r1_a1", "r3_a1")
p23 = eq("r2_a1", "r3_a0")
p34 = eq("r3_a1", "r4_a0")
p24 = eq("r2_a0", "r4_a1")


def groups_of_walk(query, conjunct):
    result = defer_conjunct(query, (), conjunct)
    return tuple(sorted(result.groups, key=lambda g: sorted(g)))


CASES = [
    # (label, query builder, deferred conjunct)
    (
        "loj root, complex over join",
        lambda: left_outer(
            inner(R1, R2, p12), R3, make_conjunction([p13, p23])
        ),
        p13,
    ),
    (
        "foj root, complex over join (identity 4 shape)",
        lambda: full_outer(
            inner(R1, R2, p12), R3, make_conjunction([p13, p23])
        ),
        p13,
    ),
    (
        "inner root, complex predicate",
        lambda: inner(inner(R1, R2, p12), R3, make_conjunction([p13, p23])),
        p13,
    ),
    (
        "loj root over FOJ inside null hypernode",
        lambda: left_outer(
            R1, full_outer(R2, R3, p23), make_conjunction([p12, p13])
        ),
        p13,
    ),
    (
        "loj root with a FOJ conflict beyond the hypernode",
        lambda: left_outer(
            inner(full_outer(R3, R4, p34), R2, p23),
            R1,
            make_conjunction([eq("r2_a0", "r1_a0"), eq("r3_a1", "r1_a1")]),
        ),
        eq("r3_a1", "r1_a1"),
    ),
]


class TestAgreement:
    @pytest.mark.parametrize("label,builder,conjunct", CASES)
    def test_formula_matches_walk(self, label, builder, conjunct):
        query = builder()
        assert theorem1_preserved_sets(query) == groups_of_walk(
            query, conjunct
        ), label

    @pytest.mark.parametrize("label,builder,conjunct", CASES)
    def test_both_are_correct_on_data(self, label, builder, conjunct):
        query = builder()
        deferred = defer_conjunct(query, (), conjunct).expr
        rng = random.Random(hash(label) % 10_000)
        names = tuple(sorted(query.base_names))
        for _ in range(60):
            db = random_database(rng, names, null_probability=0.15)
            assert evaluate(deferred, db).same_content(evaluate(query, db))


class TestScope:
    def test_non_join_rejected(self):
        with pytest.raises(Theorem1Error):
            theorem1_preserved_sets(R1)

    def test_foj_gives_both_components(self):
        query = full_outer(
            inner(R1, R2, p12), R3, make_conjunction([p13, p23])
        )
        groups = theorem1_preserved_sets(query)
        assert frozenset({"r1", "r2"}) in groups
        assert frozenset({"r3"}) in groups
