"""Tests for the rewrite-closure plan enumerator.

The load-bearing check: every plan in the closure evaluates to the
same bag of rows as the seed, on randomized databases with NULLs and
empty relations.
"""

import random

import pytest

from repro.core.transform import (
    absorb_generalized_join,
    assoc_inner,
    commute,
    enumerate_plans,
    foj_assoc,
    generalized_join,
    loj_assoc,
    pull_join_into_loj,
    push_loj_out_of_join,
)
from repro.expr import (
    BaseRel,
    GenSelect,
    Join,
    JoinKind,
    evaluate,
    full_outer,
    inner,
    left_outer,
    to_algebra,
)
from repro.expr.predicates import eq, make_conjunction
from repro.workloads.random_db import random_database

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))

p12 = eq("r1_a0", "r2_a0")
p13 = eq("r1_a1", "r3_a1")
p23 = eq("r2_a1", "r3_a0")


def assert_closure_equivalent(seed, names, trials=40, seed_val=31, max_plans=400):
    plans = enumerate_plans(seed, max_plans=max_plans)
    assert seed in plans
    rng = random.Random(seed_val)
    dbs = [
        random_database(rng, names, null_probability=0.15) for _ in range(trials)
    ]
    references = [evaluate(seed, db) for db in dbs]
    for plan in plans:
        for db, want in zip(dbs, references):
            got = evaluate(plan, db)
            assert got.same_content(want), (
                f"plan not equivalent to seed:\n{to_algebra(plan)}\n"
                f"want:\n{want.to_text()}\ngot:\n{got.to_text()}"
            )
    return plans


class TestLocalRules:
    def test_commute_inner_and_full(self):
        j = inner(R1, R2, p12)
        (out,) = commute(j)
        assert out.left is R2 and out.kind is JoinKind.INNER
        f = full_outer(R1, R2, p12)
        (out,) = commute(f)
        assert out.kind is JoinKind.FULL

    def test_commute_mirrors_outer(self):
        j = left_outer(R1, R2, p12)
        (out,) = commute(j)
        assert out.kind is JoinKind.RIGHT and out.left is R2

    def test_assoc_inner_redistributes_atoms(self):
        j = inner(inner(R1, R2, p12), R3, make_conjunction([p13, p23]))
        outs = list(assoc_inner(j))
        assert outs, "expected a reassociation"
        for out in outs:
            assert out.left is R1

    def test_generalized_join_fires_on_blocked_shape(self):
        q = left_outer(R1, inner(R2, R3, p23), p12)
        outs = list(generalized_join(q))
        assert len(outs) == 1
        gs = outs[0]
        assert isinstance(gs, GenSelect)
        assert gs.predicate == p23
        # and the inverse restores the original
        restored = list(absorb_generalized_join(gs))
        assert q in restored

    def test_loj_assoc_both_directions(self):
        q = left_outer(left_outer(R1, R2, p12), R3, p23)
        outs = list(loj_assoc(q))
        assert any(
            isinstance(o.right, Join) and o.right.kind is JoinKind.LEFT
            for o in outs
        )


class TestGeneralizedJoinFull:
    def test_fires_and_is_equivalent(self):
        from repro.core.transform import generalized_join_full

        q = full_outer(R1, inner(R2, R3, p23), p12)
        outs = list(generalized_join_full(q))
        assert len(outs) == 1 and isinstance(outs[0], GenSelect)
        rng = random.Random(3)
        for _ in range(80):
            db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.15)
            assert evaluate(outs[0], db).same_content(evaluate(q, db))

    def test_blocked_foj_over_join_reorderable(self):
        """r1 ↔ (r2 ⋈ r3): the FOJ variant opens the closure."""
        q = full_outer(R1, inner(R2, R3, p23), p12)
        plans = assert_closure_equivalent(q, ("r1", "r2", "r3"), max_plans=200)
        assert any(isinstance(p, GenSelect) for p in plans)


class TestHoistGenSelect:
    def test_hoists_and_is_equivalent(self):
        from repro.core.split import defer_conjunct
        from repro.core.transform import hoist_genselect

        inner_q = left_outer(
            R2, R3, make_conjunction([p23, eq("r2_a0", "r3_a1")])
        )
        gs = defer_conjunct(inner_q, (), eq("r2_a0", "r3_a1")).expr
        q = inner(gs, R1, eq("r2_a0", "r1_a0"))
        outs = list(hoist_genselect(q))
        assert outs and isinstance(outs[0], GenSelect)
        original = inner(inner_q, R1, eq("r2_a0", "r1_a0"))
        rng = random.Random(4)
        for _ in range(80):
            db = random_database(rng, ("r1", "r2", "r3"), null_probability=0.15)
            want = evaluate(original, db)
            assert evaluate(outs[0], db).same_content(want)
            assert evaluate(q, db).same_content(want)


class TestClosureEquivalence:
    def test_inner_chain(self):
        q = inner(inner(R1, R2, p12), R3, p23)
        plans = assert_closure_equivalent(q, ("r1", "r2", "r3"))
        # chain of three: both association orders reachable (x2 commutes)
        assert len(plans) >= 8

    def test_loj_chain(self):
        q = left_outer(left_outer(R1, R2, p12), R3, p23)
        assert_closure_equivalent(q, ("r1", "r2", "r3"))

    def test_blocked_loj_over_join(self):
        """r1 →p12 (r2 ⋈p23 r3): MGOJ-style plans must be in the closure

        and equivalent (this is the shape plain reordering cannot touch).
        """
        q = left_outer(R1, inner(R2, R3, p23), p12)
        plans = assert_closure_equivalent(q, ("r1", "r2", "r3"))
        assert any(isinstance(p, GenSelect) for p in plans)

    def test_foj_chain(self):
        q = full_outer(full_outer(R1, R2, p12), R3, p23)
        assert_closure_equivalent(q, ("r1", "r2", "r3"))

    def test_complex_predicate_loj(self):
        """(r1 → r2) →^{p13∧p23} r3: deferral breaks the complex

        predicate; the closure contains reorderings impossible without GS.
        """
        q = left_outer(left_outer(R1, R2, p12), R3, make_conjunction([p13, p23]))
        plans = assert_closure_equivalent(q, ("r1", "r2", "r3"))
        assert any(isinstance(p, GenSelect) for p in plans)

    def test_mixed_kinds(self):
        q = inner(left_outer(R1, R2, p12), R3, p13)
        assert_closure_equivalent(q, ("r1", "r2", "r3"))


class TestClosureCompleteness:
    def test_closure_realizes_exactly_the_def32_space_on_q4(self):
        """Every Definition 3.2 association tree of Q4 is realized by

        some operator-assigned plan in the closure, and the closure
        produces no combination order outside the definition -- the
        reproduction's completeness evidence for the paper's headline
        claim ("complete enumeration").
        """
        from repro.core.assoc_tree import (
            AssocLeaf,
            AssocNode,
            association_trees,
        )
        from repro.hypergraph import hypergraph_of
        from tests.hypergraph.test_hypergraph import q4_expression

        def tree_of_plan(expr):
            if isinstance(expr, Join):
                return AssocNode(tree_of_plan(expr.left), tree_of_plan(expr.right))
            if isinstance(expr, BaseRel):
                return AssocLeaf(expr.name)
            return tree_of_plan(expr.children()[0])

        q4 = q4_expression()
        want = {
            str(t) for t in association_trees(hypergraph_of(q4), breakup=True)
        }
        plans = enumerate_plans(q4, max_plans=20000)
        got = {str(tree_of_plan(p)) for p in plans}
        assert got == want


class TestClosureOnQ4:
    def test_q4_closure_contains_breakup_plans(self):
        """Q4's closure reaches plans joining r2 with r4 (or r5) before

        the rest -- the paper's headline capability.
        """
        from tests.hypergraph.test_hypergraph import q4_expression

        q4 = q4_expression()
        plans = enumerate_plans(q4, max_plans=3000)

        def joins_pair_first(plan, pair):
            for node in plan.walk():
                if isinstance(node, Join):
                    names = node.left.base_names | node.right.base_names
                    if names == pair:
                        return True
            return False

        assert any(joins_pair_first(p, frozenset({"r2", "r4"})) for p in plans)
        assert any(joins_pair_first(p, frozenset({"r2", "r5"})) for p in plans)

    def test_q4_closure_equivalence_sampled(self):
        from tests.hypergraph.test_hypergraph import q4_expression

        q4 = q4_expression()
        plans = enumerate_plans(q4, max_plans=800)
        rng = random.Random(7)
        sample = rng.sample(plans, min(60, len(plans)))
        names = ("r1", "r2", "r3", "r4", "r5")
        for trial in range(12):
            db = _q4_database(rng)
            want = evaluate(q4, db)
            for plan in sample:
                got = evaluate(plan, db)
                assert got.same_content(want), to_algebra(plan)


def _q4_database(rng):
    """Random database matching q4_expression's schemas."""
    from repro.expr import Database
    from repro.relalg import Relation

    def rows(attrs, n):
        return [
            tuple(rng.choice((1, 2)) for _ in attrs) for _ in range(n)
        ]

    schemas = {
        "r1": ["a1"],
        "r2": ["a2", "b2"],
        "r3": ["a3"],
        "r4": ["a4"],
        "r5": ["a5", "b5", "c5"],
    }
    db = Database()
    for name, attrs in schemas.items():
        db.add(name, Relation.base(name, attrs, rows(attrs, rng.randint(0, 3))))
    return db
