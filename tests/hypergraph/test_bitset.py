"""The node-index (bitset) layer must agree with the name-set API."""

from itertools import chain, combinations

from repro.expr import BaseRel, inner, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import hypergraph_of
from repro.hypergraph.conflicts import _two_components, ccoj, conf


def q4_expression():
    r1 = BaseRel("r1", ("a1",))
    r2 = BaseRel("r2", ("a2", "b2"))
    r3 = BaseRel("r3", ("a3",))
    r4 = BaseRel("r4", ("a4",))
    r5 = BaseRel("r5", ("a5", "b5", "c5"))
    core = inner(inner(r4, r5, eq("a4", "a5")), r3, eq("a3", "b5"))
    return left_outer(
        r1,
        left_outer(
            r2, core, make_conjunction([eq("a2", "a4"), eq("b2", "c5")])
        ),
        eq("a1", "a2"),
    )


def all_subsets(names):
    names = sorted(names)
    return chain.from_iterable(
        combinations(names, k) for k in range(1, len(names) + 1)
    )


class TestMaskRoundtrip:
    def test_mask_of_names_of(self):
        graph = hypergraph_of(q4_expression())
        for combo in all_subsets(graph.nodes):
            subset = frozenset(combo)
            mask = graph.mask_of(subset)
            assert graph.names_of(mask) == subset

    def test_node_order_is_sorted(self):
        graph = hypergraph_of(q4_expression())
        assert list(graph.node_order) == sorted(graph.nodes)
        assert graph.all_mask == (1 << len(graph.nodes)) - 1

    def test_edge_masks_match_hypernodes(self):
        graph = hypergraph_of(q4_expression())
        for edge, left, right in graph.edge_masks:
            assert graph.names_of(left) == edge.left
            assert graph.names_of(right) == edge.right


class TestMaskConnectivity:
    def test_agrees_with_name_level_over_all_subsets(self):
        graph = hypergraph_of(q4_expression())
        for combo in all_subsets(graph.nodes):
            subset = frozenset(combo)
            mask = graph.mask_of(subset)
            comps = graph.components(within=subset)
            assert graph.is_connected_mask(mask) == (len(comps) <= 1)

    def test_broken_up_subedge_connects(self):
        # footnote 6: h2 = <{r2},{r4,r5}> links r2 with r4 alone
        graph = hypergraph_of(q4_expression())
        assert graph.is_connected_mask(graph.mask_of({"r2", "r4"}))
        # r1 and r3 share no (sub-)edge
        assert not graph.is_connected_mask(graph.mask_of({"r1", "r3"}))

    def test_components_ordered_and_disjoint(self):
        graph = hypergraph_of(q4_expression())
        comps = graph.components(within=frozenset({"r1", "r3", "r4", "r5"}))
        assert frozenset({"r1"}) in comps
        assert frozenset({"r3", "r4", "r5"}) in comps

    def test_has_crossing_mask_matches_crossing_edges(self):
        graph = hypergraph_of(q4_expression())
        names = sorted(graph.nodes)
        for left_combo in all_subsets(names):
            left = frozenset(left_combo)
            right = frozenset(names) - left
            if not right:
                continue
            expected = bool(graph.crossing_edges(left, right))
            got = graph.has_crossing_mask(
                graph.mask_of(left), graph.mask_of(right)
            )
            assert got == expected, (left, right)


class TestAnalysisMemoization:
    def test_two_components_cached_per_edge(self):
        graph = hypergraph_of(q4_expression())
        edge = graph.directed_edges[0]
        first = _two_components(graph, edge)
        assert _two_components(graph, edge) is first
        assert ("two_comps", edge.eid) in graph._analysis

    def test_conf_and_ccoj_cached(self):
        graph = hypergraph_of(q4_expression())
        join_edge = next(e for e in graph.edges if e.undirected)
        assert ccoj(graph, join_edge) is ccoj(graph, join_edge)
        directed = graph.directed_edges[0]
        assert conf(graph, directed) is conf(graph, directed)

    def test_caches_do_not_leak_between_graphs(self):
        a = hypergraph_of(q4_expression())
        b = hypergraph_of(q4_expression())
        a.is_connected_mask(a.mask_of({"r2", "r4"}))
        assert b._analysis == {}
