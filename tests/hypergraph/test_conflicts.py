"""Tests for pres / pres_away / ccoj / conf (Definition 3.3)."""

import pytest

from repro.expr import BaseRel, full_outer, inner, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import (
    HypergraphError,
    ccoj,
    conf,
    hypergraph_of,
    pres,
    pres_away,
    pres_sides,
)

R1 = BaseRel("r1", ("a1", "b1"))
R2 = BaseRel("r2", ("a2", "b2"))
R3 = BaseRel("r3", ("a3", "b3"))
R4 = BaseRel("r4", ("a4", "b4"))


def find(graph, names):
    names = frozenset(names)
    return next(e for e in graph.edges if e.nodes == names)


class TestPres:
    def test_q4_pres_h2_is_r1_r2(self):
        """The paper: 'preserved set for hyperedge h2 is {r1, r2} in Q4'."""
        from tests.hypergraph.test_hypergraph import q4_expression

        graph = hypergraph_of(q4_expression())
        h2 = next(e for e in graph.edges if e.complex)
        assert pres(graph, h2) == {"r1", "r2"}

    def test_pres_extends_through_joins_above(self):
        # (r1 ->p12 (r2 join r3)) join p14 r4: pres of the LOJ = {r1, r4}
        q = inner(
            left_outer(R1, inner(R2, R3, eq("b2", "a3")), eq("a1", "a2")),
            R4,
            eq("b1", "a4"),
        )
        graph = hypergraph_of(q)
        loj = next(e for e in graph.edges if e.directed)
        assert pres(graph, loj) == {"r1", "r4"}

    def test_pres_requires_directed(self):
        graph = hypergraph_of(inner(R1, R2, eq("a1", "a2")))
        with pytest.raises(HypergraphError):
            pres(graph, graph.edges[0])

    def test_pres_sides_of_foj(self):
        q = full_outer(inner(R1, R2, eq("a1", "a2")), R3, eq("b2", "a3"))
        graph = hypergraph_of(q)
        foj = next(e for e in graph.edges if e.bidirected)
        left, right = pres_sides(graph, foj)
        assert {left, right} == {frozenset({"r1", "r2"}), frozenset({"r3"})}


class TestPresAway:
    def test_away_from_complex_edge(self):
        # (r1 ->complex (r2 join r3)) <->p34 r4
        q = full_outer(
            left_outer(
                R1,
                inner(R2, R3, eq("b2", "a3")),
                make_conjunction([eq("a1", "a2"), eq("b1", "b3")]),
            ),
            R4,
            eq("a3", "a4"),
        )
        graph = hypergraph_of(q)
        foj = next(e for e in graph.edges if e.bidirected)
        h0 = next(e for e in graph.edges if e.complex)
        assert pres_away(graph, foj, h0) == {"r4"}

    def test_away_for_directed_is_pres(self):
        q = inner(left_outer(R1, R2, eq("a1", "a2")), R3, eq("b2", "a3"))
        graph = hypergraph_of(q)
        loj = next(e for e in graph.edges if e.directed)
        other = next(e for e in graph.edges if e.undirected)
        assert pres_away(graph, loj, other) == pres(graph, loj) == {"r1"}


class TestCcoj:
    def test_join_under_outer_join_null_side(self):
        # r1 ->p12 (r2 join p23 r3): the join conflicts with the LOJ
        q = left_outer(R1, inner(R2, R3, eq("b2", "a3")), eq("a1", "a2"))
        graph = hypergraph_of(q)
        join_edge = next(e for e in graph.edges if e.undirected)
        (closest,) = ccoj(graph, join_edge)
        assert closest.directed

    def test_join_on_preserved_side_has_no_ccoj(self):
        # (r1 join p12 r2) ->p23 r3
        q = left_outer(inner(R1, R2, eq("a1", "a2")), R3, eq("b2", "a3"))
        graph = hypergraph_of(q)
        join_edge = next(e for e in graph.edges if e.undirected)
        assert ccoj(graph, join_edge) == ()

    def test_nested_picks_closest(self):
        # r1 -> (r2 -> (r3 join r4)): join's ccoj is the inner LOJ
        q = left_outer(
            R1,
            left_outer(R2, inner(R3, R4, eq("a3", "a4")), eq("a2", "a3")),
            eq("a1", "a2"),
        )
        graph = hypergraph_of(q)
        join_edge = next(e for e in graph.edges if e.undirected)
        (closest,) = ccoj(graph, join_edge)
        assert closest.nodes == {"r2", "r3"}


class TestConf:
    def test_bidirected_has_empty_conf(self):
        q = full_outer(R1, R2, eq("a1", "a2"))
        graph = hypergraph_of(q)
        assert conf(graph, graph.edges[0]) == ()

    def test_directed_conflicts_with_foj_beyond_hypernode(self):
        # (r1 ->p12^p13 (r2 join r3)) <->p34 r4: the FOJ conflicts
        q = full_outer(
            left_outer(
                R1,
                inner(R2, R3, eq("b2", "a3")),
                make_conjunction([eq("a1", "a2"), eq("b1", "b3")]),
            ),
            R4,
            eq("a3", "a4"),
        )
        graph = hypergraph_of(q)
        h0 = next(e for e in graph.edges if e.complex)
        conflicts = conf(graph, h0)
        assert [c.bidirected for c in conflicts] == [True]

    def test_foj_inside_null_hypernode_does_not_conflict(self):
        # r1 ->p12^p13 (r2 <->p23 r3): h23 wholly inside the null hypernode
        q = left_outer(
            R1,
            full_outer(R2, R3, eq("b2", "a3")),
            make_conjunction([eq("a1", "a2"), eq("b1", "b3")]),
        )
        graph = hypergraph_of(q)
        h0 = next(e for e in graph.edges if e.complex)
        assert conf(graph, h0) == ()

    def test_join_inherits_conf_through_ccoj(self):
        # (r1 ->p12 (r2 join p23 r3)) <-> r4: join edge inherits {LOJ's conf} via ccoj
        q = full_outer(
            left_outer(R1, inner(R2, R3, eq("b2", "a3")), eq("a1", "a2")),
            R4,
            eq("a3", "a4"),
        )
        graph = hypergraph_of(q)
        join_edge = next(e for e in graph.edges if e.undirected)
        conflicts = conf(graph, join_edge)
        # ccoj is the LOJ; conf(LOJ) contains the FOJ
        kinds = sorted(("dir" if c.directed else "bi") for c in conflicts)
        assert kinds == ["bi", "dir"]
