"""Remaining hypergraph and rendering coverage."""

from repro.expr import BaseRel, full_outer, inner, left_outer, to_algebra
from repro.expr.display import to_tree
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import hypergraph_of

A = BaseRel("a", ("ax", "ay"))
B = BaseRel("b", ("bx", "by"))
C = BaseRel("c", ("cx", "cy"))


class TestHypergraphText:
    def test_to_text_lists_edges(self):
        q = left_outer(inner(A, B, eq("ax", "bx")), C, eq("by", "cx"))
        text = hypergraph_of(q).to_text()
        assert "nodes: a, b, c" in text
        assert "--" in text and "->" in text

    def test_edge_str_bidirected(self):
        q = full_outer(A, B, eq("ax", "bx"))
        (edge,) = hypergraph_of(q).edges
        assert "<->" in str(edge)

    def test_crossing_edges_both_orientations(self):
        """An edge whose hypernodes straddle both sides reports both

        sub-edge orientations.
        """
        q = left_outer(
            inner(A, B, eq("ax", "bx")),
            C,
            make_conjunction([eq("ay", "cx"), eq("by", "cy")]),
        )
        graph = hypergraph_of(q)
        # split {a, c} | {b}: the complex edge <{a,b},{c}> straddles
        crossing = graph.crossing_edges(frozenset({"a", "c"}), frozenset({"b"}))
        assert crossing  # the a-b inner edge crosses at least


class TestRendering:
    def test_algebra_round_trips_symbols(self):
        q = full_outer(left_outer(A, B, eq("ax", "bx")), C, eq("by", "cx"))
        s = to_algebra(q)
        assert "→" in s and "↔" in s

    def test_tree_indentation_depth(self):
        q = inner(inner(A, B, eq("ax", "bx")), C, eq("by", "cx"))
        lines = to_tree(q).splitlines()
        assert lines[0].startswith("⋈")
        assert any(line.startswith("    ") for line in lines)

    def test_relation_text_with_virtuals(self):
        from repro.relalg import Relation

        r = Relation.base("t", ["a"], [(1,)])
        text = r.to_text(include_virtual=True)
        assert "#t" in text
