"""Tests for the hypergraph model, anchored on the paper's Figure 1."""

import pytest

from repro.expr import BaseRel, JoinKind, full_outer, inner, left_outer
from repro.expr.predicates import TRUE, eq, make_conjunction
from repro.hypergraph import Hyperedge, Hypergraph, HypergraphError, hypergraph_of


def q4_expression():
    """Example 3.2:  Q4 = r1 ->p12 (r2 ->p24^p25 ((r4 join p45 r5) join p35 r3))."""
    r1 = BaseRel("r1", ("a1",))
    r2 = BaseRel("r2", ("a2", "b2"))
    r3 = BaseRel("r3", ("a3",))
    r4 = BaseRel("r4", ("a4",))
    r5 = BaseRel("r5", ("a5", "b5", "c5"))
    p45 = eq("a4", "a5")
    p35 = eq("a3", "b5")
    p24 = eq("a2", "a4")
    p25 = eq("b2", "c5")
    p12 = eq("a1", "a2")
    core = inner(inner(r4, r5, p45), r3, p35)
    return left_outer(r1, left_outer(r2, core, make_conjunction([p24, p25])), p12)


class TestHyperedge:
    def test_validation(self):
        with pytest.raises(HypergraphError):
            Hyperedge("h", frozenset(), frozenset({"a"}), JoinKind.INNER)
        with pytest.raises(HypergraphError):
            Hyperedge("h", frozenset({"a"}), frozenset({"a"}), JoinKind.INNER)
        with pytest.raises(HypergraphError):
            Hyperedge("h", frozenset({"a"}), frozenset({"b"}), JoinKind.RIGHT)

    def test_classification(self):
        e = Hyperedge("h", frozenset({"a"}), frozenset({"b", "c"}), JoinKind.LEFT)
        assert e.directed and not e.bidirected and not e.undirected
        assert e.complex and not e.simple
        s = Hyperedge("h2", frozenset({"a"}), frozenset({"b"}), JoinKind.FULL)
        assert s.simple and s.bidirected


class TestBuildQ4:
    """Figure 1: H = <{r1..r5}, {h1, h2, h3, h4}>."""

    def test_nodes_and_edge_count(self):
        graph = hypergraph_of(q4_expression())
        assert graph.nodes == {"r1", "r2", "r3", "r4", "r5"}
        assert len(graph.edges) == 4

    def test_hypernodes_match_figure(self):
        graph = hypergraph_of(q4_expression())
        by_sides = {
            (frozenset(e.left), frozenset(e.right)): e for e in graph.edges
        }
        # h1: r1 -> r2 (directed)
        h1 = by_sides[(frozenset({"r1"}), frozenset({"r2"}))]
        assert h1.directed
        # h2: r2 -> {r4, r5} (directed, complex)
        h2 = by_sides[(frozenset({"r2"}), frozenset({"r4", "r5"}))]
        assert h2.directed and h2.complex
        # h3: {r3} -- {r5} and h4: {r4} -- {r5} undirected
        h3 = by_sides.get((frozenset({"r5"}), frozenset({"r3"}))) or by_sides[
            (frozenset({"r3"}), frozenset({"r5"}))
        ]
        assert h3.undirected
        h4 = by_sides[(frozenset({"r4"}), frozenset({"r5"}))]
        assert h4.undirected

    def test_right_outer_join_normalized(self):
        r1 = BaseRel("r1", ("a1",))
        r2 = BaseRel("r2", ("a2",))
        from repro.expr import right_outer

        graph = hypergraph_of(right_outer(r1, r2, eq("a1", "a2")))
        (edge,) = graph.edges
        assert edge.kind is JoinKind.LEFT
        assert edge.left == {"r2"} and edge.right == {"r1"}

    def test_cartesian_product_edge(self):
        r1 = BaseRel("r1", ("a1",))
        r2 = BaseRel("r2", ("a2",))
        graph = hypergraph_of(inner(r1, r2, TRUE))
        (edge,) = graph.edges
        assert edge.left == {"r1"} and edge.right == {"r2"}


class TestConnectivity:
    def test_q4_connected_and_acyclic_components(self):
        graph = hypergraph_of(q4_expression())
        assert graph.is_connected()

    def test_component_split_by_edge_removal(self):
        graph = hypergraph_of(q4_expression())
        h2 = next(e for e in graph.edges if e.complex)
        comps = graph.components(removed=frozenset({h2.eid}))
        assert sorted(map(sorted, comps)) == [["r1", "r2"], ["r3", "r4", "r5"]]

    def test_induced_subhypergraph_breaks_edges(self):
        graph = hypergraph_of(q4_expression())
        sub = graph.induced({"r2", "r4"})
        # h2 restricted to <{r2},{r4}> plus h4 loses r5 side -> dropped
        assert sub.nodes == {"r2", "r4"}
        assert len(sub.edges) == 1
        (edge,) = sub.edges
        assert edge.left == {"r2"} and edge.right == {"r4"}

    def test_induced_connectivity_footnote6(self):
        graph = hypergraph_of(q4_expression())
        # {r2, r4} is connected through the broken-up h2
        assert graph.is_connected(within=frozenset({"r2", "r4"}))
        assert graph.is_connected(within=frozenset({"r2", "r5"}))
        # {r1, r3} has no connecting (sub-)edge
        assert not graph.is_connected(within=frozenset({"r1", "r3"}))

    def test_component_of(self):
        graph = hypergraph_of(q4_expression())
        h2 = next(e for e in graph.edges if e.complex)
        comp = graph.component_of({"r1"}, removed=frozenset({h2.eid}))
        assert comp == {"r1", "r2"}


class TestCrossingEdges:
    def test_whole_edge(self):
        graph = hypergraph_of(q4_expression())
        crossing = graph.crossing_edges(frozenset({"r1"}), frozenset({"r2"}))
        assert len(crossing) == 1
        edge, lp, rp = crossing[0]
        assert lp == {"r1"} and rp == {"r2"}

    def test_paper_breakup_example(self):
        """Tree (r1.((r2.r4).(r5.r3))): node ((r2.r4),(r5.r3)) uses the

        sub-edge <{r2},{r5}> of h2 and whole h4/h3 edges.
        """
        graph = hypergraph_of(q4_expression())
        left = frozenset({"r2", "r4"})
        right = frozenset({"r5", "r3"})
        crossing = graph.crossing_edges(left, right)
        parts = {(tuple(sorted(lp)), tuple(sorted(rp))) for _, lp, rp in crossing}
        assert (("r2",), ("r5",)) in parts  # broken-up h2
        assert (("r4",), ("r5",)) in parts  # h4 whole
