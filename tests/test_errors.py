"""The unified exception taxonomy (repro.errors).

Every public error class must be catchable via the ``ReproError``
root, keep its historical ``ValueError`` lineage, and sit in the
correct family (user input vs optimizer internal vs budget).
"""

import pytest

import repro
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    OptimizerInternalError,
    PlanBudgetExceeded,
    ReproError,
    RowBudgetExceeded,
    UserInputError,
    VerificationFailed,
)

USER_ERRORS = [
    repro.SqlLexError,
    repro.SqlParseError,
    repro.SqlTranslationError,
    repro.SchemaError,
    repro.ExprError,
]

OPTIMIZER_ERRORS = [
    repro.DpError,
    repro.HypergraphError,
    repro.Theorem1Error,
    repro.SplitError,
    repro.PullUpError,
]

BUDGET_ERRORS = [DeadlineExceeded, PlanBudgetExceeded, RowBudgetExceeded]


class TestTaxonomy:
    @pytest.mark.parametrize("cls", USER_ERRORS + OPTIMIZER_ERRORS)
    def test_every_public_error_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    @pytest.mark.parametrize("cls", USER_ERRORS + OPTIMIZER_ERRORS)
    def test_value_error_lineage_is_preserved(self, cls):
        # pre-existing `except ValueError` call sites must keep working
        assert issubclass(cls, ValueError)

    @pytest.mark.parametrize("cls", USER_ERRORS)
    def test_user_errors_family(self, cls):
        assert issubclass(cls, UserInputError)
        assert not issubclass(cls, OptimizerInternalError)

    @pytest.mark.parametrize("cls", OPTIMIZER_ERRORS)
    def test_optimizer_errors_family(self, cls):
        assert issubclass(cls, OptimizerInternalError)
        assert not issubclass(cls, UserInputError)

    @pytest.mark.parametrize("cls", BUDGET_ERRORS)
    def test_budget_errors_family(self, cls):
        assert issubclass(cls, BudgetExceeded)
        assert issubclass(cls, ReproError)
        # budget exhaustion is not a ValueError: nothing is *wrong*
        assert not issubclass(cls, ValueError)

    def test_verification_failed_is_a_repro_error(self):
        assert issubclass(VerificationFailed, ReproError)

    def test_all_public_errors_reexported_from_repro(self):
        for name in (
            "ReproError",
            "UserInputError",
            "OptimizerInternalError",
            "BudgetExceeded",
            "DeadlineExceeded",
            "PlanBudgetExceeded",
            "RowBudgetExceeded",
            "VerificationFailed",
            "ExprError",
            "SchemaError",
            "SqlLexError",
            "SqlParseError",
            "SqlTranslationError",
            "HypergraphError",
            "SplitError",
            "Theorem1Error",
            "PullUpError",
            "DpError",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name


class TestRootCatchesRaises:
    """Actually raised errors land in a single ``except ReproError``."""

    def test_sql_parse_error(self):
        from repro.sql import parse_statements

        with pytest.raises(ReproError):
            parse_statements("select from where;")

    def test_lex_error(self):
        from repro.sql.lexer import tokenize

        with pytest.raises(ReproError):
            tokenize("select @ from t")

    def test_dp_error(self):
        from repro.expr.nodes import BaseRel, Join, JoinKind
        from repro.expr.predicates import eq
        from repro.optimizer import Statistics
        from repro.optimizer.dp import dp_join_order

        loj = Join(
            JoinKind.LEFT,
            BaseRel("r1", ("a",)),
            BaseRel("r2", ("b",)),
            eq("a", "b"),
        )
        with pytest.raises(ReproError):
            dp_join_order(loj, Statistics())

    def test_budget_exceeded_structured_dict(self):
        exc = PlanBudgetExceeded(10, 11, "enumerate_plans")
        record = exc.to_dict()
        assert record["dimension"] == "plans"
        assert record["limit"] == 10
        assert record["spent"] == 11
        assert record["where"] == "enumerate_plans"
