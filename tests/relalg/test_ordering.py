"""The shared sort-key convention: one total order, NULLS LAST (ASC).

Every sorter in the system -- ``Relation.sorted_rows``, the CLI's
ORDER BY/LIMIT path, the logical ``Sort`` enforcer in all three
engines, the physical ``SortOp``/merge join -- keys rows through
:mod:`repro.relalg.ordering`.  These tests pin the convention itself:
total order over heterogeneous values, NULL placement, DESC via key
inversion, and the top-N fast path agreeing element for element with
a full stable sort.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.relalg.nulls import NULL
from repro.relalg.ordering import (
    attr_key_fn,
    row_key,
    sort_rows,
    top_n_rows,
    value_key,
)
from repro.relalg.relation import Relation
from repro.relalg.row import Row

#: value pool crossing every type class the convention distinguishes
_VALUES = [None, NULL, -3, 0, 2.5, True, "a", "b", "", (1, 2), (1,)]


def _value_strategy():
    return st.sampled_from(_VALUES)


class TestValueKey:
    def test_total_order_over_mixed_types(self):
        keys = [value_key(v) for v in _VALUES]
        # keys must be mutually comparable: sorting must not raise
        sorted(keys)

    def test_nulls_last_ascending(self):
        values = [3, None, 1, NULL, 2]
        ordered = sorted(values, key=value_key)
        assert ordered[:3] == [1, 2, 3]
        # both NULL spellings land at the end
        assert all(v is None or v is NULL for v in ordered[3:])

    def test_null_spellings_key_identically(self):
        assert value_key(None) == value_key(NULL)

    def test_numbers_before_strings_before_other(self):
        ordered = sorted([(1, 2), "a", 7], key=value_key)
        assert ordered == [7, "a", (1, 2)]

    def test_bool_compares_numerically(self):
        assert sorted([2, True, 0], key=value_key) == [0, True, 2]

    def test_other_types_deterministic(self):
        a, b = value_key((1, 2)), value_key((1, 2))
        assert a == b


class TestRowKey:
    def test_desc_inverts_and_puts_nulls_first(self):
        rows = [(1,), (None,), (3,), (2,)]
        ordered = sort_rows(rows, [(0, True)])
        assert ordered == [(None,), (3,), (2,), (1,)]

    def test_mixed_directions(self):
        rows = [(1, "x"), (1, "y"), (2, "x")]
        ordered = sort_rows(rows, [(0, False), (1, True)])
        assert ordered == [(1, "y"), (1, "x"), (2, "x")]

    def test_stable_on_ties(self):
        rows = [(1, "first"), (1, "second"), (0, "zero")]
        ordered = sort_rows(rows, [(0, False)])
        assert ordered == [(0, "zero"), (1, "first"), (1, "second")]

    def test_attr_key_fn_matches_row_key_on_rows(self):
        row = Row({"a": 3, "b": None})
        specs = [("a", False), ("b", True)]
        assert attr_key_fn(specs)(row) == row_key(row, specs)


class TestTopN:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(_value_strategy(), _value_strategy()), max_size=30
        ),
        n=st.integers(min_value=0, max_value=12),
        descending=st.booleans(),
    )
    def test_top_n_equals_sorted_prefix(self, rows, n, descending):
        """``heapq.nsmallest`` under the composite key agrees element
        for element with a full stable sort truncated to ``n`` -- the
        property the CLI's LIMIT fast path depends on."""
        specs = [(0, descending), (1, not descending)]
        assert top_n_rows(rows, specs, n) == sort_rows(rows, specs)[:n]

    def test_non_positive_n_is_empty(self):
        assert top_n_rows([(1,), (2,)], [(0, False)], 0) == []
        assert top_n_rows([(1,), (2,)], [(0, False)], -3) == []


class TestRelationSortedRows:
    def test_sorted_rows_follows_the_convention(self):
        rel = Relation.base("t", ["a"], [(2,), (None,), (1,)])
        values = [row["a"] for row in rel.sorted_rows()]
        assert values[:2] == [1, 2]
        assert values[2] is None or values[2] is NULL

    def test_duplicate_heavy_input_keeps_all_rows(self):
        rng = random.Random(5)
        data = [(rng.randint(0, 2), rng.randint(0, 1)) for _ in range(50)]
        rel = Relation.base("t", ["a", "b"], data)
        assert len(rel.sorted_rows()) == 50
