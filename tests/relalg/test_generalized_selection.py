"""Tests for generalized selection (Definition 2.1), incl. Example 2.1."""

import pytest

from repro.relalg import (
    PreservedSpec,
    Relation,
    full_outer_join,
    generalized_selection,
    join,
    left_outer_join,
    product,
)
from repro.relalg.nulls import NULL
from repro.relalg.schema import SchemaError
from tests.support import cmp, conj, example21_relations

P12 = cmp("c", "=", "c2_")
P13 = cmp("f", "=", "f3_")
P23 = cmp("e", "=", "e3_")


def spec_r1():
    return PreservedSpec.of("r1", ["a", "b", "c", "f"], ["#r1"])


def spec_r2():
    return PreservedSpec.of("r2", ["c2_", "d", "e"], ["#r2"])


def spec_r1r2():
    return PreservedSpec.of(
        "r1r2", ["a", "b", "c", "f", "c2_", "d", "e"], ["#r1", "#r2"]
    )


class TestDefinitionBasics:
    def test_no_preserved_is_plain_selection(self):
        r1, r2, _ = example21_relations()
        prod = product(r1, r2)
        out = generalized_selection(prod, P12, [])
        assert out.same_content(join(r1, r2, P12))

    def test_join_outerjoin_fullouterjoin_as_gs_on_product(self):
        """The paper's closing identities of Section 2."""
        r1, r2, _ = example21_relations()
        prod = product(r1, r2)
        assert generalized_selection(prod, P12, []).same_content(join(r1, r2, P12))
        assert generalized_selection(prod, P12, [spec_r1()]).same_content(
            left_outer_join(r1, r2, P12)
        )
        assert generalized_selection(prod, P12, [spec_r1(), spec_r2()]).same_content(
            full_outer_join(r1, r2, P12)
        )

    def test_schema_unchanged(self):
        r1, r2, _ = example21_relations()
        prod = product(r1, r2)
        out = generalized_selection(prod, P12, [spec_r1()])
        assert out.real == prod.real
        assert out.virtual == prod.virtual

    def test_preserved_attrs_must_exist(self):
        r1, r2, _ = example21_relations()
        prod = product(r1, r2)
        bad = PreservedSpec.of("x", ["nope"], ["#r1"])
        with pytest.raises(SchemaError, match="not in GS input"):
            generalized_selection(prod, P12, [bad])

    def test_preserved_must_be_disjoint(self):
        r1, r2, _ = example21_relations()
        prod = product(r1, r2)
        with pytest.raises(SchemaError, match="disjoint"):
            generalized_selection(prod, P12, [spec_r1(), spec_r1()])

    def test_fully_empty_spec_rejected(self):
        with pytest.raises(SchemaError):
            PreservedSpec.of("x", [], [])

    def test_empty_virtuals_allowed_with_real_presence_rule(self):
        """A spec without virtual attrs identifies tuples by real values

        (the group-key case above a generalized projection): present
        when any value is non-NULL.
        """
        spec = PreservedSpec.of("g", ["a"], [])
        from repro.relalg.row import Row

        assert spec.part_of(Row({"a": 0, "b": 1}), ("a",)) == Row({"a": 0})
        assert spec.part_of(Row({"a": NULL, "b": 1}), ("a",)) is None


class TestExample21:
    """Row-for-row reproduction of the paper's Example 2.1."""

    def test_t1_contents(self):
        r1, r2, r3 = example21_relations()
        r1r2 = left_outer_join(r1, r2, P12)
        t1 = left_outer_join(r1r2, r3, conj(P13, P23))
        expected = {
            ("a1", "b1", "c1", "f1", "c1", "d1", "e1", "e1", "f1"),
            ("a2", "b1", "c1", "f2", "c1", "d1", "e1", NULL, NULL),
            ("a2", "b1", "c2", "f2", NULL, NULL, NULL, NULL, NULL),
        }
        order = ("a", "b", "c", "f", "c2_", "d", "e", "e3_", "f3_")
        assert {row.values_tuple(order) for row in t1} == expected
        assert len(t1) == 3

    def test_t2_contents_corrected(self):
        """T2 as printed in the paper omits two cross-match rows; the

        left outer join on p23 alone matches both r3 tuples for each of
        the first two r1r2 rows.  We assert the *correct* T2.
        """
        r1, r2, r3 = example21_relations()
        r1r2 = left_outer_join(r1, r2, P12)
        t2 = left_outer_join(r1r2, r3, P23)
        assert len(t2) == 5

    def test_gs_compensates_t2_to_t1(self):
        r1, r2, r3 = example21_relations()
        r1r2 = left_outer_join(r1, r2, P12)
        t1 = left_outer_join(r1r2, r3, conj(P13, P23))
        t2 = left_outer_join(r1r2, r3, P23)
        compensated = generalized_selection(t2, P13, [spec_r1r2()])
        assert compensated.same_content(t1)


class TestProvenanceRule:
    def test_full_outer_join_compensation_has_no_phantom_rows(self):
        """Preserving r1r2 over a FOJ result must not fabricate an

        all-NULL row from the right-unmatched rows (whose r1r2 part has
        no provenance).
        """
        r1, r2, r3 = example21_relations()
        r1r2 = join(r1, r2, P12)
        lhs = full_outer_join(r1r2, r3, conj(P13, P23))
        inner = full_outer_join(r1r2, r3, P23)
        spec3 = PreservedSpec.of("r3", ["e3_", "f3_"], ["#r3"])
        out = generalized_selection(inner, P13, [spec_r1r2(), spec3])
        assert out.same_content(lhs)
        order = tuple(out.real)
        assert all(
            any(v != NULL for v in row.values_tuple(order)) for row in out
        )

    def test_duplicate_preserved_part_emitted_once(self):
        """An r1r2 tuple matching several r3 rows, none passing p, is

        preserved exactly once.
        """
        r1 = Relation.base("l", ["k", "f"], [(1, "zzz")])
        r3 = Relation.base("r", ["k3", "f3"], [(1, "f1"), (1, "f2")])
        inner = left_outer_join(r1, r3, cmp("k", "=", "k3"))
        assert len(inner) == 2
        out = generalized_selection(
            inner,
            cmp("f", "=", "f3"),
            [PreservedSpec.of("l", ["k", "f"], ["#l"])],
        )
        assert len(out) == 1
        assert out.rows[0]["f3"] == NULL
