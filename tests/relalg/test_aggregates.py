"""Tests for aggregate functions and generalized projection."""

from fractions import Fraction

import pytest

from repro.relalg import (
    Relation,
    avg,
    count,
    count_distinct,
    count_star,
    generalized_projection,
    max_,
    min_,
    sum_,
    sum_distinct,
)
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.relalg.generalized_projection import is_duplicate_insensitive
from repro.relalg.nulls import NULL
from repro.relalg.schema import SchemaError


def sample():
    return Relation.base(
        "t",
        ["g", "v"],
        [("x", 1), ("x", 2), ("x", 2), ("y", NULL), ("y", 5)],
    )


class TestAggregateSpec:
    def test_count_star(self):
        assert count_star().compute(iter([object(), object()])) == 2

    def test_count_ignores_null(self):
        assert count("v").compute([1, NULL, 2]) == 2

    def test_count_distinct(self):
        assert count_distinct("v").compute([1, 1, 2, NULL]) == 2

    def test_sum_and_distinct(self):
        assert sum_("v").compute([1, 2, 2]) == 5
        assert sum_distinct("v").compute([1, 2, 2]) == 3

    def test_empty_group_semantics(self):
        assert count("v").compute([]) == 0
        assert sum_("v").compute([]) == NULL
        assert min_("v").compute([NULL]) == NULL

    def test_avg_exact(self):
        assert avg("v").compute([1, 2]) == Fraction(3, 2)

    def test_min_max(self):
        assert min_("v").compute([3, 1, 2]) == 1
        assert max_("v").compute([3, 1, 2]) == 3

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            AggregateSpec("s", AggregateFunction.SUM, None)
        with pytest.raises(ValueError):
            AggregateSpec("c", AggregateFunction.COUNT, None, distinct=True)

    def test_duplicate_insensitivity_flags(self):
        assert min_("v").duplicate_insensitive
        assert max_("v").duplicate_insensitive
        assert count_distinct("v").duplicate_insensitive
        assert not count_star().duplicate_insensitive
        assert not sum_("v").duplicate_insensitive

    def test_label(self):
        assert count_star("c").label() == "count(*)"
        assert count_distinct("v").label() == "count(distinct v)"


class TestGeneralizedProjection:
    def test_group_and_count(self):
        out = generalized_projection(sample(), ["g"], [count_star("n")])
        rows = {row["g"]: row["n"] for row in out}
        assert rows == {"x": 3, "y": 2}

    def test_count_attr_skips_null(self):
        out = generalized_projection(sample(), ["g"], [count("v", "n")])
        rows = {row["g"]: row["n"] for row in out}
        assert rows == {"x": 3, "y": 1}

    def test_no_aggregates_is_select_distinct(self):
        out = generalized_projection(sample(), ["g"])
        assert sorted(row["g"] for row in out) == ["x", "y"]

    def test_null_groups_together(self):
        r = Relation.base("t", ["g"], [(NULL,), (NULL,), (1,)])
        out = generalized_projection(r, ["g"], [count_star("n")])
        assert sorted(row["n"] for row in out) == [1, 2]

    def test_output_gets_fresh_vid(self):
        out = generalized_projection(sample(), ["g"], [count_star("n")], name="agg")
        assert "#agg" in out.virtual
        vids = {row["#agg"] for row in out}
        assert len(vids) == len(out)

    def test_group_on_virtual_attrs(self):
        r = sample()
        out = generalized_projection(r, ["#t"], [count_star("n")])
        assert len(out) == len(r)

    def test_unknown_group_attr_raises(self):
        with pytest.raises(SchemaError):
            generalized_projection(sample(), ["nope"])

    def test_output_collision_raises(self):
        with pytest.raises(SchemaError):
            generalized_projection(sample(), ["g"], [count_star("g")])

    def test_unknown_agg_arg_raises(self):
        with pytest.raises(SchemaError):
            generalized_projection(sample(), ["g"], [sum_("nope")])

    def test_is_duplicate_insensitive(self):
        assert is_duplicate_insensitive([])
        assert is_duplicate_insensitive([min_("v"), max_("v")])
        assert not is_duplicate_insensitive([min_("v"), count_star()])
