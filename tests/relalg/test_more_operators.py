"""Additional substrate coverage: outer union, δ-GPs, edge cases."""

import pytest

from repro.relalg import (
    Relation,
    count_distinct,
    count_star,
    generalized_projection,
    max_,
    min_,
    outer_union,
    project,
    sum_distinct,
    union,
)
from repro.relalg.generalized_projection import is_duplicate_insensitive
from repro.relalg.nulls import NULL
from repro.relalg.schema import SchemaError


class TestOuterUnion:
    def test_definition_section_12(self):
        """⊎ pads with NULL for attributes absent on either side."""
        r1 = Relation.base("x", ["a", "b"], [(1, 2)])
        r2 = Relation.base("y", ["b2", "c"], [(3, 4)])
        out = outer_union(r1, r2)
        assert set(out.real) == {"a", "b", "b2", "c"}
        rows = sorted(
            ((row["a"], row["b"], row["b2"], row["c"]) for row in out),
            key=repr,
        )
        assert (1, 2, NULL, NULL) in rows
        assert (NULL, NULL, 3, 4) in rows

    def test_shared_attributes_align(self):
        r1 = Relation.base("x", ["a"], [(1,)])
        r2 = Relation.base("y", ["a"], [(2,)])
        out = outer_union(r1, r2)
        assert sorted(row["a"] for row in out) == [1, 2]
        # virtuals differ -> padded per side
        assert set(out.virtual) == {"#x", "#y"}

    def test_empty_sides(self):
        r1 = Relation.base("x", ["a"], [])
        r2 = Relation.base("y", ["b"], [(1,)])
        assert len(outer_union(r1, r2)) == 1
        assert len(outer_union(r2, r1)) == 1

    def test_commutative_content(self):
        r1 = Relation.base("x", ["a"], [(1,), (2,)])
        r2 = Relation.base("y", ["b"], [(9,)])
        assert outer_union(r1, r2).same_content(outer_union(r2, r1))


class TestDuplicateInsensitiveGP:
    def test_delta_functions(self):
        r = Relation.base("t", ["g", "v"], [("x", 1), ("x", 1), ("x", 2)])
        out = generalized_projection(
            r, ["g"], [min_("v", "lo"), max_("v", "hi"), count_distinct("v", "d")]
        )
        row = out.rows[0]
        assert (row["lo"], row["hi"], row["d"]) == (1, 2, 2)
        assert is_duplicate_insensitive(
            [min_("v"), max_("v"), count_distinct("v")]
        )

    def test_duplicates_change_sensitive_but_not_insensitive(self):
        base = [("x", 1), ("x", 2)]
        doubled = base + base
        r1 = Relation.base("t", ["g", "v"], base)
        r2 = Relation.base("t", ["g", "v"], doubled)
        for spec, differs in (
            (count_star("o"), True),
            (sum_distinct("v", "o"), False),
            (min_("v", "o"), False),
        ):
            a = generalized_projection(r1, ["g"], [spec]).rows[0]["o"]
            b = generalized_projection(r2, ["g"], [spec]).rows[0]["o"]
            assert (a != b) == differs, spec

    def test_global_aggregate_empty_input(self):
        r = Relation.base("t", ["v"], [])
        out = generalized_projection(r, [], [count_star("n"), min_("v", "lo")])
        assert len(out) == 1
        assert out.rows[0]["n"] == 0
        assert out.rows[0]["lo"] == NULL

    def test_grouped_aggregate_empty_input(self):
        r = Relation.base("t", ["g", "v"], [])
        out = generalized_projection(r, ["g"], [count_star("n")])
        assert len(out) == 0  # no groups without rows


class TestProjectionEdges:
    def test_projection_to_nothing_rejected(self):
        r = Relation.base("t", ["a"], [(1,)])
        out = project(r, [])
        assert len(out) == 1  # bag of empty tuples with vids kept

    def test_distinct_drops_provenance(self):
        r = Relation.base("t", ["a"], [(1,), (1,)])
        out = project(r, ["a"], virtual_attrs=[], distinct=True)
        assert len(out) == 1 and not tuple(out.virtual)

    def test_union_incompatible_virtuals(self):
        r1 = Relation.base("x", ["a"], [(1,)])
        r2 = Relation.base("y", ["a"], [(1,)])
        with pytest.raises(SchemaError):
            union(r1, r2)
