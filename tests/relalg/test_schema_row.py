"""Tests for Schema and Row primitives, and row-validation modes."""

import pytest

from repro.relalg.nulls import NULL
from repro.relalg.relation import Relation, set_full_row_validation
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError


class TestSchema:
    def test_order_preserved(self):
        s = Schema(["b", "a", "c"])
        assert s.attrs == ("b", "a", "c")
        assert list(s) == ["b", "a", "c"]

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "a"])

    def test_non_string_rejected(self):
        with pytest.raises(SchemaError):
            Schema([1])  # type: ignore[list-item]

    def test_membership_and_position(self):
        s = Schema(["x", "y"])
        assert "x" in s
        assert "z" not in s
        assert s.position("y") == 1
        with pytest.raises(SchemaError):
            s.position("z")

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_union_keeps_left_order(self):
        s = Schema(["a", "b"]).union(Schema(["b", "c"]))
        assert s.attrs == ("a", "b", "c")

    def test_concat_rejects_overlap(self):
        with pytest.raises(SchemaError, match="overlap"):
            Schema(["a"]).concat(Schema(["a"]))
        assert Schema(["a"]).concat(Schema(["b"])).attrs == ("a", "b")

    def test_set_operations(self):
        s = Schema(["a", "b", "c"])
        assert s.intersection(["b", "c", "d"]).attrs == ("b", "c")
        assert s.difference(["b"]).attrs == ("a", "c")
        assert Schema(["a"]).is_subset(s)
        assert not s.is_subset(["a"])
        assert s.is_disjoint(["x", "y"])
        assert not s.is_disjoint(["c"])

    def test_restrict(self):
        s = Schema(["a", "b", "c"])
        assert s.restrict(["c", "a"]).attrs == ("a", "c")
        with pytest.raises(SchemaError):
            s.restrict(["z"])


class TestRow:
    def test_mapping_interface(self):
        r = Row({"a": 1, "b": 2})
        assert r["a"] == 1
        assert len(r) == 2
        assert set(r) == {"a", "b"}

    def test_immutability_by_construction(self):
        data = {"a": 1}
        r = Row(data)
        data["a"] = 99
        assert r["a"] == 1

    def test_hash_and_equality(self):
        assert Row({"a": 1}) == Row({"a": 1})
        assert hash(Row({"a": 1, "b": NULL})) == hash(Row({"b": NULL, "a": 1}))
        assert Row({"a": 1}) != Row({"a": 2})

    def test_null_values_hash(self):
        assert len({Row({"a": NULL}), Row({"a": NULL})}) == 1

    def test_project(self):
        r = Row({"a": 1, "b": 2, "c": 3})
        assert r.project(["c", "a"]) == Row({"a": 1, "c": 3})

    def test_merge_disjoint(self):
        merged = Row({"a": 1}).merge(Row({"b": 2}))
        assert merged == Row({"a": 1, "b": 2})

    def test_merge_overlap_raises(self):
        with pytest.raises(ValueError, match="overlap"):
            Row({"a": 1}).merge(Row({"a": 2}))

    def test_padded(self):
        r = Row({"a": 1}).padded(["a", "b", "c"])
        assert r == Row({"a": 1, "b": NULL, "c": NULL})

    def test_replace(self):
        assert Row({"a": 1}).replace(a=2) == Row({"a": 2})

    def test_values_tuple_order(self):
        r = Row({"a": 1, "b": 2})
        assert r.values_tuple(["b", "a"]) == (2, 1)


class TestRowValidationModes:
    """Relation.__init__ samples the first row by default; full
    validation is the opt-in debug mode (REPRO_VALIDATE_ROWS)."""

    GOOD = Row({"a": 1})
    BAD = Row({"zzz": 2})

    def test_first_row_always_checked(self):
        with pytest.raises(SchemaError, match="do not match schema"):
            Relation(["a"], [], [self.BAD, self.GOOD])

    def test_sampled_mode_trusts_later_rows(self):
        # the perf contract: operators derive rows from validated
        # inputs, so later rows are not re-checked by default
        rel = Relation(["a"], [], [self.GOOD, self.BAD])
        assert len(rel) == 2

    def test_full_mode_catches_later_rows(self):
        previous = set_full_row_validation(True)
        try:
            with pytest.raises(SchemaError, match="do not match schema"):
                Relation(["a"], [], [self.GOOD, self.BAD])
        finally:
            set_full_row_validation(previous)

    def test_toggle_returns_previous_value(self):
        previous = set_full_row_validation(True)
        try:
            assert set_full_row_validation(False) is True
            assert set_full_row_validation(previous) is False
        finally:
            set_full_row_validation(previous)
