"""Tests for join operators, including NULL (in)tolerance behaviour."""

from repro.relalg import (
    Relation,
    anti_join,
    full_outer_join,
    join,
    left_outer_join,
    right_outer_join,
    semi_join,
)
from repro.relalg.nulls import NULL
from tests.support import cmp, conj


def make_sides():
    left = Relation.base("l", ["k", "x"], [(1, "a"), (2, "b"), (3, "c")])
    right = Relation.base("r", ["k2", "y"], [(1, "A"), (1, "B"), (4, "D")])
    return left, right


P = cmp("k", "=", "k2")


class TestInnerJoin:
    def test_matches(self):
        left, right = make_sides()
        out = join(left, right, P)
        assert sorted((row["k"], row["y"]) for row in out) == [(1, "A"), (1, "B")]

    def test_null_join_keys_never_match(self):
        left = Relation.from_mappings(
            ["k", "x"], ["#l"], [{"k": NULL, "x": "a", "#l": ("l", 0)}]
        )
        right = Relation.from_mappings(
            ["k2", "y"], ["#r"], [{"k2": NULL, "y": "A", "#r": ("r", 0)}]
        )
        assert len(join(left, right, P)) == 0


class TestSemiAnti:
    def test_semi_join(self):
        left, right = make_sides()
        out = semi_join(left, right, P)
        assert sorted(row["k"] for row in out) == [1]

    def test_anti_join(self):
        left, right = make_sides()
        out = anti_join(left, right, P)
        assert sorted(row["k"] for row in out) == [2, 3]

    def test_semi_does_not_duplicate(self):
        left, right = make_sides()
        # k=1 matches two right rows but appears once
        assert len(semi_join(left, right, P)) == 1


class TestOuterJoins:
    def test_left_outer_join(self):
        left, right = make_sides()
        out = left_outer_join(left, right, P)
        assert len(out) == 4  # 2 matches + 2 unmatched left rows
        padded = [row for row in out if row["y"] == NULL]
        assert sorted(row["k"] for row in padded) == [2, 3]

    def test_right_outer_join(self):
        left, right = make_sides()
        out = right_outer_join(left, right, P)
        assert len(out) == 3  # 2 matches + 1 unmatched right row
        padded = [row for row in out if row["x"] == NULL]
        assert [row["k2"] for row in padded] == [4]

    def test_full_outer_join(self):
        left, right = make_sides()
        out = full_outer_join(left, right, P)
        assert len(out) == 5  # 2 matches + 2 left-only + 1 right-only

    def test_loj_equals_roj_flipped(self):
        left, right = make_sides()
        a = left_outer_join(left, right, P)
        b = right_outer_join(right, left, P)
        assert a.same_content(b)

    def test_outer_join_against_empty(self):
        left, _ = make_sides()
        empty = Relation.base("r", ["k2", "y"], [])
        out = left_outer_join(left, empty, P)
        assert len(out) == 3
        assert all(row["y"] == NULL for row in out)

    def test_outer_join_preserves_duplicates(self):
        left = Relation.base("l", ["k", "x"], [(9, "a"), (9, "a")])
        right = Relation.base("r", ["k2", "y"], [])
        out = left_outer_join(left, right, P)
        assert len(out) == 2


class TestComplexPredicateJoins:
    def test_conjunction_null_intolerant(self):
        """A NULL in either conjunct attribute rejects the pair."""
        left = Relation.from_mappings(
            ["k", "x"],
            ["#l"],
            [{"k": 1, "x": NULL, "#l": ("l", 0)}],
        )
        right = Relation.base("r", ["k2", "y"], [(1, NULL)])
        pred = conj(cmp("k", "=", "k2"), cmp("x", "=", "y"))
        assert len(join(left, right, pred)) == 0
        out = left_outer_join(left, right, pred)
        assert len(out) == 1 and out.rows[0]["y"] == NULL
