"""Tests for Relation and the unary/set operators."""

import pytest

from repro.relalg import Relation, difference, outer_union, product, project, rename, select, union
from repro.relalg.nulls import NULL
from repro.relalg.relation import virtual_attr
from repro.relalg.schema import SchemaError
from tests.support import cmp_const


def rel(name, attrs, data):
    return Relation.base(name, attrs, data)


class TestRelation:
    def test_base_assigns_unique_vids(self):
        r = rel("t", ["a"], [(1,), (1,), (2,)])
        vids = [row[virtual_attr("t")] for row in r]
        assert len(set(vids)) == 3
        assert all(v[0] == "t" for v in vids)

    def test_base_row_arity_checked(self):
        with pytest.raises(SchemaError):
            rel("t", ["a", "b"], [(1,)])

    def test_real_virtual_disjoint(self):
        with pytest.raises(SchemaError):
            Relation(["a"], ["a"])

    def test_row_schema_checked(self):
        from repro.relalg.row import Row

        with pytest.raises(SchemaError):
            Relation(["a"], ["#t"], [Row({"a": 1})])

    def test_same_content_ignores_vids_and_column_order(self):
        r1 = rel("x", ["a", "b"], [(1, 2), (1, 2)])
        r2 = rel("y", ["b", "a"], [(2, 1), (2, 1)])
        # same_content compares real attrs as sets -> need matching names
        r2 = rename(r2, {})
        assert r1.same_content(r2)

    def test_same_content_is_bag_sensitive(self):
        r1 = rel("x", ["a"], [(1,), (1,)])
        r2 = rel("y", ["a"], [(1,)])
        assert not r1.same_content(r2)

    def test_to_text_renders_nulls_as_dash(self):
        r = Relation.from_mappings(["a"], ["#t"], [{"a": NULL, "#t": ("t", 0)}])
        assert "-" in r.to_text()


class TestSelect:
    def test_keeps_only_true(self):
        r = rel("t", ["a"], [(1,), (2,), (3,)])
        out = select(r, cmp_const("a", ">", 1))
        assert sorted(row["a"] for row in out) == [2, 3]

    def test_null_rejected(self):
        r = Relation.from_mappings(
            ["a"], ["#t"], [{"a": NULL, "#t": ("t", 0)}, {"a": 5, "#t": ("t", 1)}]
        )
        out = select(r, cmp_const("a", ">", 0))
        assert len(out) == 1 and out.rows[0]["a"] == 5


class TestProject:
    def test_bag_projection_keeps_duplicates(self):
        r = rel("t", ["a", "b"], [(1, 10), (1, 20)])
        out = project(r, ["a"])
        assert len(out) == 2

    def test_distinct_projection(self):
        r = rel("t", ["a", "b"], [(1, 10), (1, 20)])
        out = project(r, ["a"], virtual_attrs=[], distinct=True)
        assert len(out) == 1

    def test_virtuals_kept_by_default(self):
        r = rel("t", ["a", "b"], [(1, 10)])
        out = project(r, ["a"])
        assert virtual_attr("t") in out.virtual


class TestProduct:
    def test_cardinality_and_schema(self):
        left = rel("l", ["a"], [(1,), (2,)])
        right = rel("r", ["b"], [(10,), (20,), (30,)])
        out = product(left, right)
        assert len(out) == 6
        assert set(out.real) == {"a", "b"}
        assert set(out.virtual) == {"#l", "#r"}

    def test_schema_overlap_rejected(self):
        with pytest.raises(SchemaError):
            product(rel("l", ["a"], []), rel("r", ["a"], []))


class TestUnionDifference:
    def test_union_is_bag(self):
        r1 = rel("t", ["a"], [(1,)])
        r2 = rel("t", ["a"], [(1,)])
        assert len(union(r1, r2)) == 2

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            union(rel("t", ["a"], []), rel("t", ["b"], []))

    def test_outer_union_pads_with_null(self):
        r1 = rel("x", ["a"], [(1,)])
        r2 = rel("y", ["b"], [(2,)])
        out = outer_union(r1, r2)
        assert len(out) == 2
        assert set(out.real) == {"a", "b"}
        rows = out.sorted_rows()
        assert any(row["b"] is NULL or row["b"] == NULL for row in out)

    def test_difference_bag_semantics(self):
        r1 = rel("t", ["a"], [(1,), (1,), (2,)])
        # difference needs identical virtual schemas: derive from r1
        keep = r1.with_rows(r1.rows[:1])
        out = difference(r1, keep)
        assert sorted(row["a"] for row in out) == [1, 2]

    def test_difference_schema_mismatch(self):
        with pytest.raises(SchemaError):
            difference(rel("t", ["a"], []), rel("u", ["a"], []))


class TestRename:
    def test_rename_real_attr(self):
        r = rel("t", ["a"], [(1,)])
        out = rename(r, {"a": "z"})
        assert "z" in out.real and "a" not in out.real
        assert out.rows[0]["z"] == 1

    def test_rename_unknown_raises(self):
        with pytest.raises(SchemaError):
            rename(rel("t", ["a"], []), {"q": "z"})
