"""Tests for NULL and three-valued logic."""

import pickle

import pytest

from repro.relalg.nulls import NULL, NullType, Truth, compare, is_null


class TestNull:
    def test_singleton(self):
        assert NullType() is NULL

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_falsy(self):
        assert not NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_structural_equality_with_itself(self):
        # Python-level equality (row identity), not SQL equality.
        assert NULL == NULL
        assert not (NULL != NULL)

    def test_not_equal_to_values(self):
        assert NULL != 0
        assert NULL != "NULL"
        assert NULL != None  # noqa: E711 - deliberate: NULL is not None

    def test_hashable_and_stable(self):
        assert hash(NULL) == hash(NullType())
        assert len({NULL, NullType()}) == 1

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestTruth:
    def test_bool_only_true_qualifies(self):
        assert bool(Truth.TRUE)
        assert not bool(Truth.FALSE)
        assert not bool(Truth.UNKNOWN)

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (Truth.TRUE, Truth.TRUE, Truth.TRUE),
            (Truth.TRUE, Truth.UNKNOWN, Truth.UNKNOWN),
            (Truth.TRUE, Truth.FALSE, Truth.FALSE),
            (Truth.UNKNOWN, Truth.UNKNOWN, Truth.UNKNOWN),
            (Truth.UNKNOWN, Truth.FALSE, Truth.FALSE),
            (Truth.FALSE, Truth.FALSE, Truth.FALSE),
        ],
    )
    def test_and_truth_table(self, a, b, expected):
        assert a.and_(b) is expected
        assert b.and_(a) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (Truth.TRUE, Truth.TRUE, Truth.TRUE),
            (Truth.TRUE, Truth.UNKNOWN, Truth.TRUE),
            (Truth.TRUE, Truth.FALSE, Truth.TRUE),
            (Truth.UNKNOWN, Truth.UNKNOWN, Truth.UNKNOWN),
            (Truth.UNKNOWN, Truth.FALSE, Truth.UNKNOWN),
            (Truth.FALSE, Truth.FALSE, Truth.FALSE),
        ],
    )
    def test_or_truth_table(self, a, b, expected):
        assert a.or_(b) is expected
        assert b.or_(a) is expected

    def test_not(self):
        assert Truth.TRUE.not_() is Truth.FALSE
        assert Truth.FALSE.not_() is Truth.TRUE
        assert Truth.UNKNOWN.not_() is Truth.UNKNOWN

    def test_of(self):
        assert Truth.of(True) is Truth.TRUE
        assert Truth.of(False) is Truth.FALSE


class TestCompare:
    @pytest.mark.parametrize("op", ["=", "<>", "!=", "<", "<=", ">", ">="])
    def test_null_operand_is_unknown(self, op):
        assert compare(NULL, op, 1) is Truth.UNKNOWN
        assert compare(1, op, NULL) is Truth.UNKNOWN
        assert compare(NULL, op, NULL) is Truth.UNKNOWN

    def test_equality(self):
        assert compare(1, "=", 1) is Truth.TRUE
        assert compare(1, "=", 2) is Truth.FALSE
        assert compare("a", "=", "a") is Truth.TRUE

    def test_inequality_aliases(self):
        assert compare(1, "<>", 2) is Truth.TRUE
        assert compare(1, "!=", 2) is Truth.TRUE
        assert compare(1, "<>", 1) is Truth.FALSE

    def test_ordering(self):
        assert compare(1, "<", 2) is Truth.TRUE
        assert compare(2, "<=", 2) is Truth.TRUE
        assert compare(3, ">", 2) is Truth.TRUE
        assert compare(2, ">=", 3) is Truth.FALSE

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            compare(1, "~", 2)
