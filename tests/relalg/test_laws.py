"""Algebraic laws of the substrate, property-tested with hypothesis.

These are the identities the reordering machinery quietly relies on;
checking them directly on the substrate localizes any failure.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.expr import BaseRel, evaluate, full_outer, inner, left_outer, right_outer
from repro.expr.evaluate import Database
from repro.expr.predicates import eq, make_conjunction
from repro.relalg import (
    Relation,
    anti_join,
    difference,
    join,
    outer_union,
    project,
    select,
    semi_join,
    union,
)
from repro.relalg.nulls import NULL
from repro.workloads.random_db import random_database

SEEDS = st.integers(min_value=0, max_value=100_000)

R1 = BaseRel("r1", ("r1_a0", "r1_a1"))
R2 = BaseRel("r2", ("r2_a0", "r2_a1"))
R3 = BaseRel("r3", ("r3_a0", "r3_a1"))

P12 = eq("r1_a0", "r2_a0")
P23 = eq("r2_a1", "r3_a0")
P13 = eq("r1_a1", "r3_a1")


def db3(seed):
    rng = random.Random(seed)
    return random_database(rng, ("r1", "r2", "r3"), null_probability=0.2)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_inner_join_commutative(seed):
    db = db3(seed)
    assert evaluate(inner(R1, R2, P12), db).same_content(
        evaluate(inner(R2, R1, P12), db)
    )


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_full_outer_join_commutative(seed):
    db = db3(seed)
    assert evaluate(full_outer(R1, R2, P12), db).same_content(
        evaluate(full_outer(R2, R1, P12), db)
    )


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_left_right_mirror(seed):
    db = db3(seed)
    assert evaluate(left_outer(R1, R2, P12), db).same_content(
        evaluate(right_outer(R2, R1, P12), db)
    )


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_inner_join_associative(seed):
    db = db3(seed)
    lhs = inner(inner(R1, R2, P12), R3, P23)
    rhs = inner(R1, inner(R2, R3, P23), P12)
    assert evaluate(lhs, db).same_content(evaluate(rhs, db))


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_loj_associativity_null_intolerant(seed):
    """(r1 → r2) → r3 = r1 → (r2 → r3) with p23 null-intolerant on r2."""
    db = db3(seed)
    lhs = left_outer(left_outer(R1, R2, P12), R3, P23)
    rhs = left_outer(R1, left_outer(R2, R3, P23), P12)
    assert evaluate(lhs, db).same_content(evaluate(rhs, db))


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_foj_associativity(seed):
    db = db3(seed)
    lhs = full_outer(full_outer(R1, R2, P12), R3, P23)
    rhs = full_outer(R1, full_outer(R2, R3, P23), P12)
    assert evaluate(lhs, db).same_content(evaluate(rhs, db))


def test_blocked_shape_concrete_witness():
    """The paper's claim (r1 → (r2 ⋈ r3)) ≠ ((r1 → r2) ⋈ r3): witness."""
    db = Database(
        {
            "r1": Relation.base("r1", ["r1_a0", "r1_a1"], [(1, 1)]),
            "r2": Relation.base("r2", ["r2_a0", "r2_a1"], []),
            "r3": Relation.base("r3", ["r3_a0", "r3_a1"], [(5, 5)]),
        }
    )
    lhs = left_outer(R1, inner(R2, R3, P23), P12)
    rhs = inner(left_outer(R1, R2, P12), R3, P23)
    assert not evaluate(lhs, db).same_content(evaluate(rhs, db))


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_semi_anti_partition(seed):
    """semi(p) ⊎ anti(p) = r1, always (they partition the left side)."""
    db = db3(seed)
    r1, r2 = db["r1"], db["r2"]
    from repro.expr.evaluate import _PredicateAdapter

    pred = _PredicateAdapter(P12)
    semi = semi_join(r1, r2, pred)
    anti = anti_join(r1, r2, pred)
    assert union(semi, anti).same_content(r1)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_loj_decomposition(seed):
    """r1 → r2 = (r1 ⋈ r2) ⊎ padded(r1 ▷ r2)  -- the Section 1.2 definition."""
    db = db3(seed)
    r1, r2 = db["r1"], db["r2"]
    from repro.expr.evaluate import _PredicateAdapter
    from repro.relalg import left_outer_join

    pred = _PredicateAdapter(P12)
    loj = left_outer_join(r1, r2, pred)
    inner_part = join(r1, r2, pred)
    anti_part = anti_join(r1, r2, pred)
    recombined = outer_union(inner_part, anti_part)
    # outer_union pads the anti rows with NULL r2 attrs, matching the LOJ
    assert recombined.same_content(loj)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_select_distributes_over_join_left_side(seed):
    """σ_p(r1 ⋈ r2) = σ_p(r1) ⋈ r2 when sch(p) ⊆ r1."""
    from repro.expr import Select
    from repro.expr.predicates import cmp_const

    db = db3(seed)
    p = cmp_const("r1_a0", "=", 1)
    lhs = Select(inner(R1, R2, P12), p)
    rhs = inner(Select(R1, p), R2, P12)
    assert evaluate(lhs, db).same_content(evaluate(rhs, db))


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS)
def test_difference_union_roundtrip(seed):
    """(a ∪ b) − b = a for bag union/difference over one relation."""
    rng = random.Random(seed)
    db = random_database(rng, ("r1",), null_probability=0.2)
    a = db["r1"]
    b = a.with_rows(a.rows[: len(a) // 2])
    assert difference(union(a, b), b).same_content(a)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS)
def test_projection_idempotent(seed):
    rng = random.Random(seed)
    db = random_database(rng, ("r1",), null_probability=0.2)
    once = project(db["r1"], ["r1_a0"])
    twice = project(once, ["r1_a0"])
    assert twice.same_content(once)
