"""Unit tests for the shared-memory page format.

The page layer is the zero-copy substrate under process isolation:
tables encode once into named ``multiprocessing.shared_memory``
segments and worker children attach instead of receiving pickles.  The
tests pin down the properties the runtime depends on:

* **Round trips are byte-identical.**  Build -> attach -> read gives
  back exactly the input values *and* their Python types -- NULL-heavy,
  duplicate-heavy and GS-bearing (virtual-id carrying) inputs included.
* **Attachment works across a real process boundary** (spawn child).
* **Unpageable inputs fail closed**: mixed-type columns, oversized
  integers and exotic values raise :class:`UnpageableError` before any
  segment exists, and :class:`PageRegistry` routes those tables to the
  pickle fallback instead of dying.
* **Lifecycle is leak-free**: refcounts track attachments, close and
  unlink are idempotent, and :func:`sweep_orphans` reclaims segments
  whose owning pid is dead while leaving live owners alone.
"""

import multiprocessing
import os
import pickle
import random
import subprocess

import pytest

from repro.expr.evaluate import Database
from repro.relalg import Relation
from repro.relalg.columnar import ColumnarRelation
from repro.relalg.nulls import NULL
from repro.relalg.pages import (
    SEGMENT_PREFIX,
    AttachedPage,
    PagedColumnarRelation,
    PagedRelation,
    PageFormatError,
    PageRegistry,
    UnpageableError,
    attach_page,
    build_page,
    pages_supported,
    sweep_orphans,
)
from repro.workloads.random_db import random_database

pytestmark = pytest.mark.skipif(
    not pages_supported(), reason="shared memory unavailable"
)


def _segment(tag: str) -> str:
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{tag}_{random.randrange(1 << 16)}"


def _round_trip(relation: Relation, tag: str) -> None:
    """Build a page from ``relation`` and assert the read side is
    value- and type-identical, column by column."""
    shm, handle = build_page("t", relation, _segment(tag))
    try:
        page = attach_page(handle)
        try:
            got = page.relation()
            assert len(got) == len(relation)
            assert got.real == relation.real
            assert got.virtual == relation.virtual
            attrs = relation.real.attrs + relation.virtual.attrs
            want_rows = [tuple(row[a] for a in attrs) for row in relation]
            got_rows = [tuple(row[a] for a in attrs) for row in got]
            assert got_rows == want_rows
            for want, got_row in zip(want_rows, got_rows):
                for w, g in zip(want, got_row):
                    assert type(w) is type(g), (w, g)
            assert got.same_content(relation)
        finally:
            page.close()
    finally:
        shm.close()
        shm.unlink()


class TestRoundTrip:
    def test_all_kinds(self):
        rel = Relation.base(
            "r",
            ["i", "f", "s", "b"],
            [
                (1, 1.5, "alpha", True),
                (-(2**62), 0.0, "", False),
                (0, -2.25, "snow☃man", True),
            ],
        )
        _round_trip(rel, "kinds")

    def test_null_heavy(self):
        rel = Relation.base(
            "r",
            ["a", "b", "c"],
            [
                (NULL, NULL, NULL),
                (1, NULL, "x"),
                (NULL, 2.5, NULL),
                (NULL, NULL, "y"),
            ],
        )
        _round_trip(rel, "nulls")

    def test_duplicate_heavy(self):
        rel = Relation.base(
            "r", ["a", "b"], [(7, "dup")] * 50 + [(7, NULL)] * 10
        )
        _round_trip(rel, "dups")

    def test_gs_bearing_virtual_ids(self):
        # the virtual-id column of a base relation is the substrate of
        # generalized selection; it must survive paging exactly
        rel = Relation.base("orders", ["a"], [(i,) for i in range(9)])
        _round_trip(rel, "vid")
        shm, handle = build_page("orders", rel, _segment("vid2"))
        try:
            page = attach_page(handle)
            try:
                assert page.column("#orders") == [
                    ("orders", i) for i in range(9)
                ]
            finally:
                page.close()
        finally:
            shm.close()
            shm.unlink()

    def test_empty_relation(self):
        _round_trip(Relation.base("r", ["a", "b"], []), "empty")

    @pytest.mark.parametrize("seed", range(5))
    def test_property_random_databases(self, seed):
        rng = random.Random(1000 + seed)
        db = random_database(
            rng,
            ["r1", "r2", "r3"],
            attrs_per_rel=3,
            max_rows=20,
            null_probability=0.4,
            min_rows=0,
        )
        for name in db.names():
            _round_trip(db[name], f"prop{seed}{name}")


def _child_read(handle, conn):
    page = attach_page(handle)
    try:
        attrs = page.attrs()
        rows = [
            tuple(row[a] for a in attrs) for row in page.relation().rows
        ]
        conn.send((attrs, rows, page.refcount()))
    finally:
        page.close()
        conn.close()


class TestChildAttach:
    def test_spawned_child_reads_identical_rows(self):
        rel = Relation.base(
            "r", ["a", "s"], [(1, "x"), (NULL, "yy"), (3, NULL)]
        )
        shm, handle = build_page("r", rel, _segment("child"))
        try:
            ctx = multiprocessing.get_context("spawn")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_child_read, args=(handle, child))
            proc.start()
            try:
                attrs, rows, refcount = parent.recv()
            finally:
                proc.join(timeout=60)
            assert proc.exitcode == 0
            assert refcount == 1  # the child was the only attachment
            want = [tuple(row[a] for a in attrs) for row in rel]
            assert rows == want
            for w_row, g_row in zip(want, rows):
                for w, g in zip(w_row, g_row):
                    assert type(w) is type(g)
            # the child's exit must not have unlinked the segment
            assert os.path.exists(f"/dev/shm/{handle.segment}")
        finally:
            shm.close()
            shm.unlink()


class TestUnpageable:
    def _refuses(self, rows):
        rel = Relation.base("r", ["a"], rows)
        with pytest.raises(UnpageableError):
            build_page("r", rel, _segment("bad"))

    def test_mixed_type_column(self):
        self._refuses([(1,), ("two",)])

    def test_oversized_integer(self):
        self._refuses([(2**64,)])

    def test_exotic_value(self):
        from fractions import Fraction

        self._refuses([(Fraction(1, 3),)])

    def test_no_segment_left_behind(self):
        before = set(os.listdir("/dev/shm"))
        self._refuses([(1,), (None and 1 or "x",)])
        assert set(os.listdir("/dev/shm")) == before


class TestRegistry:
    def test_build_pages_and_fallback_split(self):
        from fractions import Fraction

        db = Database()
        db.add("good", Relation.base("good", ["a"], [(1,), (2,)]))
        db.add(
            "bad", Relation.base("bad", ["a"], [(Fraction(1, 2),)])
        )
        registry = PageRegistry.build(db)
        try:
            assert set(registry.handles) == {"good"}
            assert set(registry.fallback) == {"bad"}
            snap = registry.snapshot()
            assert snap["segments"] == 1
            assert snap["bytes"] > 0
            assert snap["fallback_tables"] == ["bad"]
            for segment in registry.segment_names():
                assert os.path.exists(f"/dev/shm/{segment}")
        finally:
            registry.close(unlink=True)
        for segment in registry.segment_names():
            assert not os.path.exists(f"/dev/shm/{segment}")
        registry.close(unlink=True)  # idempotent

    def test_kill_switch_disables_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not pages_supported()
        monkeypatch.delenv("REPRO_NO_SHM")
        assert pages_supported()


class TestLifecycle:
    def test_refcount_tracks_attachments(self):
        rel = Relation.base("r", ["a"], [(1,)])
        shm, handle = build_page("r", rel, _segment("ref"))
        try:
            first = attach_page(handle)
            second = attach_page(handle)
            assert first.refcount() == 2
            second.close()
            assert first.refcount() == 1
            first.close()
        finally:
            shm.close()
            shm.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        name = _segment("foreign")
        alien = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            from repro.relalg.pages import PageHandle

            with pytest.raises(PageFormatError):
                attach_page(PageHandle(name, "t", 64, 0))
        finally:
            alien.close()
            alien.unlink()

    def test_sweep_reclaims_dead_owner_only(self):
        from multiprocessing import shared_memory

        proc = subprocess.Popen(["sleep", "0"])
        proc.wait()
        dead_pid = proc.pid
        dead_name = f"{SEGMENT_PREFIX}_{dead_pid}_deadbeef_0"
        live_name = f"{SEGMENT_PREFIX}_{os.getpid()}_cafe_0"
        dead = shared_memory.SharedMemory(
            name=dead_name, create=True, size=32
        )
        live = shared_memory.SharedMemory(
            name=live_name, create=True, size=32
        )
        dead.close()
        try:
            swept = sweep_orphans()
            assert dead_name in swept
            assert live_name not in swept
            assert not os.path.exists(f"/dev/shm/{dead_name}")
            assert os.path.exists(f"/dev/shm/{live_name}")
        finally:
            live.close()
            live.unlink()
            if os.path.exists(f"/dev/shm/{dead_name}"):
                os.unlink(f"/dev/shm/{dead_name}")


class TestViews:
    @pytest.fixture()
    def paged(self):
        rel = Relation.base(
            "r", ["a", "b"], [(1, "x"), (2, NULL), (NULL, "z"), (2, "x")]
        )
        shm, handle = build_page("r", rel, _segment("views"))
        page = attach_page(handle)
        yield rel, page
        page.close()
        shm.close()
        shm.unlink()

    def test_from_relation_routes_through_page(self, paged):
        rel, page = paged
        col = ColumnarRelation.from_relation(page.relation())
        assert isinstance(col, PagedColumnarRelation)
        assert col.gather("a") == [1, 2, NULL, 2]
        # memoized: repeated transposes share the decode
        assert ColumnarRelation.from_relation(page.relation()) is col

    def test_selection_views_over_pages(self, paged):
        rel, page = paged
        col = page.columnar()
        view = col.view([0, 3])
        assert view.gather("b") == ["x", "x"]
        assert view.to_relation().same_content(
            Relation.base("r", ["a", "b"], []).__class__(
                rel.real, rel.virtual, (rel.rows[0], rel.rows[3])
            )
        )

    def test_paged_relation_pickles_to_plain_relation(self, paged):
        rel, page = paged
        clone = pickle.loads(pickle.dumps(page.relation()))
        assert type(clone) is Relation
        assert clone.same_content(rel)

    def test_paged_columnar_pickles_compact(self, paged):
        rel, page = paged
        view = page.columnar().view([1, 2])
        clone = pickle.loads(pickle.dumps(view))
        assert type(clone) is ColumnarRelation
        assert clone.gather("a") == [2, NULL]
