"""Unit tests for the struct-of-arrays substrate.

ColumnarRelation is the data layer under the vector engine: the tests
pin down the transpose round-trip, zero-copy view semantics (shared
backing lists, selection vectors), the memoized transpose cache, and
the schema-error surface.
"""

import pytest

from repro.relalg import Relation
from repro.relalg.columnar import (
    ColumnarRelation,
    columns_of,
    concat_columns,
)
from repro.relalg.nulls import NULL
from repro.relalg.schema import SchemaError


@pytest.fixture()
def rel():
    return Relation.base(
        "r", ["a", "b"], [(1, 10), (2, NULL), (NULL, 30), (2, 40)]
    )


@pytest.fixture()
def col(rel):
    return ColumnarRelation.from_relation(rel)


class TestTranspose:
    def test_round_trip(self, rel, col):
        assert col.to_relation().same_content(rel)
        assert list(col.real) == ["a", "b"]
        assert list(col.virtual) == ["#r"]
        assert len(col) == 4

    def test_column_order_preserved(self, col):
        assert col.gather("a") == [1, 2, NULL, 2]
        assert col.gather("b") == [10, NULL, 30, 40]

    def test_cache_returns_same_object(self, rel):
        assert ColumnarRelation.from_relation(rel) is (
            ColumnarRelation.from_relation(rel)
        )

    def test_cache_is_per_object(self, rel):
        twin = Relation.base(
            "r", ["a", "b"], [(1, 10), (2, NULL), (NULL, 30), (2, 40)]
        )
        a = ColumnarRelation.from_relation(rel)
        b = ColumnarRelation.from_relation(twin)
        assert a is not b
        assert a.gather("a") == b.gather("a")

    def test_empty_relation(self):
        empty = Relation.base("r", ["a"], [])
        col = ColumnarRelation.from_relation(empty)
        assert len(col) == 0
        assert col.to_relation().same_content(empty)


class TestViews:
    def test_view_is_zero_copy(self, col):
        v = col.view([0, 3])
        assert (
            v.physical_columns()["a"] is col.physical_columns()["a"]
        ), "views must share backing lists"
        assert len(v) == 2
        assert v.gather("a") == [1, 2]
        assert v.sel == [0, 3]

    def test_view_preserves_order_not_position(self, col):
        v = col.view([3, 0])
        assert v.gather("b") == [40, 10]

    def test_compact_materializes(self, col):
        v = col.view([1, 2])
        c = v.compact()
        assert c.sel is None
        assert len(c) == 2
        assert c.gather("a") == [2, NULL]
        # the original backing lists are untouched
        assert col.gather("a") == [1, 2, NULL, 2]

    def test_compact_on_full_view_is_identity(self, col):
        assert col.compact() is col

    def test_gather_full_view_is_backing_list(self, col):
        assert col.gather("a") is col.physical_columns()["a"]

    def test_null_mask_respects_view(self, col):
        assert col.null_mask("a") == [False, False, True, False]
        assert col.view([2, 0]).null_mask("a") == [True, False]


class TestSchemaDerivation:
    def test_with_schema_drops_columns(self, col):
        narrowed = col.with_schema(["b"], ["#r"])
        assert narrowed.all_attrs == ("b", "#r")
        assert narrowed.gather("b") is col.physical_columns()["b"]

    def test_with_schema_preserves_selection(self, col):
        v = col.view([0, 2]).with_schema(["a"], [])
        assert v.gather("a") == [1, NULL]

    def test_renamed(self, col):
        renamed = col.renamed({"a": "x"})
        assert list(renamed.real) == ["x", "b"]
        assert renamed.gather("x") is col.physical_columns()["a"]

    def test_renamed_unknown_attr_raises(self, col):
        with pytest.raises(SchemaError):
            col.renamed({"zzz": "x"})

    def test_overlapping_schemas_raise(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(["a"], ["a"], {"a": [1]}, 1)

    def test_mismatched_columns_raise(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(["a"], [], {"b": [1]}, 1)

    def test_ragged_columns_raise(self):
        with pytest.raises(SchemaError):
            ColumnarRelation(["a", "b"], [], {"a": [1], "b": [1, 2]}, 1)


class TestConcat:
    def test_missing_columns_null_padded(self):
        out = concat_columns(
            [{"a": [1, 2]}, {"a": [3], "b": [7]}], ["a", "b"]
        )
        assert out == {"a": [1, 2, 3], "b": [NULL, NULL, 7]}

    def test_inputs_not_mutated(self):
        left = {"a": [1]}
        concat_columns([left, {"a": [2]}], ["a"])
        assert left == {"a": [1]}

    def test_empty_parts(self):
        assert concat_columns([{}, {"a": [5]}], ["a"]) == {"a": [5]}

    def test_columns_of_coerces_iterables(self):
        cols = columns_of({"a": range(3)})
        assert cols == {"a": [0, 1, 2]}


class TestPickling:
    """The fallback (pickle) path ships columnar state over worker
    pipes; the payload must stay slim -- a narrow selection view over a
    wide backing store compacts before serializing, and per-process
    caches never ride along."""

    def test_view_pickles_compact(self):
        import pickle

        n = 5000
        base = ColumnarRelation(
            ["a", "b"], [], {"a": list(range(n)), "b": ["pad" * 8] * n}, n
        )
        view = base.view([0, n // 2, n - 1])
        full_size = len(pickle.dumps(base))
        view_size = len(pickle.dumps(view))
        # 3 of 5000 rows: the view payload must be a sliver, not a copy
        assert view_size < full_size / 100
        clone = pickle.loads(pickle.dumps(view))
        assert clone.gather("a") == [0, n // 2, n - 1]
        assert clone._sel is None  # arrives compacted

    def test_unpickled_round_trip_matches(self, rel, col):
        import pickle

        clone = pickle.loads(pickle.dumps(col.view([1, 3])))
        assert clone.gather("a") == [2, 2]
        assert clone.gather("b") == [NULL, 40]
        assert list(clone.real) == ["a", "b"]

    def test_transpose_cache_not_pickled(self, rel):
        import pickle

        col = ColumnarRelation.from_relation(rel)
        payload = pickle.dumps(col)
        # the weak-keyed transpose cache and memoized views are
        # process-local; nothing in the payload may reference them
        assert b"_TRANSPOSE_CACHE" not in payload
        clone = pickle.loads(payload)
        assert clone.to_relation().same_content(rel)
