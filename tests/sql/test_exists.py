"""EXISTS / NOT EXISTS: semi- and anti-join support end to end."""

import random

import pytest

from repro.exec import execute
from repro.expr import Database, evaluate
from repro.expr.nodes import SemiJoin
from repro.physical import compile_plan, run_plan
from repro.relalg import Relation
from repro.sql import SqlCatalog, SqlTranslationError, parse_select, translate


@pytest.fixture()
def setup():
    catalog = SqlCatalog(
        {"cust": ("ck", "cname"), "orders": ("ok", "ocust", "ototal")}
    )
    db = Database(
        {
            "cust": Relation.base(
                "cust", ["ck", "cname"], [(1, "a"), (2, "b"), (3, "c")]
            ),
            "orders": Relation.base(
                "orders",
                ["ok", "ocust", "ototal"],
                [(10, 1, 5), (11, 1, 9), (12, 3, 2)],
            ),
        }
    )
    return catalog, db


class TestExistsSemantics:
    def test_exists(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where exists "
            "(select ok from orders where orders.ocust = cust.ck)"
        )
        translation = translate(stmt, catalog)
        assert any(
            isinstance(n, SemiJoin) and not n.anti
            for n in translation.expr.walk()
        )
        out = evaluate(translation.expr, db)
        assert sorted(r["cust_cname"] for r in out) == ["a", "c"]

    def test_not_exists(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where not exists "
            "(select ok from orders where orders.ocust = cust.ck)"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["cust_cname"] for r in out) == ["b"]

    def test_exists_with_local_filter(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where exists "
            "(select ok from orders where orders.ocust = cust.ck "
            "and orders.ototal > 4)"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        # customer 3's only order has total 2
        assert sorted(r["cust_cname"] for r in out) == ["a"]

    def test_exists_combined_with_plain_where(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where ck > 1 and exists "
            "(select ok from orders where orders.ocust = cust.ck)"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["cust_cname"] for r in out) == ["c"]

    def test_all_engines_agree(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where not exists "
            "(select ok from orders where orders.ocust = cust.ck "
            "and orders.ototal > 4)"
        )
        expr = translate(stmt, catalog).expr
        want = evaluate(expr, db)
        assert execute(expr, db).same_content(want)
        assert run_plan(compile_plan(expr), db).same_content(want)

    def test_semi_join_physical_operator_label(self, setup):
        from repro.physical import explain_analyze

        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where exists "
            "(select ok from orders where orders.ocust = cust.ck)"
        )
        text = explain_analyze(
            compile_plan(translate(stmt, catalog).expr), db
        )
        assert "HashSemiJoin" in text


class TestExistsOptimization:
    def test_optimizer_preserves_exists_semantics(self, setup):
        from repro.optimizer import Statistics, optimize

        catalog, db = setup
        stmt = parse_select(
            "select cname from cust where exists "
            "(select ok from orders where orders.ocust = cust.ck)"
        )
        expr = translate(stmt, catalog).expr
        stats = Statistics.from_database(db)
        result = optimize(expr, stats, max_plans=100)
        assert evaluate(result.best, db).same_content(evaluate(expr, db))


class TestExistsErrors:
    def test_uncorrelated_rejected(self, setup):
        catalog, _ = setup
        with pytest.raises(SqlTranslationError, match="correlated"):
            translate(
                parse_select(
                    "select cname from cust where exists "
                    "(select ok from orders where ototal > 1)"
                ),
                catalog,
            )

    def test_aggregating_subquery_rejected(self, setup):
        catalog, _ = setup
        with pytest.raises(SqlTranslationError, match="aggregate"):
            translate(
                parse_select(
                    "select cname from cust where exists "
                    "(select count(*) from orders where orders.ocust = cust.ck "
                    "group by ocust)"
                ),
                catalog,
            )


class TestSemiJoinNode:
    def test_randomized_against_relalg(self):
        from repro.expr import BaseRel
        from repro.expr.predicates import eq
        from repro.workloads.random_db import random_database

        a = BaseRel("r1", ("r1_a0", "r1_a1"))
        b = BaseRel("r2", ("r2_a0", "r2_a1"))
        rng = random.Random(5)
        for anti in (False, True):
            q = SemiJoin(a, b, eq("r1_a0", "r2_a0"), anti)
            for _ in range(40):
                db = random_database(rng, ("r1", "r2"), null_probability=0.2)
                want = evaluate(q, db)
                assert execute(q, db).same_content(want)
                assert run_plan(compile_plan(q), db).same_content(want)
