"""UNION ALL: expr node, SQL surface, engine agreement."""

import pytest

from repro.exec import execute
from repro.expr import Database, evaluate
from repro.expr.nodes import BaseRel, ExprError, UnionAll
from repro.physical import compile_plan, run_plan
from repro.relalg import Relation
from repro.sql import SqlCatalog, SqlTranslationError, parse_select, translate


@pytest.fixture()
def setup():
    catalog = SqlCatalog(
        {"t1": ("k", "v"), "t2": ("k2", "w"), "t3": ("k", "v")}
    )
    db = Database(
        {
            "t1": Relation.base("t1", ["k", "v"], [(1, "a"), (2, "b")]),
            "t2": Relation.base("t2", ["k2", "w"], [(2, "b"), (3, "c")]),
            "t3": Relation.base("t3", ["k", "v"], [(1, "a")]),
        }
    )
    return catalog, db


class TestUnionAllNode:
    def test_bag_semantics(self):
        a = BaseRel("x", ("c1", "c2"))
        b_raw = BaseRel("y", ("d1", "d2"))
        from repro.expr import Rename

        b = Rename(b_raw, (("d1", "c1"), ("d2", "c2")))
        u = UnionAll(a, b)
        db = Database(
            {
                "x": Relation.base("x", ["c1", "c2"], [(1, 2)]),
                "y": Relation.base("y", ["d1", "d2"], [(1, 2), (3, 4)]),
            }
        )
        out = evaluate(u, db)
        assert len(out) == 3  # duplicates kept

    def test_incompatible_columns_rejected(self):
        a = BaseRel("x", ("c1",))
        b = BaseRel("y", ("d1",))
        with pytest.raises(ExprError, match="same columns"):
            UnionAll(a, b)

    def test_shared_base_rejected(self):
        a = BaseRel("x", ("c1",))
        with pytest.raises(ExprError):
            UnionAll(a, a)


class TestSqlUnionAll:
    def test_basic(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select k, v from t1 union all select k, v from t3"
        )
        translation = translate(stmt, catalog)
        out = evaluate(translation.expr, db)
        assert len(out) == 3
        assert translation.exposed() == ("k", "v")

    def test_column_alignment_by_position(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select k, v from t1 union all select k2 as k, w as v from t2"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        values = sorted((r["t1_k"], r["t1_v"]) for r in out)
        assert values == [(1, "a"), (2, "b"), (2, "b"), (3, "c")]

    def test_mismatched_columns_rejected(self, setup):
        catalog, _ = setup
        with pytest.raises(SqlTranslationError, match="column lists differ"):
            translate(
                parse_select("select k, v from t1 union all select k2 from t2"),
                catalog,
            )

    def test_chained_unions(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select k, v from t1 union all select k, v from t3 "
            "union all select k2 as k, w as v from t2"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        assert len(out) == 5

    def test_engines_agree(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select k, v from t1 union all select k2 as k, w as v from t2"
        )
        expr = translate(stmt, catalog).expr
        want = evaluate(expr, db)
        assert execute(expr, db).same_content(want)
        assert run_plan(compile_plan(expr), db).same_content(want)

    def test_self_union_needs_rename(self, setup):
        catalog, _ = setup
        with pytest.raises(SqlTranslationError, match="footnote 5"):
            translate(
                parse_select("select k, v from t1 union all select k, v from t1"),
                catalog,
            )
