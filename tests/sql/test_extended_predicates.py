"""IS NULL / IN / BETWEEN support and the null-tolerance discipline."""

import pytest

from repro.expr import Database, Join, Select, evaluate
from repro.expr.nodes import BaseRel, ExprError
from repro.expr.predicates import InList, IsNull, Col, eq
from repro.relalg import Relation
from repro.relalg.nulls import NULL, Truth
from repro.relalg.row import Row
from repro.sql import SqlCatalog, SqlParseError, parse_select, translate


@pytest.fixture()
def setup():
    catalog = SqlCatalog({"t": ("k", "v"), "u": ("k2", "w")})
    db = Database(
        {
            "t": Relation.base(
                "t", ["k", "v"], [(1, 10), (2, NULL), (3, 30), (4, NULL)]
            ),
            "u": Relation.base("u", ["k2", "w"], [(1, "a"), (9, "b")]),
        }
    )
    return catalog, db


class TestPredicateAtoms:
    def test_is_null_semantics(self):
        p = IsNull(Col("a"))
        assert p.evaluate(Row({"a": NULL})) is Truth.TRUE
        assert p.evaluate(Row({"a": 1})) is Truth.FALSE
        q = IsNull(Col("a"), negated=True)
        assert q.evaluate(Row({"a": NULL})) is Truth.FALSE
        assert q.evaluate(Row({"a": 1})) is Truth.TRUE

    def test_is_null_is_tolerant(self):
        assert not IsNull(Col("a")).null_intolerant
        assert eq("a", "b").null_intolerant

    def test_in_list_semantics(self):
        p = InList(Col("a"), (1, 3))
        assert p.evaluate(Row({"a": 1})) is Truth.TRUE
        assert p.evaluate(Row({"a": 2})) is Truth.FALSE
        assert p.evaluate(Row({"a": NULL})) is Truth.UNKNOWN
        assert p.null_intolerant


class TestJoinDiscipline:
    def test_join_rejects_tolerant_predicate(self):
        a = BaseRel("a", ("ax",))
        b = BaseRel("b", ("bx",))
        from repro.expr.predicates import make_conjunction
        from repro.expr import JoinKind

        with pytest.raises(ExprError, match="null in-tolerant"):
            Join(
                JoinKind.LEFT,
                a,
                b,
                make_conjunction([eq("ax", "bx"), IsNull(Col("bx"))]),
            )

    def test_select_accepts_tolerant_predicate(self):
        a = BaseRel("a", ("ax",))
        Select(a, IsNull(Col("ax")))  # no error


class TestSqlSurface:
    def test_is_null_where(self, setup):
        catalog, db = setup
        stmt = parse_select("select k from t where v is null")
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["t_k"] for r in out) == [2, 4]

    def test_is_not_null(self, setup):
        catalog, db = setup
        stmt = parse_select("select k from t where v is not null")
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["t_k"] for r in out) == [1, 3]

    def test_in_list(self, setup):
        catalog, db = setup
        stmt = parse_select("select k from t where k in (1, 3, 9)")
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["t_k"] for r in out) == [1, 3]

    def test_between(self, setup):
        catalog, db = setup
        stmt = parse_select("select k from t where k between 2 and 3")
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["t_k"] for r in out) == [2, 3]

    def test_between_then_and(self, setup):
        catalog, db = setup
        stmt = parse_select(
            "select k from t where k between 1 and 3 and v is not null"
        )
        out = evaluate(translate(stmt, catalog).expr, db)
        assert sorted(r["t_k"] for r in out) == [1, 3]

    def test_is_null_finds_antijoin_rows(self, setup):
        """The classic outer-join + IS NULL anti-join idiom: the atom

        must be applied ABOVE the join, never merged into the ON.
        """
        catalog, db = setup
        stmt = parse_select(
            "select k from t left outer join u on t.k = u.k2 "
            "where w is null"
        )
        translation = translate(stmt, catalog)
        out = evaluate(translation.expr, db)
        # rows 2,3,4 have no u partner (w padded NULL); none has w NULL
        assert sorted(r["t_k"] for r in out) == [2, 3, 4]
        # the IS NULL must not have been embedded in any join predicate
        for node in translation.expr.walk():
            if isinstance(node, Join):
                assert all(a.null_intolerant for a in node.predicate.atoms())

    def test_in_list_rejects_non_literal(self):
        with pytest.raises(SqlParseError):
            parse_select("select k from t where k in (v)")

    def test_fast_executor_handles_new_atoms(self, setup):
        from repro.exec import execute

        catalog, db = setup
        stmt = parse_select(
            "select k from t left outer join u on t.k = u.k2 "
            "where w is null and k in (2, 3)"
        )
        expr = translate(stmt, catalog).expr
        assert execute(expr, db).same_content(evaluate(expr, db))
