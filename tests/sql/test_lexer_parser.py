"""Lexer and parser tests."""

import pytest

from repro.sql.ast import (
    AggregateCall,
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    CreateViewStmt,
    JoinRef,
    Literal,
    SubqueryRef,
    SubquerySelect,
    TableRef,
)
from repro.sql.lexer import SqlLexError, tokenize
from repro.sql.parser import SqlParseError, parse_select, parse_statements


class TestLexer:
    def test_keywords_lowercased(self):
        kinds = [(t.kind, t.value) for t in tokenize("SELECT a FROM t")]
        assert kinds[0] == ("kw", "select")
        assert kinds[1] == ("ident", "a")
        assert kinds[2] == ("kw", "from")

    def test_symbols_and_numbers(self):
        values = [t.value for t in tokenize("a >= 10 <> 2.5") if t.kind != "eof"]
        assert values == ["a", ">=", "10", "<>", "2.5"]

    def test_strings(self):
        tokens = tokenize("x = 'BANKRUPT'")
        assert tokens[2].kind == "string" and tokens[2].value == "BANKRUPT"

    def test_comments_skipped(self):
        tokens = tokenize("select a -- comment\nfrom t")
        assert len([t for t in tokens if t.kind != "eof"]) == 4

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("x = 'oops")

    def test_bad_character(self):
        with pytest.raises(SqlLexError):
            tokenize("a ? b")


class TestParser:
    def test_simple_select(self):
        stmt = parse_select("select a, b from t")
        assert len(stmt.items) == 2
        assert stmt.from_items == (TableRef("t", None),)

    def test_star_and_distinct(self):
        stmt = parse_select("select distinct * from t")
        assert stmt.distinct
        assert stmt.items[0].expression == "*"

    def test_aliases(self):
        stmt = parse_select("select a as x, b y from t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "u"

    def test_equals_style_alias(self):
        """The paper writes 'c = count(r1)' in SELECT lists."""
        stmt = parse_select("select a, c = count(x) from t group by a")
        assert stmt.items[1].alias == "c"
        assert isinstance(stmt.items[1].expression, AggregateCall)

    def test_join_chain(self):
        stmt = parse_select(
            "select a from t1 left outer join t2 on t1.x = t2.x "
            "join t3 on t2.y = t3.y"
        )
        join = stmt.from_items[0]
        assert isinstance(join, JoinRef) and join.kind == "inner"
        assert isinstance(join.left, JoinRef) and join.left.kind == "left"

    def test_full_and_right_joins(self):
        stmt = parse_select(
            "select a from t1 full outer join t2 on t1.x = t2.x"
        )
        assert stmt.from_items[0].kind == "full"
        stmt = parse_select("select a from t1 right join t2 on t1.x = t2.x")
        assert stmt.from_items[0].kind == "right"

    def test_where_conjunction(self):
        stmt = parse_select("select a from t where a = 1 and b < c and c <> d")
        assert isinstance(stmt.where, AndExpr)
        assert len(stmt.where.parts) == 3

    def test_group_by_having(self):
        stmt = parse_select(
            "select a, count(*) as n from t group by a having a > 2"
        )
        assert stmt.group_by == (ColumnRef(None, "a"),)
        assert isinstance(stmt.having, ComparisonExpr)

    def test_aggregates(self):
        stmt = parse_select(
            "select count(*), count(distinct a), sum(b), min(c) from t"
        )
        calls = [i.expression for i in stmt.items]
        assert calls[0] == AggregateCall("count", None, False)
        assert calls[1].distinct

    def test_subquery_in_from(self):
        stmt = parse_select("select a from (select a from t) v")
        sub = stmt.from_items[0]
        assert isinstance(sub, SubqueryRef) and sub.alias == "v"

    def test_scalar_subquery_in_where(self):
        stmt = parse_select(
            "select a from t where b > (select count(*) from u where u.k = t.k)"
        )
        assert isinstance(stmt.where.right, SubquerySelect)

    def test_arithmetic(self):
        stmt = parse_select("select a from t where a < 2 * b")
        comparison = stmt.where
        assert str(comparison.right) == "(2 * b)"

    def test_create_view_script(self):
        stmts = parse_statements(
            "create view v as select a from t; select a from v;"
        )
        assert isinstance(stmts[0], CreateViewStmt)
        assert stmts[0].name == "v"
        assert len(stmts) == 2

    def test_literal_types(self):
        stmt = parse_select("select a from t where a = 'x' and b = 3")
        parts = stmt.where.parts
        assert parts[0].right == Literal("x")
        assert parts[1].right == Literal(3)

    def test_parse_errors(self):
        with pytest.raises(SqlParseError):
            parse_select("select from t")
        with pytest.raises(SqlParseError):
            parse_select("select a from t where = b")
        with pytest.raises(SqlParseError):
            parse_select("select a from t group a")
