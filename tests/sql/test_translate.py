"""SQL translation tests: parse, translate, evaluate, compare."""

import random

import pytest

from repro.expr import Database, evaluate
from repro.relalg import Relation
from repro.sql import SqlCatalog, SqlTranslationError, parse_select, parse_statements, translate
from repro.sql.ast import CreateViewStmt


@pytest.fixture()
def catalog():
    return SqlCatalog(
        {
            "emp": ("eid", "dept", "salary"),
            "dept": ("did", "dname"),
            "bonus": ("bid", "beid", "amount"),
        }
    )


@pytest.fixture()
def db():
    return Database(
        {
            "emp": Relation.base(
                "emp",
                ["eid", "dept", "salary"],
                [(1, 10, 100), (2, 10, 200), (3, 20, 300), (4, 99, 50)],
            ),
            "dept": Relation.base(
                "dept", ["did", "dname"], [(10, "eng"), (20, "ops"), (30, "hr")]
            ),
            "bonus": Relation.base(
                "bonus", ["bid", "beid", "amount"], [(1, 1, 5), (2, 1, 7), (3, 3, 9)]
            ),
        }
    )


def run(sql, catalog, db):
    result = translate(parse_select(sql), catalog)
    return evaluate(result.expr, db), result


class TestBasics:
    def test_projection(self, catalog, db):
        out, result = run("select eid from emp", catalog, db)
        assert sorted(r["emp_eid"] for r in out) == [1, 2, 3, 4]
        assert result.exposed() == ("eid",)

    def test_star(self, catalog, db):
        out, _ = run("select * from dept", catalog, db)
        assert len(out) == 3 and set(out.real) == {"dept_did", "dept_dname"}

    def test_where_constant(self, catalog, db):
        out, _ = run("select eid from emp where salary > 150", catalog, db)
        assert sorted(r["emp_eid"] for r in out) == [2, 3]

    def test_distinct(self, catalog, db):
        out, _ = run("select distinct dept from emp", catalog, db)
        assert len(out) == 3

    def test_comma_join_where(self, catalog, db):
        out, _ = run(
            "select eid, dname from emp, dept where emp.dept = dept.did",
            catalog,
            db,
        )
        assert len(out) == 3

    def test_where_pushed_into_join(self, catalog, db):
        from repro.expr import Join
        from repro.expr.predicates import TRUE

        _, result = run(
            "select eid from emp, dept where emp.dept = dept.did",
            catalog,
            db,
        )
        joins = [n for n in result.expr.walk() if isinstance(n, Join)]
        assert any(n.predicate is not TRUE for n in joins)

    def test_explicit_joins(self, catalog, db):
        out, _ = run(
            "select eid, dname from emp left outer join dept on emp.dept = dept.did",
            catalog,
            db,
        )
        assert len(out) == 4  # eid 4 survives padded

    def test_full_outer_join(self, catalog, db):
        out, _ = run(
            "select eid, dname from emp full outer join dept on emp.dept = dept.did",
            catalog,
            db,
        )
        assert len(out) == 5  # 3 matches + emp 4 + dept 30

    def test_aliases(self, catalog, db):
        out, _ = run(
            "select e.eid from emp e join dept d on e.dept = d.did",
            catalog,
            db,
        )
        assert len(out) == 3

    def test_group_by(self, catalog, db):
        out, _ = run(
            "select dept, count(*) as n, sum(salary) as s from emp group by dept",
            catalog,
            db,
        )
        rows = {r["emp_dept"]: (r["n"], r["s"]) for r in out}
        assert rows[10] == (2, 300)

    def test_having(self, catalog, db):
        out, _ = run(
            "select dept, count(*) as n from emp group by dept having n > 1",
            catalog,
            db,
        )
        assert len(out) == 1

    def test_global_aggregate(self, catalog, db):
        out, _ = run("select count(*) as n from emp", catalog, db)
        assert out.rows[0]["n"] == 4

    def test_arithmetic_predicate(self, catalog, db):
        out, _ = run("select eid from emp where salary < 2 * dept", catalog, db)
        # salary < 2*dept: (4: 50 < 198) only
        assert sorted(r["emp_eid"] for r in out) == [4]


class TestViewsAndSubqueries:
    def test_subquery_in_from(self, catalog, db):
        out, _ = run(
            "select v.n from (select dept, count(*) as n from emp group by dept) v",
            catalog,
            db,
        )
        assert sorted(r["v_n"] for r in out) == [1, 1, 2]

    def test_view_expansion(self, catalog, db):
        stmts = parse_statements(
            """
            create view busy as
              select dept, count(*) as n from emp group by dept;
            select b.dept, b.n from busy b;
            """
        )
        catalog.add_view(stmts[0])
        result = translate(stmts[1], catalog)
        out = evaluate(result.expr, db)
        assert len(out) == 3

    def test_view_joined_with_table(self, catalog, db):
        stmts = parse_statements(
            """
            create view busy as
              select dept as d, count(*) as n from emp group by dept;
            select dname, n from busy left outer join dept on busy.d = dept.did;
            """
        )
        catalog.add_view(stmts[0])
        result = translate(stmts[1], catalog)
        out = evaluate(result.expr, db)
        assert len(out) == 3

    def test_correlated_count_subquery(self, catalog, db):
        """Join-aggregate query routed through unnesting."""
        out, _ = run(
            "select eid from emp where salary > "
            "(select count(*) from bonus where bonus.beid = emp.eid)",
            catalog,
            db,
        )
        # every emp qualifies: salaries far exceed bonus counts
        assert len(out) == 4

    def test_correlated_count_zero_matches(self, catalog, db):
        out, _ = run(
            "select eid from emp where dept = "
            "(select count(*) from bonus where bonus.beid = emp.eid)",
            catalog,
            db,
        )
        # dept = count: nobody (depts are 10/20/99, counts 0..2)
        assert len(out) == 0


class TestErrors:
    def test_unknown_column(self, catalog, db):
        with pytest.raises(SqlTranslationError):
            run("select nope from emp", catalog, db)

    def test_self_join_unsupported(self, catalog):
        with pytest.raises(SqlTranslationError, match="renamed"):
            translate(
                parse_select("select bid from bonus b1, bonus b2"), catalog
            )

    def test_ambiguous_column(self, catalog):
        with pytest.raises(SqlTranslationError, match="ambiguous"):
            translate(
                parse_select(
                    "select did from dept, (select dept as did from emp) v"
                ),
                catalog,
            )

    def test_non_key_select_under_group_by(self, catalog):
        with pytest.raises(SqlTranslationError, match="GROUP BY"):
            translate(
                parse_select("select salary, count(*) from emp group by dept"),
                catalog,
            )

    def test_duplicate_binding(self, catalog):
        with pytest.raises(SqlTranslationError, match="duplicate"):
            translate(parse_select("select eid from emp, emp"), catalog)
