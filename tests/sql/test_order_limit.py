"""ORDER BY / LIMIT: parsing, translation, and CLI presentation."""

import io

import pytest

from repro.cli import run_script
from repro.expr import Database
from repro.relalg import Relation
from repro.sql import SqlCatalog, SqlTranslationError, parse_select, parse_statements, translate


@pytest.fixture()
def setup():
    catalog = SqlCatalog({"t": ("k", "v")})
    db = Database(
        {
            "t": Relation.base(
                "t", ["k", "v"], [(3, "c"), (1, "a"), (2, "b"), (4, "d")]
            )
        }
    )
    return catalog, db


class TestParsing:
    def test_order_by_clause(self):
        stmt = parse_select("select k from t order by k desc, v")
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0][1] is True  # descending
        assert stmt.order_by[1][1] is False

    def test_limit(self):
        stmt = parse_select("select k from t limit 5")
        assert stmt.limit == 5

    def test_combined_with_group_by(self):
        stmt = parse_select(
            "select k, n = count(*) from t group by k order by n desc limit 2"
        )
        assert stmt.limit == 2 and stmt.order_by


class TestTranslation:
    def test_order_attrs_resolved(self, setup):
        catalog, _ = setup
        translation = translate(
            parse_select("select k, v from t order by v desc"), catalog
        )
        assert translation.order_by == (("t_v", True),)

    def test_order_by_output_alias(self, setup):
        catalog, _ = setup
        translation = translate(
            parse_select("select k, n = count(*) from t group by k order by n"),
            catalog,
        )
        assert translation.order_by[0][0] == "n"

    def test_order_by_missing_column_rejected(self, setup):
        catalog, _ = setup
        with pytest.raises(SqlTranslationError, match="not in the result"):
            translate(parse_select("select k from t order by v"), catalog)

    def test_views_may_not_order(self, setup):
        catalog, _ = setup
        stmts = parse_statements(
            "create view w as select k from t order by k;"
            "select k from w;"
        )
        catalog.add_view(stmts[0])
        with pytest.raises(SqlTranslationError, match="ORDER BY"):
            translate(stmts[1], catalog)


class TestCliPresentation:
    def test_rows_ordered_and_limited(self, setup):
        catalog, db = setup
        out = io.StringIO()
        run_script(
            "select k, v from t order by k desc limit 2;", db, catalog, out=out
        )
        lines = [l for l in out.getvalue().splitlines() if "|" in l]
        # header, then rows 4 and 3
        assert lines[1].startswith("4")
        assert lines[2].startswith("3")
        assert "2 row(s)" in out.getvalue()

    def test_ascending_default(self, setup):
        catalog, db = setup
        out = io.StringIO()
        run_script("select k from t order by k limit 1;", db, catalog, out=out)
        lines = [l for l in out.getvalue().splitlines() if l and "|" not in l and "row" not in l and "-" not in l]
        assert "1" in out.getvalue().splitlines()[2]
