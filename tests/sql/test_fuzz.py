"""SQL fuzzing: randomly generated statements through the whole stack.

Statements are generated valid-by-construction over a fixed catalog;
each one must parse, translate, and evaluate identically under the
reference interpreter, the hash engine, and the physical layer.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.exec import execute
from repro.expr import Database, evaluate
from repro.physical import compile_plan, run_plan
from repro.relalg import Relation
from repro.sql import SqlCatalog, parse_select, translate

TABLES = {
    "ta": ("a1", "a2", "a3"),
    "tb": ("b1", "b2", "b3"),
    "tc": ("c1", "c2", "c3"),
}


def make_catalog():
    return SqlCatalog(dict(TABLES))


def make_db(rng):
    db = Database()
    for name, cols in TABLES.items():
        rows = [
            tuple(rng.choice((0, 1, 2, 3)) for _ in cols)
            for _ in range(rng.randint(0, 6))
        ]
        db.add(name, Relation.base(name, list(cols), rows))
    return db


class SqlFuzzer:
    """Generates valid SELECT statements over the fixed catalog."""

    JOINS = ("join", "left outer join", "right outer join", "full outer join")
    OPS = ("=", "<", ">", "<>", "<=", ">=")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def statement(self) -> str:
        tables = self.rng.sample(sorted(TABLES), self.rng.randint(1, 3))
        from_clause = tables[0]
        scope_cols = [f"{tables[0]}.{c}" for c in TABLES[tables[0]]]
        for i, name in enumerate(tables[1:], start=1):
            prev_cols = list(scope_cols)
            new_cols = [f"{name}.{c}" for c in TABLES[name]]
            join = self.rng.choice(self.JOINS)
            on = self._atom(prev_cols, new_cols)
            extra = (
                " and " + self._atom(prev_cols, new_cols)
                if self.rng.random() < 0.4
                else ""
            )
            from_clause = f"({from_clause} {join} {name} on {on}{extra})"
            scope_cols += new_cols

        where = ""
        if self.rng.random() < 0.6:
            atoms = [self._where_atom(scope_cols)]
            while self.rng.random() < 0.3:
                atoms.append(self._where_atom(scope_cols))
            where = " where " + " and ".join(atoms)

        if self.rng.random() < 0.4:
            key = self.rng.choice(scope_cols)
            select = f"{key}, n = count(*)"
            tail = f" group by {key}"
            if self.rng.random() < 0.5:
                tail += f" having n >= {self.rng.randint(0, 2)}"
        else:
            cols = self.rng.sample(scope_cols, min(2, len(scope_cols)))
            select = ", ".join(cols)
            tail = ""
        return f"select {select} from {from_clause}{where}{tail}"

    def _atom(self, left_cols, right_cols) -> str:
        return (
            f"{self.rng.choice(left_cols)} {self.rng.choice(self.OPS)} "
            f"{self.rng.choice(right_cols)}"
        )

    def _where_atom(self, cols) -> str:
        col = self.rng.choice(cols)
        roll = self.rng.random()
        if roll < 0.2:
            return f"{col} is null" if self.rng.random() < 0.5 else f"{col} is not null"
        if roll < 0.4:
            values = ", ".join(
                str(self.rng.randint(0, 3))
                for _ in range(self.rng.randint(1, 3))
            )
            return f"{col} in ({values})"
        if roll < 0.5:
            lo = self.rng.randint(0, 2)
            return f"{col} between {lo} and {lo + self.rng.randint(0, 2)}"
        return f"{col} {self.rng.choice(self.OPS)} {self.rng.randint(0, 3)}"


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_fuzzed_statements_agree_across_engines(seed):
    rng = random.Random(seed)
    fuzzer = SqlFuzzer(rng)
    sql = fuzzer.statement()
    catalog = make_catalog()
    translation = translate(parse_select(sql), catalog)
    db = make_db(rng)
    want = evaluate(translation.expr, db)
    assert execute(translation.expr, db).same_content(want), sql
    plan = compile_plan(translation.expr)
    assert run_plan(plan, db).same_content(want), sql


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_fuzzed_statements_survive_optimization(seed):
    from repro.optimizer import Statistics, optimize

    rng = random.Random(seed)
    fuzzer = SqlFuzzer(rng)
    sql = fuzzer.statement()
    catalog = make_catalog()
    translation = translate(parse_select(sql), catalog)
    db = make_db(rng)
    stats = Statistics.from_database(db)
    result = optimize(translation.expr, stats, max_plans=120)
    want = evaluate(translation.expr, db)
    assert evaluate(result.best, db).same_content(want), sql
