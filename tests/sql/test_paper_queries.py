"""The paper's own queries, written in SQL and run end to end."""

import random

import pytest

from repro.expr import Database, evaluate
from repro.relalg import Relation
from repro.sql import SqlCatalog, parse_statements, translate


class TestQuery1:
    """Section 1.1 Query 1: a LOJ predicate on an aggregated view column."""

    def setup_method(self):
        self.catalog = SqlCatalog(
            {
                "r1": ("r1_b", "r1_c"),
                "r2": ("r2_b", "r2_d"),
                "r3": ("r3_a", "r3_b"),
                "r4": ("r4_b",),
            }
        )
        self.script = """
        create view v1 as
          select r1.r1_c as a, r2.r2_d as b, c = count(*)
          from r1, r2
          where r1.r1_b = r2.r2_b
          group by r1.r1_c, r2.r2_d;
        select r3.r3_a, r4.r4_b, v1.b
        from (v1 left outer join r3 on r3.r3_b > v1.c), r4
        where r4.r4_b = v1.b;
        """

    def make_db(self, rng):
        def rows(n, k):
            return [tuple(rng.randint(0, 2) for _ in range(k)) for _ in range(n)]

        return Database(
            {
                "r1": Relation.base("r1", ["r1_b", "r1_c"], rows(rng.randint(0, 4), 2)),
                "r2": Relation.base("r2", ["r2_b", "r2_d"], rows(rng.randint(0, 4), 2)),
                "r3": Relation.base("r3", ["r3_a", "r3_b"], rows(rng.randint(0, 3), 2)),
                "r4": Relation.base("r4", ["r4_b"], rows(rng.randint(0, 3), 1)),
            }
        )

    def test_translates_and_runs(self):
        statements = parse_statements(self.script)
        self.catalog.add_view(statements[0])
        result = translate(statements[1], self.catalog)
        rng = random.Random(111)
        out = evaluate(result.expr, self.make_db(rng))
        assert set(result.exposed()) == {"r3_a", "r4_b", "b"}

    def test_matches_manual_evaluation(self):
        """Cross-check against a direct nested-loop computation."""
        statements = parse_statements(self.script)
        self.catalog.add_view(statements[0])
        result = translate(statements[1], self.catalog)
        rng = random.Random(17)
        for _ in range(20):
            db = self.make_db(rng)
            got = evaluate(result.expr, db)
            want = self._manual(db)
            got_bag = sorted(
                (r["v1_b"], r["r4_r4_b"]) for r in got
            )
            assert got_bag == sorted((b, f) for (_, f, b) in want), (
                got.to_text()
            )

    def _manual(self, db):
        # V1: group joined r1 x r2 (r1_b = r2_b) by (r1_c, r2_d), count rows
        groups = {}
        for t1 in db["r1"]:
            for t2 in db["r2"]:
                if t1["r1_b"] == t2["r2_b"]:
                    key = (t1["r1_c"], t2["r2_d"])
                    groups[key] = groups.get(key, 0) + 1
        v1 = [(a, b, c) for (a, b), c in groups.items()]
        # LOJ v1 with r3 on r3_b > v1.c, keep (r3_a, v1.b) pairs
        joined = []
        for (a, b, c) in v1:
            matches = [t3 for t3 in db["r3"] if t3["r3_b"] > c]
            if matches:
                joined.extend((t3["r3_a"], b) for t3 in matches)
            else:
                joined.append((None, b))
        # join with r4 on r4_b = v1.b
        out = []
        for (a3, b) in joined:
            for t4 in db["r4"]:
                if t4["r4_b"] == b:
                    out.append((a3, t4["r4_b"], b))
        return out


class TestExample11SQL:
    """Example 1.1 written in SQL, compared to the workload's algebra."""

    def test_sql_matches_workload_expression(self):
        from repro.workloads.supplier import supplier_database, supplier_query

        catalog = SqlCatalog(
            {
                "agg94": ("agg94_supkey", "agg94_partkey", "agg94_qty"),
                "detail95": ("d95_supkey", "d95_partkey", "d95_date", "d95_qty"),
                "supdetail": ("sup_supkey", "sup_rating", "sup_info"),
            }
        )
        script = """
        create view v2 as
          select a.agg94_supkey as supkey, a.agg94_qty as qty,
                 a.agg94_partkey as partkey
          from agg94 a, supdetail b
          where a.agg94_supkey = b.sup_supkey and b.sup_rating = 'BANKRUPT';
        create view v3 as
          select d95_supkey as supkey, d95_partkey as partkey,
                 qty95 = count(*)
          from detail95
          group by d95_supkey, d95_partkey;
        select v2.supkey, v2.partkey, v2.qty, v3.qty95
        from v2 left outer join v3
          on v2.supkey = v3.supkey and v2.partkey = v3.partkey
             and v2.qty < 2 * v3.qty95;
        """
        statements = parse_statements(script)
        catalog.add_view(statements[0])
        catalog.add_view(statements[1])
        result = translate(statements[2], catalog)

        rng = random.Random(5)
        for _ in range(3):
            db = supplier_database(rng, n_suppliers=5, n_parts=3, detail_rows=25)
            got = evaluate(result.expr, db)
            # compare to the algebra version built by the workload module
            from repro.expr import Project, Select
            from repro.expr.predicates import Comparison, Col, Const

            alg = supplier_query()
            from repro.expr import evaluate as ev

            want_full = ev(alg, db)
            got_bag = sorted(
                (
                    r["v2_supkey"],
                    r["v2_partkey"],
                    r["v2_qty"],
                    r["v3_qty95"],
                )
                for r in got
            )
            want_bag = sorted(
                (
                    r["agg94_supkey"],
                    r["agg94_partkey"],
                    r["agg94_qty"],
                    r["qty95"],
                )
                for r in want_full
            )
            assert got_bag == want_bag
