#!/usr/bin/env python3
"""Documentation lint: dead intra-repo links and unnamed code fences.

Scans ``README.md`` and every ``docs/*.md`` for

* **dead intra-repo links** -- ``[text](target)`` where ``target`` is
  a relative path (external ``http(s)``/``mailto`` URLs and pure
  ``#anchor`` links are skipped) that does not exist on disk relative
  to the file containing it;
* **unnamed code fences** -- every opening ``` fence must carry an
  info string (``python``, ``bash``, ``text``, ...), so renderers
  highlight consistently and snippets stay greppable by language.

Exit status is non-zero when any problem is found; each problem is
reported as ``path:line: message``.  Run from the repo root (CI's
``docs-check`` job does) or from anywhere -- paths resolve relative
to this file's repository.

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- good enough for the markdown these docs use;
#: images (``![alt](src)``) match too, which is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*```(.*)$")
_CODE_SPAN = re.compile(r"`[^`]*`")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path, lines: list[str]) -> list[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:  # code samples may show url-ish text; skip them
            continue
        # inline code spans hold algebra like σ*_p[r1,…,rn](r), which
        # the link regex would misread -- blank them out first
        for target in _LINK.findall(_CODE_SPAN.sub("", line)):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure #anchor
                continue
            resolved = (path.parent / target).resolve()
            if REPO not in resolved.parents and resolved != REPO:
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: link escapes the "
                    f"repository: {target}"
                )
            elif not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: dead link: {target}"
                )
    return problems


def check_fences(path: Path, lines: list[str]) -> list[str]:
    problems = []
    open_fence_line = None
    for lineno, line in enumerate(lines, 1):
        match = _FENCE.match(line)
        if not match:
            continue
        if open_fence_line is None:
            open_fence_line = lineno
            if not match.group(1).strip():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: unnamed code fence "
                    "(add a language, e.g. ```python or ```text)"
                )
        else:
            if match.group(1).strip():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: closing fence "
                    "carries text (missing blank ``` for the previous "
                    f"fence opened at line {open_fence_line}?)"
                )
            open_fence_line = None
    if open_fence_line is not None:
        problems.append(
            f"{path.relative_to(REPO)}:{open_fence_line}: unclosed code fence"
        )
    return problems


def main() -> int:
    problems: list[str] = []
    files = doc_files()
    for path in files:
        lines = path.read_text().splitlines()
        problems += check_links(path, lines)
        problems += check_fences(path, lines)
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not problems else f"{len(problems)} problem(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
