#!/usr/bin/env python3
"""Documentation lint: links, fences, and observability cross-references.

Scans ``README.md`` and every ``docs/*.md`` for

* **dead intra-repo links** -- ``[text](target)`` where ``target`` is
  a relative path (external ``http(s)``/``mailto`` URLs and pure
  ``#anchor`` links are skipped) that does not exist on disk relative
  to the file containing it;
* **unnamed code fences** -- every opening ``` fence must carry an
  info string (``python``, ``bash``, ``text``, ...), so renderers
  highlight consistently and snippets stay greppable by language;
* **dangling observability names** -- every metric family
  (``repro_*``), span name (``worker.spawn``) and fault-site spec
  (``vector.join:crash@0.05``) written in backticks in
  ``OBSERVABILITY.md`` / ``ROBUSTNESS.md`` / ``SCALING.md`` must
  correspond to a string constant (or dotted composition of known
  constants/identifiers) somewhere under ``src/repro`` -- so a renamed
  span or deleted metric fails CI instead of silently rotting the docs.

Exit status is non-zero when any problem is found; each problem is
reported as ``path:line: message``.  Run from the repo root (CI's
``docs-check`` job does) or from anywhere -- paths resolve relative
to this file's repository.

    python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: docs whose backticked observability names are cross-checked
REFERENCE_CHECKED = {"OBSERVABILITY.md", "ROBUSTNESS.md", "SCALING.md"}

#: ``[text](target)`` -- good enough for the markdown these docs use;
#: images (``![alt](src)``) match too, which is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^\s*```(.*)$")
_CODE_SPAN = re.compile(r"`[^`]*`")


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path, lines: list[str]) -> list[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:  # code samples may show url-ish text; skip them
            continue
        # inline code spans hold algebra like σ*_p[r1,…,rn](r), which
        # the link regex would misread -- blank them out first
        for target in _LINK.findall(_CODE_SPAN.sub("", line)):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:  # pure #anchor
                continue
            resolved = (path.parent / target).resolve()
            if REPO not in resolved.parents and resolved != REPO:
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: link escapes the "
                    f"repository: {target}"
                )
            elif not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: dead link: {target}"
                )
    return problems


def check_fences(path: Path, lines: list[str]) -> list[str]:
    problems = []
    open_fence_line = None
    for lineno, line in enumerate(lines, 1):
        match = _FENCE.match(line)
        if not match:
            continue
        if open_fence_line is None:
            open_fence_line = lineno
            if not match.group(1).strip():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: unnamed code fence "
                    "(add a language, e.g. ```python or ```text)"
                )
        else:
            if match.group(1).strip():
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: closing fence "
                    "carries text (missing blank ``` for the previous "
                    f"fence opened at line {open_fence_line}?)"
                )
            open_fence_line = None
    if open_fence_line is not None:
        problems.append(
            f"{path.relative_to(REPO)}:{open_fence_line}: unclosed code fence"
        )
    return problems


# ---------------------------------------------------------------------------
# observability cross-references

#: a metric family name inside a code span
_METRIC = re.compile(r"^repro_[a-z0-9_]+$")
#: a dotted span name: lowercase components, ``<...>`` wildcards and a
#: trailing ``*`` allowed (``reference.<op>``, ``replan.*``)
_SPAN = re.compile(r"^[a-z_][a-z0-9_]*(\.(?:[a-z0-9_]+|<[a-z_]+>|\*))+$")
#: a fault-site spec: ``site[:kind[=value][@p]]`` -- the site may be a
#: single word here (``worker:kill9``), unlike bare span tokens
_FAULT = re.compile(
    r"^(?P<site>[a-z_][a-z0-9_]*(\.(?:[a-z0-9_]+|<[a-z_]+>))*)"
    r":(?P<kind>[a-z][a-z0-9_]*)(=[^@]+)?(@[0-9.p]+)?$"
)
#: file extensions that make a dotted token a filename, not a span
_FILE_EXT = {"md", "py", "json", "prom", "csv", "sql", "txt", "yml", "html"}


def collect_code_names() -> dict[str, set[str]]:
    """Every string constant and identifier under ``src/repro``.

    Returns ``{"literals": ..., "components": ..., "identifiers": ...}``:
    full string constants (f-string fragments included), the
    dot/colon-separated components of those constants, and all
    identifiers (plus lowercased forms, so the span a code path builds
    as ``f"plan.{tier.name.lower()}"`` resolves through the enum
    member ``PARTITIONED_DP``).
    """
    literals: set[str] = set()
    identifiers: set[str] = set()
    for source in sorted((REPO / "src" / "repro").rglob("*.py")):
        tree = ast.parse(source.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
            elif isinstance(node, ast.Name):
                identifiers.add(node.id)
            elif isinstance(node, ast.Attribute):
                identifiers.add(node.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                identifiers.add(node.name)
            elif isinstance(node, ast.arg):
                identifiers.add(node.arg)
            elif isinstance(node, ast.keyword) and node.arg:
                identifiers.add(node.arg)
    identifiers |= {name.lower() for name in identifiers}
    components: set[str] = set()
    for lit in literals:
        for piece in re.split(r"[.:]", lit):
            if piece:
                components.add(piece)
    return {
        "literals": literals,
        "components": components,
        "identifiers": identifiers,
    }


def _component_known(component: str, names: dict[str, set[str]]) -> bool:
    if component == "*" or component.startswith("<"):
        return True  # documented wildcard (``<op>``, ``replan.*``)
    return (
        component in names["components"]
        or component in names["identifiers"]
        or component in names["literals"]
    )


def _dotted_known(token: str, names: dict[str, set[str]]) -> bool:
    if token in names["literals"]:
        return True
    return all(
        _component_known(piece, names) for piece in token.split(".")
    )


def check_references(
    path: Path, lines: list[str], names: dict[str, set[str]]
) -> list[str]:
    """Cross-check backticked metric/span/fault names against the code."""
    problems = []
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for span in _CODE_SPAN.findall(line):
            token = span.strip("`")
            if _METRIC.match(token):
                if token not in names["literals"]:
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: metric "
                        f"`{token}` does not exist in src/repro"
                    )
                continue
            fault = _FAULT.match(token)
            if fault is not None:
                site, kind = fault.group("site"), fault.group("kind")
                if not _dotted_known(site, names):
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: fault site "
                        f"`{site}` (in `{token}`) does not exist in src/repro"
                    )
                elif not _component_known(kind, names):
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: fault kind "
                        f"`{kind}` (in `{token}`) does not exist in src/repro"
                    )
                continue
            if not _SPAN.match(token):
                continue  # not a span-shaped token (prose, paths, ...)
            if token.startswith("repro."):
                continue  # module path, covered by imports not strings
            if token.rsplit(".", 1)[-1] in _FILE_EXT:
                continue  # a filename
            if not _dotted_known(token, names):
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: span/name "
                    f"`{token}` does not exist in src/repro"
                )
    return problems


def main() -> int:
    problems: list[str] = []
    files = doc_files()
    names = collect_code_names()
    for path in files:
        lines = path.read_text().splitlines()
        problems += check_links(path, lines)
        problems += check_fences(path, lines)
        if path.name in REFERENCE_CHECKED:
            problems += check_references(path, lines, names)
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} file(s): "
        + ("OK" if not problems else f"{len(problems)} problem(s)")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
