"""Resilient runtime: budgets, the degradation ladder, verification.

Run:  python examples/resilient_runtime.py

Reordering is exponential in the worst case, and a rewrite engine of
this size can harbor subtle semantic bugs (the INNER-for-LEFT class).
``repro.runtime.QuerySession`` wraps the optimizer so neither failure
mode reaches the caller: budgets bound the work, a degradation ladder
(full reorder -> greedy/DP baseline -> query as written) always
produces an answer, and an optional differential-verification pass
re-executes the chosen plan on a row-sample and quarantines it on any
mismatch.  See docs/ROBUSTNESS.md for the full story.
"""

from repro import Budget, QuerySession
from repro.expr import Database, evaluate
from repro.relalg import Relation
from repro.workloads.topologies import chain_query


def chain_database(n: int, rows: int = 12) -> Database:
    db = Database()
    for i in range(1, n + 1):
        name = f"r{i}"
        db.add(
            name,
            Relation.base(
                name,
                [f"{name}_a0", f"{name}_a1"],
                [(j % 5, (j + i) % 5) for j in range(rows)],
            ),
        )
    return db


def main() -> None:
    query = chain_query(4, complex_every=3)
    db = chain_database(4)
    expected = evaluate(query, db)

    # --- unconstrained: the full rewrite-closure optimizer ------------
    session = QuerySession(db, verify=True)
    result = session.run(query)
    print("no budget:")
    print(f"  stage={result.degradation_level.name.lower()}"
          f"  plans={result.plans_considered}"
          f"  verified={result.verified}"
          f"  rows={len(result.relation)}")
    assert result.relation.same_content(expected)
    print()

    # --- a starved plan budget: degrade, don't hang -------------------
    session = QuerySession(db, budget=Budget(max_plans=1))
    result = session.run(query)
    print("max_plans=1:")
    print(f"  stage={result.degradation_level.name.lower()}"
          f"  reason={result.degradation_reason!r}")
    print(f"  rows still correct: {result.relation.same_content(expected)}")
    print()

    # --- an expired deadline: the last rung still answers -------------
    session = QuerySession(db, budget=Budget(deadline_ms=0.0))
    result = session.run(query)
    print("deadline_ms=0:")
    print(f"  stage={result.degradation_level.name.lower()}"
          f"  reason={result.degradation_reason!r}")
    print(f"  rows still correct: {result.relation.same_content(expected)}")
    print()

    # --- every run leaves a machine-readable trail --------------------
    print("incident log:")
    for record in session.incidents:
        print(f"  [{record.kind}] {record.action}")


if __name__ == "__main__":
    main()
