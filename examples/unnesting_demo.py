"""Join-aggregate unnesting: from nested loops to outer joins.

Run:  python examples/unnesting_demo.py

Takes the paper's doubly nested correlated COUNT query (Section 1.1),
executes it under literal tuple iteration semantics, unnests it into
the outer-join / GROUP BY / generalized-selection form (the paper's
Queries 2-3, COUNT-bug-proof), and compares results and work.
"""

import random

from repro.core.pipeline import reorder_pipeline
from repro.core.unnest import example_join_aggregate, execute_tis, unnest
from repro.expr import evaluate
from repro.expr.display import to_tree
from repro.optimizer import measured_cost
from repro.optimizer.baselines import tis_cost
from repro.workloads.nested import nested_query_database


def main() -> None:
    query = example_join_aggregate(theta1=">", theta2="<")
    print("the nested query (SQL shape):")
    print("  SELECT r1.a FROM r1")
    print("  WHERE r1.b > (SELECT count(*) FROM r2")
    print("                WHERE r2.c = r1.c")
    print("                  AND r2.d < (SELECT count(*) FROM r3")
    print("                              WHERE r2.e = r3.e AND r1.f = r3.f))")
    print()

    plan = unnest(query)
    print("unnested plan (note the complex-predicate outer join and the")
    print("COUNT-bug-proof generalized selection):")
    print(to_tree(plan))
    print()

    rng = random.Random(3)
    db = nested_query_database(rng, n_r1=24, n_r2=24, n_r3=24)
    tis_result = execute_tis(query, db)
    unnested_result = evaluate(plan, db)
    print(f"TIS result rows      : {len(tis_result)}")
    print(f"unnested result rows : {len(unnested_result)}")
    print(f"results identical    : {unnested_result.same_content(tis_result)}")
    print()
    print(f"TIS predicate evaluations : {tis_cost(query, db)}")
    print(f"unnested plan C_out       : {measured_cost(plan, db)}")
    print()

    plans = reorder_pipeline(plan, max_plans=300)
    print(f"the unnested join core reorders into {len(plans)} plans;")
    print("every one evaluates to the same result:")
    ok = all(evaluate(p, db).same_content(tis_result) for p in plans)
    print(f"  all equivalent: {ok}")


if __name__ == "__main__":
    main()
