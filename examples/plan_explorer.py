"""Plan explorer: every reordering of the paper's Q4, ranked by cost.

Run:  python examples/plan_explorer.py

Builds Example 3.2's query Q4, shows its hypergraph (Figure 1), counts
association trees under Definition 3.2 vs the BHAR95a baseline,
enumerates the operator-assigned plan closure, and prints the cheapest
plans under a synthetic statistics profile -- including the break-up
plans (r2 joined with r4 or r5 alone) that only the paper's machinery
can produce.
"""

from repro.core.assoc_tree import association_trees
from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, Join, inner, left_outer, to_algebra
from repro.expr.predicates import eq, make_conjunction
from repro.hypergraph import hypergraph_of, pres
from repro.optimizer import Statistics, TableStats
from repro.optimizer.cost import estimated_cost


def q4():
    r1 = BaseRel("r1", ("a1",))
    r2 = BaseRel("r2", ("a2", "b2"))
    r3 = BaseRel("r3", ("a3",))
    r4 = BaseRel("r4", ("a4",))
    r5 = BaseRel("r5", ("a5", "b5", "c5"))
    core = inner(inner(r4, r5, eq("a4", "a5")), r3, eq("a3", "b5"))
    return left_outer(
        r1,
        left_outer(r2, core, make_conjunction([eq("a2", "a4"), eq("b2", "c5")])),
        eq("a1", "a2"),
    )


def main() -> None:
    query = q4()
    graph = hypergraph_of(query)
    print("Q4 =", to_algebra(query))
    print()
    print("hypergraph (the paper's Figure 1):")
    print(graph.to_text())
    h2 = next(e for e in graph.edges if e.complex)
    print(f"pres({h2.eid}) = {sorted(pres(graph, h2))}   (paper: {{r1, r2}})")
    print()

    new_trees = association_trees(graph, breakup=True)
    old_trees = association_trees(graph, breakup=False)
    print(f"association trees, Definition 3.2 : {len(new_trees)}")
    print(f"association trees, BHAR95a        : {len(old_trees)}")
    print()

    plans = enumerate_plans(query, max_plans=3000)
    print(f"operator-assigned plans in the closure: {len(plans)}")

    stats = Statistics(
        {
            "r1": TableStats(50, {"a1": 25}),
            "r2": TableStats(1000, {"a2": 25, "b2": 500}),
            "r3": TableStats(40, {"a3": 40}),
            "r4": TableStats(30, {"a4": 30}),
            "r5": TableStats(1000, {"a5": 30, "b5": 40, "c5": 500}),
        }
    )
    ranked = sorted(plans, key=lambda p: estimated_cost(p, stats))
    print("cheapest five plans under the synthetic statistics:")
    for plan in ranked[:5]:
        print(f"  cost {estimated_cost(plan, stats):10.0f}  {to_algebra(plan)}")
    print()

    def joins_pair(plan, pair):
        return any(
            isinstance(n, Join)
            and n.left.base_names | n.right.base_names == pair
            for n in plan.walk()
        )

    breakups = [
        p
        for p in plans
        if joins_pair(p, frozenset({"r2", "r4"}))
        or joins_pair(p, frozenset({"r2", "r5"}))
    ]
    print(
        f"plans that combine r2 with r4 or r5 alone (hyperedge h2 broken "
        f"up): {len(breakups)}"
    )
    print("one of them:")
    print(" ", to_algebra(breakups[0]))


if __name__ == "__main__":
    main()
