"""EXPLAIN ANALYZE tour: from SQL to physical operators with row counts.

Run:  python examples/explain_analyze.py

Loads the TPC-H-lite data, optimizes the naive-order 4-way join, and
shows the physical plans for the as-written and the optimizer-chosen
orders with per-operator actual cardinalities -- including a
generalized-selection operator at work on a complex-predicate query.
"""

import random

from repro.core.split import defer_conjunct
from repro.expr import evaluate
from repro.expr.predicates import conjuncts_of
from repro.expr.rewrite import iter_nodes
from repro.expr.nodes import Join
from repro.optimizer import Statistics, optimize
from repro.physical import compile_plan, explain_analyze, run_plan
from repro.sql import parse_statements, translate
from repro.workloads.tpch_lite import (
    NATION_FLOW,
    SEGMENT_LINES_COMPLEX,
    tpch_lite_catalog,
    tpch_lite_database,
)


def main() -> None:
    rng = random.Random(4)
    db = tpch_lite_database(rng, customers=60, suppliers=10)
    stats = Statistics.from_database(db)

    # ---- the naive-order 4-way join ---------------------------------
    catalog = tpch_lite_catalog()
    query = translate(parse_statements(NATION_FLOW)[-1], catalog).expr
    print("=== nation_flow, as written ===")
    print(explain_analyze(compile_plan(query), db))
    print()

    chosen = optimize(query, stats, max_plans=300).best
    print("=== nation_flow, optimizer's choice ===")
    print(explain_analyze(compile_plan(chosen), db))
    print()
    assert run_plan(compile_plan(chosen), db).same_content(evaluate(query, db))

    # ---- a complex-predicate outer join + σ* ------------------------
    catalog = tpch_lite_catalog()
    complex_q = translate(
        parse_statements(SEGMENT_LINES_COMPLEX)[-1], catalog
    ).expr
    # defer the cross-relation conjunct of the outer join's predicate
    target = next(
        (path, node)
        for path, node in iter_nodes(complex_q)
        if isinstance(node, Join) and len(conjuncts_of(node.predicate)) > 1
    )
    path, join_node = target
    # pick the conjunct reaching across three relations
    conjunct = next(
        atom
        for atom in conjuncts_of(join_node.predicate)
        if len(join_node.predicate_relations(atom)) >= 2
        and "customer" in {n for n in join_node.predicate_relations(atom)}
    )
    core = complex_q
    # walk down to the join core (unary wrappers above)
    wrappers = []
    while core is not join_node and len(core.children()) == 1:
        wrappers.append(core)
        core = core.children()[0]
    deferred = defer_conjunct(core, path[len(wrappers):], conjunct)
    print("=== segment_lines_complex: σ* in a physical plan ===")
    print(explain_analyze(compile_plan(deferred.expr), db))
    want = evaluate(core, db)
    assert run_plan(compile_plan(deferred.expr), db).same_content(want)
    print()
    print("all physical results verified against the reference interpreter")


if __name__ == "__main__":
    main()
