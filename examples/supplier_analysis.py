"""Example 1.1: the supplier/parts analyst query, optimized.

Run:  python examples/supplier_analysis.py

Builds the paper's motivating scenario -- small aggregated 1994 data,
a large 1995 transaction log, supplier master data -- poses the
analyst's query through the SQL front-end, and shows the optimizer
choosing between aggregate-first (as written) and join-first (the
generalized-selection reordering) as the BANKRUPT filter's
selectivity changes.
"""

import random

from repro.expr import evaluate
from repro.expr.display import to_tree
from repro.optimizer import Statistics, measured_cost, optimize
from repro.sql import SqlCatalog, parse_statements, translate
from repro.workloads.supplier import supplier_database

SCRIPT = """
create view v2 as
  select a.agg94_supkey as supkey, a.agg94_qty as qty,
         a.agg94_partkey as partkey
  from agg94 a, supdetail b
  where a.agg94_supkey = b.sup_supkey and b.sup_rating = 'BANKRUPT';

create view v3 as
  select d95_supkey as supkey, d95_partkey as partkey, qty95 = count(*)
  from detail95
  group by d95_supkey, d95_partkey;

select v2.supkey, v2.partkey, v2.qty, v3.qty95
from v2 left outer join v3
  on v2.supkey = v3.supkey and v2.partkey = v3.partkey
     and v2.qty < 2 * v3.qty95;
"""


def main() -> None:
    catalog = SqlCatalog(
        {
            "agg94": ("agg94_supkey", "agg94_partkey", "agg94_qty"),
            "detail95": ("d95_supkey", "d95_partkey", "d95_date", "d95_qty"),
            "supdetail": ("sup_supkey", "sup_rating", "sup_info"),
        }
    )
    statements = parse_statements(SCRIPT)
    catalog.add_view(statements[0])
    catalog.add_view(statements[1])
    translation = translate(statements[2], catalog)
    query = translation.expr

    print("the analyst's query (as written):")
    print(to_tree(query))
    print()

    for fraction in (0.1, 0.5):
        rng = random.Random(1)
        db = supplier_database(
            rng,
            n_suppliers=16,
            n_parts=6,
            detail_rows=480,
            bankrupt_fraction=fraction,
        )
        stats = Statistics.from_database(db)
        result = optimize(query, stats, max_plans=300)
        as_written = measured_cost(query, db)
        chosen = measured_cost(result.best, db)
        same = evaluate(result.best, db).same_content(evaluate(query, db))
        print(f"bankrupt fraction {fraction:.0%}:")
        print(f"  plans considered : {result.plans_considered}")
        print(f"  as-written C_out : {as_written}")
        print(f"  chosen plan C_out: {chosen}  (equivalent: {same})")
        print("  chosen plan:")
        print("\n".join("    " + line for line in to_tree(result.best).splitlines()))
        print()


if __name__ == "__main__":
    main()
