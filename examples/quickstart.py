"""Quickstart: the generalized selection operator in five minutes.

Run:  python examples/quickstart.py

Walks through the paper's core move on Example 2.1's data: a left
outer join with a *complex* predicate (one referencing three
relations) cannot be reordered with classical identities -- but after
splitting the predicate, a generalized selection at the root
compensates exactly, and the remaining simple-predicate query is free
to reorder.
"""

from repro import Database, evaluate, to_algebra
from repro.core.split import defer_conjunct
from repro.core.transform import enumerate_plans
from repro.expr import BaseRel, left_outer
from repro.expr.predicates import eq, make_conjunction
from repro.relalg import Relation


def main() -> None:
    # --- the data of the paper's Example 2.1 -------------------------
    db = Database(
        {
            "r1": Relation.base(
                "r1",
                ["a", "b", "c", "f"],
                [
                    ("a1", "b1", "c1", "f1"),
                    ("a2", "b1", "c1", "f2"),
                    ("a2", "b1", "c2", "f2"),
                ],
            ),
            "r2": Relation.base("r2", ["c2", "d", "e"], [("c1", "d1", "e1")]),
            "r3": Relation.base("r3", ["e3", "f3"], [("e1", "f1"), ("e1", "f3")]),
        }
    )
    r1 = BaseRel("r1", ("a", "b", "c", "f"))
    r2 = BaseRel("r2", ("c2", "d", "e"))
    r3 = BaseRel("r3", ("e3", "f3"))

    p12 = eq("c", "c2")   # r1.c = r2.c
    p13 = eq("f", "f3")   # r1.f = r3.f   } together: a complex predicate
    p23 = eq("e", "e3")   # r2.e = r3.e   } referencing three relations

    # --- the query, as written ---------------------------------------
    query = left_outer(left_outer(r1, r2, p12), r3, make_conjunction([p13, p23]))
    print("query as written:")
    print(" ", to_algebra(query))
    print(evaluate(query, db).to_text())
    print()

    # --- break the complex predicate with generalized selection ------
    result = defer_conjunct(query, path=(), conjunct=p13)
    print("after deferring p13 (Theorem 1 compensation):")
    print(" ", to_algebra(result.expr))
    print("preserved groups:", [sorted(g) for g in result.groups])
    same = evaluate(result.expr, db).same_content(evaluate(query, db))
    print("equivalent on the data:", same)
    print()

    # --- and now the whole plan space opens up ------------------------
    plans = enumerate_plans(query, max_plans=500)
    print(f"rewrite closure: {len(plans)} equivalent plans, e.g.:")
    for plan in plans[:5]:
        print("  ", to_algebra(plan))
    mismatches = sum(
        not evaluate(p, db).same_content(evaluate(query, db)) for p in plans
    )
    print(f"plans disagreeing with the original: {mismatches}")


if __name__ == "__main__":
    main()
