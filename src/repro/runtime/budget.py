"""Cooperative resource budgets.

A :class:`Budget` bundles the three caps the runtime understands --
wall-clock deadline, plans enumerated, intermediate rows materialized
-- together with the counters charged against them.  Enforcement is
cooperative: the enumerator and the executors call :meth:`tick` /
:meth:`charge_plans` / :meth:`charge_rows` at their natural checkpoint
granularity (one BFS expansion, one operator result), and the budget
raises the typed :class:`repro.errors.BudgetExceeded` subclass for the
exhausted dimension.  Nothing here uses signals or preemption, so a
budgeted call unwinds at a well-defined point with all invariants
intact -- which is what lets :class:`repro.runtime.QuerySession`
catch the error and degrade instead of crashing.

Counter updates are thread-safe: :class:`repro.runtime.service.QueryService`
shares one service-level budget across its worker pool, so
``charge_plans``/``charge_rows`` (read-modify-write) take an internal
lock.  The same ``tick()`` checkpoints also observe an optional
:class:`CancelToken`, giving callers cooperative cancellation at
exactly the granularity the budget already enforces.

``Budget(...)`` starts its clock at construction.  Stages of a
fallback chain get their share via :meth:`stage`, which carves a child
budget out of the *remaining* time (counters start fresh; the parent
keeps ticking, and every charge a child takes is absorbed upward so
an ancestor -- e.g. the service-level budget -- sees aggregate spend).  Carving a stage from an already-expired parent raises
:class:`repro.errors.DeadlineExceeded` eagerly, with the parent's
spend in the message -- a zero-width child that dies on its first tick
with a confusing ``where`` helps nobody.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceeded,
    PlanBudgetExceeded,
    QueryCancelled,
    RowBudgetExceeded,
)


@dataclass(frozen=True)
class TierThresholds:
    """Enumeration-tier selection policy (see :mod:`repro.optimizer.tiers`).

    The degradation ladder consults these to pick how join ordering is
    *attempted* for a query of ``n`` relations, instead of letting the
    exponential enumerators crash into their budgets:

    * ``n <= full_max_relations`` -- full rewrite-closure / exact DP;
    * ``n <= partitioned_max_relations`` -- partition the hypergraph
      into blocks of at most ``partition_size`` relations, solve each
      exactly, stitch with a bounded best-first search (``stitch_beam``
      successors per expansion, at most ``stitch_expansions``
      expansions);
    * beyond that -- greedy operator ordering (GOO) only.

    Attach to a :class:`Budget` (``Budget(tiers=...)``) to override per
    query; ``DEFAULT_TIERS`` applies when unset.
    """

    full_max_relations: int = 12
    partitioned_max_relations: int = 40
    partition_size: int = 8
    stitch_beam: int = 3
    stitch_expansions: int = 256


#: The stock policy: exact enumeration up to 12 relations, partitioned
#: DP up to 40, greedy operator ordering beyond.
DEFAULT_TIERS = TierThresholds()


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    ``cancel()`` may be called from any thread; the query observes it
    at its next budget checkpoint and unwinds with the typed
    :class:`repro.errors.QueryCancelled`.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, callable from any thread)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancelToken(cancelled={self.cancelled})"


@dataclass
class Budget:
    """Resource limits plus the counters charged against them.

    ``deadline_ms`` is wall-clock milliseconds from construction (or
    from the latest :meth:`restart`); ``max_plans`` caps how many
    distinct plans enumeration may produce; ``max_rows`` caps the
    cumulative intermediate rows an executor may materialize.  ``None``
    disables a dimension.  ``cancel`` is an optional
    :class:`CancelToken` observed at every checkpoint.
    """

    deadline_ms: float | None = None
    max_plans: int | None = None
    max_rows: int | None = None
    plans: int = 0
    rows: int = 0
    cancel: CancelToken | None = field(default=None, compare=False)
    #: Enumeration-tier policy carried alongside the caps; consulted by
    #: the session ladder, never enforced by the budget itself.
    tiers: TierThresholds | None = field(default=None, compare=False)
    parent: "Budget | None" = field(default=None, repr=False, compare=False)
    _t0: float = field(default_factory=time.monotonic, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- clock -----------------------------------------------------------

    def restart(self) -> "Budget":
        """Reset the clock and counters (one budget object per query)."""
        with self._lock:
            self._t0 = time.monotonic()
            self.plans = 0
            self.rows = 0
        return self

    @property
    def elapsed_ms(self) -> float:
        """Wall milliseconds since construction or the last :meth:`restart`."""
        return (time.monotonic() - self._t0) * 1000.0

    @property
    def remaining_ms(self) -> float:
        """Milliseconds left, ``inf`` when no deadline is set."""
        if self.deadline_ms is None:
            return float("inf")
        return self.deadline_ms - self.elapsed_ms

    # -- process-boundary transport --------------------------------------

    def caps(self) -> dict:
        """Picklable cap snapshot for shipping across a process boundary.

        The deadline dimension carries the *remaining* milliseconds, not
        the original allowance, so queue wait and pipe latency in the
        parent keep counting against the query: the child rebuilds a
        budget whose clock starts on arrival.  Locks, cancel tokens and
        parent links stay behind -- they cannot cross the pipe.
        """
        remaining = self.remaining_ms
        return {
            "deadline_ms": None if remaining == float("inf") else max(remaining, 0.0),
            "max_plans": self.max_plans,
            "max_rows": self.max_rows,
            "tiers": self.tiers,
        }

    @staticmethod
    def from_caps(caps: dict) -> "Budget":
        """Rebuild a fresh budget in a worker child from :meth:`caps`."""
        return Budget(
            deadline_ms=caps.get("deadline_ms"),
            max_plans=caps.get("max_plans"),
            max_rows=caps.get("max_rows"),
            tiers=caps.get("tiers"),
        )

    # -- checkpoints -----------------------------------------------------

    def check_cancelled(self, where: str = "") -> None:
        """Observe the cancellation token.

        Args:
            where: Checkpoint label included in the error message.

        Raises:
            QueryCancelled: If the token was cancelled.
        """
        if self.cancel is not None and self.cancel.cancelled:
            raise QueryCancelled(where)

    def check_deadline(self, where: str = "") -> None:
        """Check the clock (and the cancellation token first).

        Args:
            where: Checkpoint label included in the error message.

        Raises:
            QueryCancelled: If the token was cancelled.
            DeadlineExceeded: If the wall-clock deadline has passed.
        """
        self.check_cancelled(where)
        if self.deadline_ms is not None and self.elapsed_ms > self.deadline_ms:
            raise DeadlineExceeded(self.deadline_ms, self.elapsed_ms, where)

    def _absorb(self, plans: int = 0, rows: int = 0) -> None:
        """Accumulate a child's spend without enforcing this level's caps.

        Work a stage already did is real even when the stage's own cap
        cut it short, so accounting flows upward unconditionally; caps
        above are enforced at their own check sites (the service budget
        checks at charge-back, not mid-stage).
        """
        with self._lock:
            self.plans += plans
            self.rows += rows
        if self.parent is not None:
            self.parent._absorb(plans, rows)

    def charge_plans(self, n: int = 1, where: str = "") -> None:
        """Charge ``n`` enumerated plans (propagated to ancestors).

        Args:
            n: Plans to add to this budget's counter.
            where: Checkpoint label included in the error message.

        Raises:
            PlanBudgetExceeded: If the counter passes ``max_plans``.
        """
        with self._lock:
            self.plans += n
            spent = self.plans
        if self.parent is not None:
            self.parent._absorb(plans=n)
        if self.max_plans is not None and spent > self.max_plans:
            raise PlanBudgetExceeded(self.max_plans, spent, where)

    def charge_rows(self, n: int, where: str = "") -> None:
        """Charge ``n`` materialized rows (propagated to ancestors).

        Args:
            n: Intermediate rows to add to this budget's counter.
            where: Checkpoint label included in the error message.

        Raises:
            RowBudgetExceeded: If the counter passes ``max_rows``.
        """
        with self._lock:
            self.rows += n
            spent = self.rows
        if self.parent is not None:
            self.parent._absorb(rows=n)
        if self.max_rows is not None and spent > self.max_rows:
            raise RowBudgetExceeded(self.max_rows, spent, where)

    def tick(self, rows: int = 0, plans: int = 0, where: str = "") -> None:
        """One cooperative checkpoint: charge counters, check the clock."""
        if plans:
            self.charge_plans(plans, where)
        if rows:
            self.charge_rows(rows, where)
        self.check_deadline(where)

    # -- slicing ---------------------------------------------------------

    def stage(
        self,
        fraction: float,
        max_plans: int | None | str = "inherit",
        max_rows: int | None | str = "inherit",
        where: str = "stage",
    ) -> "Budget":
        """A child budget owning ``fraction`` of the remaining time.

        Counters start at zero; plan/row caps are inherited unless
        overridden (pass ``None`` to lift a cap for the stage -- the
        heuristic fallback does this for ``max_plans``, since it must
        be allowed to run after the full enumeration blew the cap).
        The cancellation token is shared with the parent: cancelling
        the query cancels every stage.

        Carving from an already-expired parent raises
        :class:`repro.errors.DeadlineExceeded` eagerly with the
        parent's context, instead of returning a ``deadline_ms=0.0``
        child that dies on its first tick deep inside the stage.
        """
        self.check_cancelled(where)
        remaining = self.remaining_ms
        if remaining <= 0.0:
            raise DeadlineExceeded(self.deadline_ms, self.elapsed_ms, where)
        deadline = None if remaining == float("inf") else remaining * fraction
        return Budget(
            deadline_ms=deadline,
            max_plans=self.max_plans if max_plans == "inherit" else max_plans,
            max_rows=self.max_rows if max_rows == "inherit" else max_rows,
            cancel=self.cancel,
            tiers=self.tiers,
            parent=self,
        )

    def to_dict(self) -> dict:
        """Structured snapshot for incident records and bench JSON."""
        return {
            "deadline_ms": self.deadline_ms,
            "max_plans": self.max_plans,
            "max_rows": self.max_rows,
            "spent_ms": round(self.elapsed_ms, 3),
            "spent_plans": self.plans,
            "spent_rows": self.rows,
            "cancelled": self.cancel.cancelled if self.cancel else False,
        }
