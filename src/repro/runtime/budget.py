"""Cooperative resource budgets.

A :class:`Budget` bundles the three caps the runtime understands --
wall-clock deadline, plans enumerated, intermediate rows materialized
-- together with the counters charged against them.  Enforcement is
cooperative: the enumerator and the executors call :meth:`tick` /
:meth:`charge_plans` / :meth:`charge_rows` at their natural checkpoint
granularity (one BFS expansion, one operator result), and the budget
raises the typed :class:`repro.errors.BudgetExceeded` subclass for the
exhausted dimension.  Nothing here uses threads or signals, so a
budgeted call unwinds at a well-defined point with all invariants
intact -- which is what lets :class:`repro.runtime.QuerySession`
catch the error and degrade instead of crashing.

``Budget(...)`` starts its clock at construction.  Stages of a
fallback chain get their share via :meth:`stage`, which carves a child
budget out of the *remaining* time (counters start fresh; the parent
keeps ticking).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceeded,
    PlanBudgetExceeded,
    RowBudgetExceeded,
)


@dataclass
class Budget:
    """Resource limits plus the counters charged against them.

    ``deadline_ms`` is wall-clock milliseconds from construction (or
    from the latest :meth:`restart`); ``max_plans`` caps how many
    distinct plans enumeration may produce; ``max_rows`` caps the
    cumulative intermediate rows an executor may materialize.  ``None``
    disables a dimension.
    """

    deadline_ms: float | None = None
    max_plans: int | None = None
    max_rows: int | None = None
    plans: int = 0
    rows: int = 0
    _t0: float = field(default_factory=time.monotonic, repr=False)

    # -- clock -----------------------------------------------------------

    def restart(self) -> "Budget":
        """Reset the clock and counters (one budget object per query)."""
        self._t0 = time.monotonic()
        self.plans = 0
        self.rows = 0
        return self

    @property
    def elapsed_ms(self) -> float:
        return (time.monotonic() - self._t0) * 1000.0

    @property
    def remaining_ms(self) -> float:
        """Milliseconds left, ``inf`` when no deadline is set."""
        if self.deadline_ms is None:
            return float("inf")
        return self.deadline_ms - self.elapsed_ms

    # -- checkpoints -----------------------------------------------------

    def check_deadline(self, where: str = "") -> None:
        if self.deadline_ms is not None and self.elapsed_ms > self.deadline_ms:
            raise DeadlineExceeded(self.deadline_ms, self.elapsed_ms, where)

    def charge_plans(self, n: int = 1, where: str = "") -> None:
        self.plans += n
        if self.max_plans is not None and self.plans > self.max_plans:
            raise PlanBudgetExceeded(self.max_plans, self.plans, where)

    def charge_rows(self, n: int, where: str = "") -> None:
        self.rows += n
        if self.max_rows is not None and self.rows > self.max_rows:
            raise RowBudgetExceeded(self.max_rows, self.rows, where)

    def tick(self, rows: int = 0, plans: int = 0, where: str = "") -> None:
        """One cooperative checkpoint: charge counters, check the clock."""
        if plans:
            self.charge_plans(plans, where)
        if rows:
            self.charge_rows(rows, where)
        self.check_deadline(where)

    # -- slicing ---------------------------------------------------------

    def stage(
        self,
        fraction: float,
        max_plans: int | None | str = "inherit",
        max_rows: int | None | str = "inherit",
    ) -> "Budget":
        """A child budget owning ``fraction`` of the remaining time.

        Counters start at zero; plan/row caps are inherited unless
        overridden (pass ``None`` to lift a cap for the stage -- the
        heuristic fallback does this for ``max_plans``, since it must
        be allowed to run after the full enumeration blew the cap).
        """
        remaining = self.remaining_ms
        deadline = None if remaining == float("inf") else max(0.0, remaining * fraction)
        return Budget(
            deadline_ms=deadline,
            max_plans=self.max_plans if max_plans == "inherit" else max_plans,
            max_rows=self.max_rows if max_rows == "inherit" else max_rows,
        )

    def to_dict(self) -> dict:
        """Structured snapshot for incident records and bench JSON."""
        return {
            "deadline_ms": self.deadline_ms,
            "max_plans": self.max_plans,
            "max_rows": self.max_rows,
            "spent_ms": round(self.elapsed_ms, 3),
            "spent_plans": self.plans,
            "spent_rows": self.rows,
        }
