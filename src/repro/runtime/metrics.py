"""Service-level metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is a small, thread-safe, zero-dependency
metric store in the Prometheus data model: named *families* of a fixed
type, each holding one child per distinct label set.  The runtime
wires one registry into :class:`repro.runtime.QueryService` (admissions,
sheds, breaker transitions, per-query latency) and the CLI exports it
via ``--metrics-out`` as either JSON or Prometheus text exposition
format, chosen by file extension.

The exposition writer follows the Prometheus text format rules that
matter for correctness: one ``# HELP`` / ``# TYPE`` header per family,
label values escaped (backslash, double quote, newline), histograms
rendered as cumulative ``_bucket{le=...}`` series ending in ``+Inf``
plus ``_sum`` and ``_count``.

Histograms additionally keep a bounded reservoir of raw samples
(newest :data:`SAMPLE_WINDOW` observations) so the JSON export and the
CLI footer can report p50/p99 without a Prometheus server in the loop.

Like the rest of ``repro.runtime`` this module is stdlib-only.
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Iterable, Mapping

#: Raw observations kept per histogram child for quantile estimates.
SAMPLE_WINDOW = 4096

#: Default latency buckets (milliseconds), roughly log-spaced.
DEFAULT_BUCKETS = (
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)

#: actual/estimated cardinality ratio buckets: symmetric around 1.0
#: (well-estimated), stretching to the 1000x blowups re-planning exists
#: to contain.
RATIO_BUCKETS = (
    0.01,
    0.1,
    0.25,
    0.5,
    0.8,
    1.25,
    2.0,
    4.0,
    10.0,
    100.0,
    1000.0,
)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_suffix(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def quantile(samples: Iterable[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (0 for an empty set).

    Args:
        samples: Raw observations, any order.
        q: Quantile in [0, 1], e.g. 0.99.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


class _Child:
    """One (family, label set) time series."""

    __slots__ = ("labels", "value", "sum", "count", "bucket_counts", "samples")

    def __init__(self, labels: tuple[tuple[str, str], ...], buckets=None):
        self.labels = labels
        self.value = 0.0
        if buckets is not None:
            self.sum = 0.0
            self.count = 0
            self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
            self.samples: deque[float] = deque(maxlen=SAMPLE_WINDOW)


class _Family:
    """A named metric family: fixed type, one child per label set."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help = help
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[tuple[str, str], ...], _Child] = {}

    def labels(self, **labels: str) -> "_Bound":
        """The child for this label set (created on first use)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _Child(key, self.buckets)
                self._children[key] = child
        return _Bound(self, child)

    # conveniences acting on the no-label child
    def inc(self, n: float = 1.0) -> None:
        self.labels().inc(n)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def value_for(self, **labels: str) -> float:
        """Current value of the child for ``labels`` (0 if absent)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            return child.value if child is not None else 0.0


class _Bound:
    """A family child ready to be incremented/observed."""

    __slots__ = ("_family", "_child")

    def __init__(self, family: _Family, child: _Child) -> None:
        self._family = family
        self._child = child

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (counters must only go up; gauges may use any n)."""
        if self._family.kind == "counter" and n < 0:
            raise ValueError(f"counter {self._family.name} cannot decrease")
        with self._family._lock:
            self._child.value += n

    def set(self, value: float) -> None:
        """Set a gauge to ``value``."""
        if self._family.kind != "gauge":
            raise ValueError(f"{self._family.name} is not a gauge")
        with self._family._lock:
            self._child.value = value

    def observe(self, value: float) -> None:
        """Record one histogram observation."""
        if self._family.kind != "histogram":
            raise ValueError(f"{self._family.name} is not a histogram")
        fam, child = self._family, self._child
        with fam._lock:
            child.sum += value
            child.count += 1
            child.samples.append(value)
            for i, bound in enumerate(fam.buckets):
                if value <= bound:
                    child.bucket_counts[i] += 1
                    break
            else:
                child.bucket_counts[-1] += 1


class MetricsRegistry:
    """A set of metric families with JSON and Prometheus exports.

    Families are created idempotently: asking for an existing name
    returns the same family (type and buckets must match).  All
    mutation happens under one registry lock -- contention is trivial
    next to query execution, and it keeps exports consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _family(self, name, kind, help, buckets=None) -> _Family:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, kind, help, self._lock, buckets)
                self._families[name] = fam
                return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}"
            )
        return fam

    def counter(self, name: str, help: str = "") -> _Family:
        """A monotonically increasing counter family.

        Args:
            name: Prometheus-style name, e.g. ``repro_sheds_total``.
            help: One-line description for the ``# HELP`` header.
        """
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> _Family:
        """A gauge family (settable to arbitrary values)."""
        return self._family(name, "gauge", help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        """A histogram family with fixed cumulative ``buckets``."""
        return self._family(name, "histogram", help, tuple(buckets))

    def to_prometheus(self) -> str:
        """Render every family in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            for fam in families:
                if fam.help:
                    lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
                lines.append(f"# TYPE {fam.name} {fam.kind}")
                for child in fam._children.values():
                    if fam.kind == "histogram":
                        cumulative = 0
                        for bound, n in zip(
                            list(fam.buckets) + [math.inf],
                            child.bucket_counts,
                        ):
                            cumulative += n
                            suffix = _label_suffix(
                                child.labels,
                                f'le="{_format_value(bound)}"',
                            )
                            lines.append(
                                f"{fam.name}_bucket{suffix} {cumulative}"
                            )
                        base = _label_suffix(child.labels)
                        lines.append(
                            f"{fam.name}_sum{base} {_format_value(child.sum)}"
                        )
                        lines.append(f"{fam.name}_count{base} {child.count}")
                    else:
                        suffix = _label_suffix(child.labels)
                        lines.append(
                            f"{fam.name}{suffix} {_format_value(child.value)}"
                        )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """Plain-data export with p50/p99 estimates for histograms."""
        out: dict[str, dict] = {}
        with self._lock:
            for fam in sorted(self._families.values(), key=lambda f: f.name):
                series = []
                for child in fam._children.values():
                    entry: dict = {"labels": dict(child.labels)}
                    if fam.kind == "histogram":
                        entry.update(
                            count=child.count,
                            sum=round(child.sum, 6),
                            p50=round(quantile(child.samples, 0.50), 6),
                            p99=round(quantile(child.samples, 0.99), 6),
                        )
                    else:
                        entry["value"] = child.value
                    series.append(entry)
                out[fam.name] = {
                    "type": fam.kind,
                    "help": fam.help,
                    "series": series,
                }
        return out

    def to_json(self, indent: int = 2) -> str:
        """``to_dict`` serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse text exposition back into ``{name: {type, samples}}``.

    A deliberately small reader -- enough for tests and smoke checks
    to round-trip :meth:`MetricsRegistry.to_prometheus` output: it
    collects ``# TYPE`` declarations and every sample line as
    ``(metric name, frozen label dict, float value)``.

    Raises:
        ValueError: On a malformed sample or header line.
    """
    out: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {raw!r}")
            _, _, name, kind = parts
            out.setdefault(name, {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {raw!r}")
        labels: dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"malformed labels in: {raw!r}")
            name, _, label_text = name_part.partition("{")
            labels = _parse_labels(label_text[:-1], raw)
        value = math.inf if value_part == "+Inf" else float(value_part)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in out:
                family = name[: -len(suffix)]
                break
        out.setdefault(family, {"type": "untyped", "samples": []})
        out[family]["samples"].append((name, labels, value))
    return out


def _parse_labels(text: str, raw: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq]
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value in: {raw!r}")
        j = eq + 2
        value: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                value.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
            else:
                value.append(text[j])
                j += 1
        labels[key] = "".join(value)
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return labels


def service_registry() -> MetricsRegistry:
    """A registry pre-declaring the QueryService metric families.

    Declared up front so exports show every family (at zero) even
    before the first query, which keeps dashboards and the smoke
    checks deterministic.
    """
    reg = MetricsRegistry()
    reg.counter(
        "repro_admissions_total", "Queries accepted into the service queue"
    )
    reg.counter(
        "repro_sheds_total", "Queries rejected at admission (queue full)"
    )
    reg.counter("repro_queries_total", "Queries finished, by outcome")
    reg.counter(
        "repro_breaker_transitions_total",
        "Circuit-breaker state transitions, by engine and new state",
    )
    reg.counter(
        "repro_engine_failures_total", "Engine attempts that raised, by engine"
    )
    reg.histogram(
        "repro_query_latency_ms", "End-to-end per-query service latency"
    )
    reg.counter("repro_plan_cache_hits_total", "Plan-cache lookup hits")
    reg.counter("repro_plan_cache_misses_total", "Plan-cache lookup misses")
    reg.gauge("repro_plan_cache_entries", "Plans currently cached")
    reg.gauge(
        "repro_plan_cache_hit_ratio", "hits / (hits + misses), 0 when idle"
    )
    reg.counter(
        "repro_replans_total", "Mid-query re-plans triggered, by outcome"
    )
    reg.counter(
        "repro_feedback_ingests_total",
        "Cardinality observations ingested into the feedback store",
    )
    reg.counter(
        "repro_feedback_quarantines_total",
        "Feedback entries quarantined as suspect",
    )
    reg.gauge(
        "repro_feedback_generation", "Feedback store invalidation generation"
    )
    reg.gauge("repro_feedback_entries", "Feedback fingerprints currently held")
    reg.histogram(
        "repro_estimate_error_ratio",
        "Observed actual/estimated rows per executed operator",
        buckets=RATIO_BUCKETS,
    )
    reg.counter(
        "repro_sort_rows_total", "Rows passed through order enforcers"
    )
    reg.counter(
        "repro_streaming_groupby_total",
        "Grouping operators answered by the streaming (sorted-run) path",
    )
    reg.counter(
        "repro_worker_restarts_total",
        "Worker processes (re)started by the supervisor, by reason",
    )
    reg.counter(
        "repro_worker_retries_total",
        "In-flight queries retried after their worker died",
    )
    reg.gauge(
        "repro_worker_heartbeat_age_seconds",
        "Seconds since each busy worker's last heartbeat (0 when idle)",
    )
    reg.gauge(
        "repro_shm_segments",
        "Shared-memory page segments currently owned by the supervisor",
    )
    reg.gauge(
        "repro_shm_bytes",
        "Total bytes across the supervisor's shared-memory pages",
    )
    reg.counter(
        "repro_shm_orphans_swept_total",
        "Orphaned page segments reclaimed at supervisor start",
    )
    reg.counter(
        "repro_shm_fallback_total",
        "Tables that fell back to the pickle path (unpageable types)",
    )
    reg.counter(
        "repro_cache_warmup_total",
        "Queries broadcast to fresh workers for plan-cache warm-up",
    )
    return reg


# -- engine-side counters --------------------------------------------
#
# The engines sit *below* repro.runtime in the layering and own no
# registry; they record into a process-global table (one lock, two
# ints in the steady state) that :func:`sync_engine_metrics` copies
# into a registry at export time with the same delta discipline as the
# cache/feedback syncs.

_ENGINE_HELP = {
    "repro_sort_rows_total": "Rows passed through order enforcers",
    "repro_streaming_groupby_total": (
        "Grouping operators answered by the streaming (sorted-run) path"
    ),
}

_engine_lock = threading.Lock()
_engine_counters: dict[str, int] = {}


def record_engine_counter(name: str, n: int = 1) -> None:
    """Bump process-global engine counter ``name`` by ``n``."""
    with _engine_lock:
        _engine_counters[name] = _engine_counters.get(name, 0) + n


def engine_counters() -> dict[str, int]:
    """Snapshot of the engine counter table."""
    with _engine_lock:
        return dict(_engine_counters)


def sync_engine_metrics(reg: MetricsRegistry) -> None:
    """Copy the engine counter table into ``reg`` (delta discipline)."""
    for name, value in engine_counters().items():
        fam = reg.counter(name, _ENGINE_HELP.get(name, name))
        fam.inc(max(0, value - fam.value_for()))


def sync_cache_metrics(reg: MetricsRegistry, cache) -> None:
    """Copy a :class:`PlanCache`'s counters into ``reg``'s families.

    Counter families are monotonically increased by the delta since
    the last sync (so repeated exports don't double-count); gauges are
    set outright.
    """
    counters: Mapping[str, int] = cache.counters()
    hits = counters.get("hits", 0)
    misses = counters.get("misses", 0)
    hit_fam = reg.counter("repro_plan_cache_hits_total")
    miss_fam = reg.counter("repro_plan_cache_misses_total")
    hit_fam.inc(max(0, hits - hit_fam.value_for()))
    miss_fam.inc(max(0, misses - miss_fam.value_for()))
    reg.gauge("repro_plan_cache_entries").set(counters.get("entries", len(cache)))
    total = hits + misses
    reg.gauge("repro_plan_cache_hit_ratio").set(hits / total if total else 0.0)


def sync_feedback_metrics(reg: MetricsRegistry, feedback) -> None:
    """Copy a :class:`FeedbackStore`'s counters into ``reg``.

    Same delta discipline as :func:`sync_cache_metrics`: counters are
    bumped by the delta since the last sync, gauges set outright.
    """
    counters: Mapping[str, int] = feedback.counters()
    ingest_fam = reg.counter("repro_feedback_ingests_total")
    quarantine_fam = reg.counter("repro_feedback_quarantines_total")
    ingest_fam.inc(max(0, counters.get("ingests", 0) - ingest_fam.value_for()))
    quarantine_fam.inc(
        max(0, counters.get("quarantines", 0) - quarantine_fam.value_for())
    )
    reg.gauge("repro_feedback_generation").set(counters.get("generation", 0))
    reg.gauge("repro_feedback_entries").set(counters.get("entries", 0))


__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "RATIO_BUCKETS",
    "SAMPLE_WINDOW",
    "parse_prometheus",
    "quantile",
    "service_registry",
    "sync_cache_metrics",
    "sync_feedback_metrics",
    "record_engine_counter",
    "engine_counters",
    "sync_engine_metrics",
]
