"""Structured tracing for the plan lifecycle.

Observability sibling of :mod:`repro.runtime.faults`: where faults
*inject* behaviour at well-known points in the stack, this module
*records* it.  The two layers deliberately share one seam -- the
operator-site naming table -- so a span named ``vector.join`` is the
same place a ``vector.join:crash`` fault would fire.

A :class:`Tracer` owns a forest of :class:`Span` nodes.  Each span has
a monotonic start time and duration, free-form string tags, integer
counters, and children.  Activation is **contextvar-scoped** exactly
like fault streams: :func:`trace_scope` binds a tracer to the current
context (thread/task), so the QueryService's worker pool can trace
concurrent queries without cross-talk, and nested :func:`span` calls
build the tree through a second contextvar holding the innermost open
span.

When no tracer is active, :func:`span` / :func:`trace_op` return a
shared no-op context manager and :func:`add_counter` /
:func:`set_tag` are a single contextvar read -- cheap enough to leave
compiled into the hot engines (the same contract ``fault_point``
honours).  The module-level :data:`SPANS_STARTED` counter only moves
when a span is actually recorded, which is how the test suite asserts
the disabled path allocates nothing.

Exports: :meth:`Tracer.to_dict` (plain JSON),
:meth:`Tracer.to_chrome_trace` (Chrome ``chrome://tracing`` / Perfetto
event list) and :meth:`Tracer.render` (indented text tree, the
backbone of ``EXPLAIN ANALYZE``'s span section).

This module must stay import-light (stdlib + :mod:`repro.runtime.faults`
only): the engines import it at module load.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator

from repro.runtime.faults import _NODE_SITES

_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_tracer", default=None)
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_span", default=None)

#: Total spans ever recorded in this process.  Only incremented when a
#: tracer is active; the disabled-overhead test pins it before/after.
SPANS_STARTED = 0


class Span:
    """One timed node in a trace tree.

    Attributes:
        name: Dotted span name (``"optimize.enumerate"``,
            ``"vector.join"``).
        tags: Free-form string annotations (``engine``, ``stage`` ...).
        counters: Integer event counts (``rows_out``, ``plans`` ...).
        dur_ms: Wall duration in milliseconds; ``None`` while open.
        children: Sub-spans, in start order.
        tid: OS thread ident that opened the span.
    """

    __slots__ = ("name", "tags", "counters", "t0", "dur_ms", "children", "tid")

    def __init__(self, name: str, tags: dict[str, str] | None = None) -> None:
        self.name = name
        self.tags: dict[str, str] = tags or {}
        self.counters: dict[str, int] = {}
        self.t0 = time.perf_counter()
        self.dur_ms: float | None = None
        self.children: list[Span] = []
        self.tid = threading.get_ident()

    def add_counter(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_tag(self, key: str, value: Any) -> None:
        """Attach ``key=value`` (stringified) to the span."""
        self.tags[key] = str(value)

    def iter(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for sp in self.iter():
            if sp.name == name:
                return sp
        return None

    def to_dict(self) -> dict:
        """Plain-data form: name/tags/counters/dur_ms/children."""
        out: dict[str, Any] = {"name": self.name}
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        out["dur_ms"] = None if self.dur_ms is None else round(self.dur_ms, 3)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dur = "open" if self.dur_ms is None else f"{self.dur_ms:.3f}ms"
        return f"Span({self.name!r}, {dur}, children={len(self.children)})"


class Tracer:
    """A forest of spans for one traced unit of work.

    Thread-safe at the root: spans opened with no enclosing span (as
    each worker thread's first span is) append to :attr:`roots` under
    a lock.  Within one context the tree is built lock-free through
    the current-span contextvar.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()

    def _add_root(self, span: Span) -> None:
        with self._lock:
            self.roots.append(span)

    def iter_spans(self) -> Iterator[Span]:
        """Every span in the forest, depth-first."""
        for root in self.roots:
            yield from root.iter()

    def find(self, name: str) -> Span | None:
        """First span named ``name`` anywhere in the forest."""
        for sp in self.iter_spans():
            if sp.name == name:
                return sp
        return None

    def counter_total(self, name: str) -> int:
        """Sum of counter ``name`` across every span."""
        return sum(sp.counters.get(name, 0) for sp in self.iter_spans())

    def to_dict(self) -> dict:
        return {"spans": [r.to_dict() for r in self.roots]}

    def to_chrome_trace(self) -> list[dict]:
        """Chrome-trace event list (``ph: "X"`` complete events).

        Load the JSON into ``chrome://tracing`` or https://ui.perfetto.dev
        for a flame view.  Timestamps are microseconds relative to the
        tracer's creation; thread idents are renumbered densely.
        """
        events: list[dict] = []
        tids: dict[int, int] = {}
        for sp in self.iter_spans():
            tid = tids.setdefault(sp.tid, len(tids))
            args: dict[str, Any] = dict(sp.tags)
            args.update(sp.counters)
            events.append(
                {
                    "name": sp.name,
                    "ph": "X",
                    "ts": round((sp.t0 - self.epoch) * 1e6, 1),
                    "dur": round((sp.dur_ms or 0.0) * 1e3, 1),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        return events

    def render(
        self, *, min_ms: float = 0.0, roots: "list[Span] | None" = None
    ) -> str:
        """Indented text tree: ``name  12.3ms  k=v ...`` per line.

        Args:
            min_ms: Hide spans (and their subtrees) shorter than this.
            roots: Render only these root spans (default: all of them;
                the CLI passes a slice to show one statement's spans
                out of a script-level tracer).
        """
        lines: list[str] = []

        def walk(span: Span, indent: str) -> None:
            if span.dur_ms is not None and span.dur_ms < min_ms:
                return
            dur = "  ..." if span.dur_ms is None else f"  {span.dur_ms:.3f}ms"
            extras = [f"{k}={v}" for k, v in span.tags.items()]
            extras += [f"{k}={v}" for k, v in span.counters.items()]
            tail = ("  " + " ".join(extras)) if extras else ""
            lines.append(f"{indent}{span.name}{dur}{tail}")
            for child in span.children:
                walk(child, indent + "  ")

        for root in self.roots if roots is None else roots:
            walk(root, "")
        return "\n".join(lines)


class _NullCm:
    """Shared do-nothing span context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CM = _NullCm()


class _SpanCm:
    """Opens a span on enter, closes and restores the parent on exit."""

    __slots__ = ("_tracer", "_name", "_tags", "_span", "_token")

    def __init__(self, tracer: Tracer, name: str, tags: dict[str, str] | None):
        self._tracer = tracer
        self._name = name
        self._tags = tags

    def __enter__(self) -> Span:
        global SPANS_STARTED
        SPANS_STARTED += 1
        sp = Span(self._name, self._tags)
        parent = _CURRENT.get()
        if parent is None:
            self._tracer._add_root(sp)
        else:
            parent.children.append(sp)
        self._token = _CURRENT.set(sp)
        self._span = sp
        sp.t0 = time.perf_counter()  # exclude bookkeeping from the timing
        return sp

    def __exit__(self, *exc) -> bool:
        sp = self._span
        sp.dur_ms = (time.perf_counter() - sp.t0) * 1000.0
        _CURRENT.reset(self._token)
        return False


# -- the hooks the rest of the stack calls -------------------------------


def active_tracer() -> Tracer | None:
    """The tracer bound to the current context, if any."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    """The innermost open span in the current context, if any."""
    return _CURRENT.get()


def span(name: str, **tags: str):
    """Context manager recording a span; no-op without an active tracer.

    Usage::

        with tracing.span("optimize.enumerate", stage="full") as sp:
            ...
            if sp is not None:
                sp.add_counter("plans", n)

    The disabled path returns a shared null manager whose ``__enter__``
    yields ``None``; prefer :func:`add_counter` / :func:`set_tag` from
    instrumented callees so they need no span handle at all.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_CM
    return _SpanCm(tracer, name, tags or None)


def trace_op(engine: str, node=None, op: str | None = None):
    """Span for one operator, named like the matching fault site.

    ``engine`` is the site prefix (``"vector"``, ``"hash"``,
    ``"reference"``); the suffix comes from ``op`` or from the
    expression ``node``'s type via the shared site table -- so
    ``trace_op("vector", node)`` times exactly the operator that
    ``fault_point("vector", node)`` can crash.
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_CM
    if op is None:
        name = type(node).__name__
        op = _NODE_SITES.get(name, name.lower())
    return _SpanCm(tracer, f"{engine}.{op}", None)


def add_counter(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the innermost open span.

    A single contextvar read when idle -- safe to call from hot loops
    deep in the engines (GS padding, batch ticks, cache probes).
    """
    sp = _CURRENT.get()
    if sp is not None:
        sp.counters[name] = sp.counters.get(name, 0) + n


def set_tag(key: str, value: Any) -> None:
    """Attach ``key=value`` to the innermost open span (no-op when idle)."""
    sp = _CURRENT.get()
    if sp is not None:
        sp.tags[key] = str(value)


@contextmanager
def trace_scope(tracer: Tracer | None):
    """Activate ``tracer`` for the current context (thread/task).

    Mirrors :func:`repro.runtime.faults.fault_scope`.  Passing ``None``
    yields without touching the context, so call sites can write
    ``with trace_scope(maybe_tracer):`` unconditionally.  The current
    span is reset to ``None`` on entry so a scope started from inside
    another traced region begins a fresh root (worker threads start
    with an empty context and need no such reset, but inline re-entry
    does).
    """
    if tracer is None:
        yield None
        return
    token = _ACTIVE.set(tracer)
    span_token = _CURRENT.set(None)
    try:
        yield tracer
    finally:
        _CURRENT.reset(span_token)
        _ACTIVE.reset(token)


def timed(name: str, fn: Callable[[], Any]) -> Any:
    """Run ``fn()`` inside a span named ``name`` (helper for lambdas)."""
    with span(name):
        return fn()


__all__ = [
    "SPANS_STARTED",
    "Span",
    "Tracer",
    "active_tracer",
    "add_counter",
    "current_span",
    "set_tag",
    "span",
    "timed",
    "trace_op",
    "trace_scope",
]
