"""The :class:`QuerySession` facade: budgets, degradation, verification.

A session owns a database (plus optional SQL catalog and statistics)
and runs queries through a three-rung degradation ladder, each rung
attempted under its slice of the per-query budget:

====  ==============  ====================================================
rung  level           strategy
====  ==============  ====================================================
0     ``FULL``        full rewrite-closure optimization (``optimize``)
1     ``HEURISTIC``   greedy/DP baseline (``greedy_reorder``)
2     ``AS_WRITTEN``  execute the query exactly as the analyst wrote it
====  ==============  ====================================================

A rung is abandoned -- with the reason recorded -- when it raises a
:class:`repro.errors.BudgetExceeded` (the budget's typed family) or an
:class:`repro.errors.OptimizerInternalError`/``ExprError`` (an
optimizer component declined or produced something unexecutable).
Whatever rung answers, the result carries ``degradation_level`` and
``degradation_reason`` so callers can see *how* their answer was made.

With ``verify=True`` the chosen plan is additionally re-executed under
the reference interpreter on a row-sample of the database and compared
(bag semantics) against the original query.  On mismatch the plan is
quarantined for the rest of the session, a structured
:class:`repro.runtime.incidents.Incident` is logged, and the original
query's own result is returned -- the library's known failure mode
("outer-join rewrites are notoriously easy to get subtly wrong")
becomes a contained, observable event instead of silent wrong answers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import BudgetExceeded, OptimizerInternalError
from repro.exec import execute as hash_execute
from repro.exec import execute_vector
from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import Expr, ExprError
from repro.optimizer import (
    OptimizationResult,
    Statistics,
    greedy_reorder,
    optimize,
)
from repro.relalg import Relation
from repro.runtime.budget import Budget
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.plan_cache import PlanCache
from repro.runtime.tracing import set_tag, span


class DegradationLevel(IntEnum):
    """Which rung of the ladder produced the answer."""

    FULL = 0
    HEURISTIC = 1
    AS_WRITTEN = 2


#: Share of the remaining per-query time each optimizing rung may burn
#: before the runtime moves on (rung 2 gets whatever is left).
_STAGE_FRACTIONS = {
    DegradationLevel.FULL: 0.5,
    DegradationLevel.HEURISTIC: 0.6,
}

_EXECUTORS = {
    "reference": evaluate,
    "hash": hash_execute,
    "vector": execute_vector,
}


@dataclass
class SessionResult:
    """One query's answer plus the runtime's account of producing it."""

    relation: Relation
    chosen: Expr
    degradation_level: DegradationLevel
    degradation_reason: str | None
    plans_considered: int
    verified: bool | None  # True = checked OK; None = not checked
    incident: Incident | None
    elapsed_ms: float
    budget_snapshot: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Machine-readable summary (bench JSON, logs)."""
        return {
            "rows": len(self.relation),
            "degradation_level": int(self.degradation_level),
            "degradation_stage": self.degradation_level.name.lower(),
            "degradation_reason": self.degradation_reason,
            "plans_considered": self.plans_considered,
            "verified": self.verified,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "budget": self.budget_snapshot,
            "plan_cache": self.plan_cache,
        }


@dataclass
class StatementOutcome:
    """One SQL statement's effect: a view registration or a result."""

    kind: str  # "view" | "select"
    view_name: str | None = None
    translation: object | None = None
    result: SessionResult | None = None


class QuerySession:
    """The resilient runtime facade every entry point routes through.

    Parameters
    ----------
    db:
        The database queries run against.
    catalog:
        SQL catalog for :meth:`run_sql`; derived from ``db`` when
        omitted.
    stats:
        Optimizer statistics; exact statistics are scanned from ``db``
        when omitted.
    budget:
        A :class:`Budget` *template*: each query gets a fresh budget
        with these limits (so one query cannot starve the next).
    verify:
        Differentially verify every optimized plan against the
        original query on a row-sample before trusting it.
    executor:
        ``"reference"`` (interpreter), ``"hash"`` (row-at-a-time
        hash-join engine) or ``"vector"`` (batch-at-a-time columnar
        engine).
    optimize_fn:
        The rung-0 planner, ``repro.optimize`` by default.  Tests
        inject wrong-plan planners here to exercise the safety net.
    verify_seed:
        Seed for the verification row-sampler: two sessions with the
        same seed draw identical samples, so quarantine incidents are
        reproducible.
    plan_cache:
        Cross-query :class:`PlanCache`; a fresh bounded cache by
        default.  Pass a shared instance to amortize across sessions,
        or ``PlanCache(max_entries=0)`` to disable caching.
    incidents:
        Shared :class:`IncidentLog`; a fresh one by default.  The
        query service passes one log to every worker session so the
        whole pool journals into a single bounded ring.
    quarantined:
        Shared quarantine set; a fresh one by default.  Sharing it
        (together with the plan cache) means a plan quarantined by one
        session is never served by a concurrent one.
    """

    def __init__(
        self,
        db: Database,
        catalog=None,
        stats: Statistics | None = None,
        budget: Budget | None = None,
        verify: bool = False,
        executor: str = "reference",
        max_plans: int = 5000,
        verify_sample_rows: int = 50,
        optimize_fn=None,
        verify_seed: int = 0,
        plan_cache: PlanCache | None = None,
        incidents: IncidentLog | None = None,
        quarantined: set[Expr] | None = None,
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick from {sorted(_EXECUTORS)}"
            )
        self.db = db
        self.catalog = catalog
        self.stats = stats if stats is not None else Statistics.from_database(db)
        self._budget_template = budget
        self.verify = verify
        self.executor = executor
        self.max_plans = max_plans
        self.verify_sample_rows = verify_sample_rows
        self.verify_seed = verify_seed
        self._optimize_fn = optimize_fn if optimize_fn is not None else optimize
        self.incidents = incidents if incidents is not None else IncidentLog()
        self.quarantined: set[Expr] = (
            quarantined if quarantined is not None else set()
        )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()

    # -- plumbing --------------------------------------------------------

    def _fresh_budget(self) -> Budget:
        template = self._budget_template
        if template is None:
            return Budget()
        return Budget(
            deadline_ms=template.deadline_ms,
            max_plans=template.max_plans,
            max_rows=template.max_rows,
        )

    def _execute(self, plan: Expr, budget: Budget) -> Relation:
        return _EXECUTORS[self.executor](plan, self.db, budget)

    @staticmethod
    def _last_resort_budget(run_budget: Budget) -> Budget:
        """Deadline lifted, row cap kept: answer > deadline, but never OOM.

        The cancellation token survives the carve -- a cancelled query
        must stop even at the rung that ignores the deadline.
        """
        return Budget(
            deadline_ms=None,
            max_plans=None,
            max_rows=run_budget.max_rows,
            cancel=run_budget.cancel,
            parent=run_budget,
        )

    def _sample_database(self) -> Database:
        """A seeded row-sample of every base table.

        Tables at or under ``verify_sample_rows`` are taken whole;
        larger ones are down-sampled by a ``random.Random`` seeded with
        ``verify_seed``, with tables visited in sorted-name order -- so
        two sessions with the same seed (and database) verify against
        byte-identical samples and quarantine incidents reproduce.
        """
        rng = random.Random(self.verify_seed)
        sampled = Database()
        for name in sorted(self.db.names()):
            relation = self.db[name]
            rows = list(relation.rows)
            if len(rows) > self.verify_sample_rows:
                rows = rng.sample(rows, self.verify_sample_rows)
            sampled.add(name, relation.with_rows(rows))
        return sampled

    # -- the ladder ------------------------------------------------------

    def run(self, query: Expr, budget: Budget | None = None) -> SessionResult:
        """Run ``query`` through the degradation ladder.

        Args:
            query: The logical expression to answer.
            budget: Per-query :class:`Budget`; a fresh one from the
                session template when omitted.

        Raises:
            repro.errors.BudgetExceeded: The row cap was breached even
                at the as-written rung (deadline overruns degrade
                instead of raising).
            repro.errors.QueryCancelled: The budget's cancel token
                fired at a checkpoint.
        """
        with span("session.run", executor=self.executor):
            return self._run(query, budget)

    def _run(self, query: Expr, budget: Budget | None) -> SessionResult:
        t0 = time.monotonic()
        run_budget = budget if budget is not None else self._fresh_budget()
        reasons: list[str] = []

        for level in (DegradationLevel.FULL, DegradationLevel.HEURISTIC):
            try:
                outcome = self._attempt_optimized(query, run_budget, level)
            except (BudgetExceeded, OptimizerInternalError, ExprError) as exc:
                reason = f"{level.name.lower()} stage abandoned: {exc}"
                reasons.append(reason)
                self.incidents.record(
                    Incident(
                        kind="stage-abandoned",
                        query=str(query),
                        detail={
                            "stage": level.name.lower(),
                            "error": type(exc).__name__,
                            "message": str(exc),
                        },
                        action="degraded",
                    )
                )
                continue
            set_tag("stage", outcome.degradation_level.name.lower())
            return self._finalize(outcome, t0, run_budget, reasons)

        # rung 2: the original query.  The deadline bounds *optimization*
        # effort; down here a late answer beats no answer, so only the
        # row cap (the memory guard) stays -- exceeding it propagates as
        # a typed RowBudgetExceeded instead of OOMing the process.
        set_tag("stage", "as_written")
        with span("execute", engine=self.executor, stage="as_written"):
            relation = self._execute(
                query, self._last_resort_budget(run_budget)
            )
        result = SessionResult(
            relation=relation,
            chosen=query,
            degradation_level=DegradationLevel.AS_WRITTEN,
            degradation_reason="; ".join(reasons) or None,
            plans_considered=0,
            verified=None,
            incident=None,
            elapsed_ms=(time.monotonic() - t0) * 1000.0,
            budget_snapshot=run_budget.to_dict(),
            plan_cache={"hit": False, **self.plan_cache.counters()},
        )
        return result

    def _attempt_optimized(
        self, query: Expr, run_budget: Budget, level: DegradationLevel
    ) -> SessionResult:
        """One optimizing rung: plan, execute, verify -- under a slice."""
        stage_budget = run_budget.stage(
            _STAGE_FRACTIONS[level],
            # the heuristic rung runs *because* the plan cap blew; its
            # own effort is bounded structurally (DP / GREEDY_PLAN_CAP)
            max_plans="inherit" if level is DegradationLevel.FULL else None,
            where=f"{level.name.lower()}-stage",
        )
        cache_hit = False
        with span(f"plan.{level.name.lower()}"):
            if level is DegradationLevel.FULL:
                cached = self.plan_cache.lookup(query, self.stats.version)
                if cached is not None:
                    optimized = cached
                    cache_hit = True
                else:
                    optimized = self._optimize_fn(
                        query,
                        self.stats,
                        max_plans=self.max_plans,
                        budget=stage_budget,
                    )
            else:
                optimized = greedy_reorder(query, self.stats, budget=stage_budget)
            plan = self._pick_plan(optimized)
        with span("execute", engine=self.executor):
            relation = self._execute(plan, stage_budget)

        verified: bool | None = None
        incident: Incident | None = None
        if self.verify:
            verified, incident = self._verify_plan(query, plan, run_budget)
            if incident is not None:
                # containment: the optimized answer is not trusted;
                # re-run the original (last-resort budget: a correct
                # late answer beats a fast wrong one).
                relation = self._execute(
                    query, self._last_resort_budget(run_budget)
                )
                return SessionResult(
                    relation=relation,
                    chosen=query,
                    degradation_level=DegradationLevel.AS_WRITTEN,
                    degradation_reason=(
                        "verification mismatch: optimized plan quarantined"
                    ),
                    plans_considered=optimized.plans_considered,
                    verified=False,
                    incident=incident,
                    elapsed_ms=0.0,  # stamped by _finalize
                    budget_snapshot={},
                    plan_cache={"hit": cache_hit},
                )
        # only trustworthy full-rung results are cached: a failed
        # verification never reaches here (handled above), and
        # heuristic plans would shadow the better full plan on reuse
        if level is DegradationLevel.FULL and not cache_hit:
            self.plan_cache.store(query, self.stats.version, optimized)
        return SessionResult(
            relation=relation,
            chosen=plan,
            degradation_level=level,
            degradation_reason=None,
            plans_considered=optimized.plans_considered,
            verified=verified,
            incident=incident,
            elapsed_ms=0.0,  # stamped by _finalize
            budget_snapshot={},
            plan_cache={"hit": cache_hit},
        )

    def _finalize(
        self,
        result: SessionResult,
        t0: float,
        run_budget: Budget,
        reasons: list[str],
    ) -> SessionResult:
        result.elapsed_ms = (time.monotonic() - t0) * 1000.0
        result.budget_snapshot = run_budget.to_dict()
        result.plan_cache = {**result.plan_cache, **self.plan_cache.counters()}
        if result.degradation_reason is None and reasons:
            result.degradation_reason = "; ".join(reasons)
        return result

    def _pick_plan(self, optimized: OptimizationResult) -> Expr:
        """The cheapest candidate that is not quarantined."""
        if optimized.best not in self.quarantined:
            return optimized.best
        for _, plan in optimized.ranked:
            if plan not in self.quarantined:
                return plan
        raise OptimizerInternalError(
            "every candidate plan is quarantined by earlier verification failures"
        )

    # -- verification ----------------------------------------------------

    def _verify_plan(
        self, original: Expr, plan: Expr, run_budget: Budget
    ) -> tuple[bool | None, Incident | None]:
        """Differentially check ``plan`` against ``original`` on a sample.

        Returns ``(verified, incident)``.  ``verified`` is None when the
        check could not finish inside the budget (recorded, not fatal:
        an unverified plan is still the best plan we have).
        """
        if plan == original:
            return True, None
        with span("verify"):
            return self._verify_on_sample(original, plan, run_budget)

    def _verify_on_sample(
        self, original: Expr, plan: Expr, run_budget: Budget
    ) -> tuple[bool | None, Incident | None]:
        sample = self._sample_database()
        remaining = run_budget.remaining_ms
        check_budget = Budget(
            deadline_ms=None if remaining == float("inf") else remaining,
            cancel=run_budget.cancel,
        )
        try:
            reference = evaluate(original, sample, budget=check_budget)
            candidate = evaluate(plan, sample, budget=check_budget)
        except BudgetExceeded as exc:
            self.incidents.record(
                Incident(
                    kind="verification-skipped",
                    query=str(original),
                    detail=exc.to_dict(),
                    action="accepted-unverified-plan",
                )
            )
            return None, None
        if reference.same_content(candidate):
            return True, None
        self.quarantined.add(plan)
        evicted = self.plan_cache.evict_plan(plan)
        incident = self.incidents.record(
            Incident(
                kind="verification-mismatch",
                query=str(original),
                detail={
                    "plan": str(plan),
                    "sample_rows": {
                        name: len(sample[name]) for name in sample.names()
                    },
                    "verify_seed": self.verify_seed,
                    "reference_rows": len(reference),
                    "plan_rows": len(candidate),
                    "plan_cache": {
                        "evicted": evicted,
                        **self.plan_cache.counters(),
                    },
                },
                action="quarantined-plan; fell back to original",
            )
        )
        return False, incident

    # -- SQL front door --------------------------------------------------

    def _ensure_catalog(self):
        if self.catalog is None:
            from repro.sql import SqlCatalog

            catalog = SqlCatalog()
            for name in self.db.names():
                catalog.add_table(name, tuple(self.db[name].real))
            self.catalog = catalog
        return self.catalog

    def run_sql(self, text: str) -> list[StatementOutcome]:
        """Run a ``;``-separated SQL script through the ladder.

        ``create view`` statements register views in the session
        catalog; every ``select`` runs via :meth:`run`.

        Args:
            text: The SQL script (the subset in ``repro.sql``).

        Raises:
            repro.errors.UserInputError: The script does not parse or
                references unknown tables/columns.
        """
        from repro.sql import parse_statements, translate
        from repro.sql.ast import CreateViewStmt

        catalog = self._ensure_catalog()
        outcomes: list[StatementOutcome] = []
        for statement in parse_statements(text):
            if isinstance(statement, CreateViewStmt):
                catalog.add_view(statement)
                outcomes.append(
                    StatementOutcome(kind="view", view_name=statement.name)
                )
                continue
            translation = translate(statement, catalog)
            outcomes.append(
                StatementOutcome(
                    kind="select",
                    translation=translation,
                    result=self.run(translation.expr),
                )
            )
        return outcomes

    # -- planning without execution (EXPLAIN) ----------------------------

    def plan(
        self, query: Expr, budget: Budget | None = None
    ) -> tuple[OptimizationResult | None, DegradationLevel, str | None]:
        """The ladder's planning half only (for EXPLAIN-style output).

        Args:
            query: The logical expression to plan.
            budget: Per-query :class:`Budget`; a fresh one from the
                session template when omitted.

        Returns:
            ``(optimized, level, reason)`` -- the optimization result
            (``None`` when every optimizing rung was abandoned), the
            rung that produced it, and the abandoned rungs' reasons.
        """
        run_budget = budget if budget is not None else self._fresh_budget()
        reasons: list[str] = []
        for level in (DegradationLevel.FULL, DegradationLevel.HEURISTIC):
            try:
                # inside the try: carving from an expired budget raises
                # DeadlineExceeded eagerly, which is just another way
                # for the stage to be abandoned
                stage_budget = run_budget.stage(
                    _STAGE_FRACTIONS[level],
                    max_plans="inherit" if level is DegradationLevel.FULL else None,
                    where=f"{level.name.lower()}-stage",
                )
                if level is DegradationLevel.FULL:
                    cached = self.plan_cache.lookup(query, self.stats.version)
                    if cached is not None:
                        return cached, level, "; ".join(reasons) or None
                    optimized = self._optimize_fn(
                        query,
                        self.stats,
                        max_plans=self.max_plans,
                        budget=stage_budget,
                    )
                    self.plan_cache.store(query, self.stats.version, optimized)
                else:
                    optimized = greedy_reorder(
                        query, self.stats, budget=stage_budget
                    )
            except (BudgetExceeded, OptimizerInternalError, ExprError) as exc:
                reasons.append(f"{level.name.lower()}: {exc}")
                continue
            return optimized, level, "; ".join(reasons) or None
        return None, DegradationLevel.AS_WRITTEN, "; ".join(reasons) or None
