"""The :class:`QuerySession` facade: budgets, degradation, verification.

A session owns a database (plus optional SQL catalog and statistics)
and runs queries through a degradation ladder, each rung attempted
under its slice of the per-query budget:

====  ==================  ================================================
rung  level               strategy
====  ==================  ================================================
0     ``FULL``            full rewrite-closure optimization (``optimize``)
1     ``PARTITIONED_DP``  partition-solve-stitch enumeration tier
2     ``GOO``             greedy operator ordering tier
3     ``GREEDY``          greedy/DP baseline (``greedy_reorder``)
4     ``AS_WRITTEN``      execute the query exactly as the analyst wrote
====  ==================  ================================================

Which rungs are *attempted* is a policy, not a crash path: the
``enum_tier`` session knob (``auto`` by default) and the budget's
:class:`repro.runtime.budget.TierThresholds` pick a rung list by the
query's relation count -- small queries go ``FULL -> GREEDY``,
mid-size ones ``PARTITIONED_DP -> GOO -> GREEDY``, very large ones
``GOO -> GREEDY`` (see :func:`repro.optimizer.tiers.choose_tier`).
Forcing ``enum_tier`` pins the first rung for experiments.

A rung is abandoned -- with the reason recorded -- when it raises a
:class:`repro.errors.BudgetExceeded` (the budget's typed family) or an
:class:`repro.errors.OptimizerInternalError`/``ExprError`` (an
optimizer component declined or produced something unexecutable).
Whatever rung answers, the result carries ``degradation_level`` and
``degradation_reason`` so callers can see *how* their answer was made.

With ``verify=True`` the chosen plan is additionally re-executed under
the reference interpreter on a row-sample of the database and compared
(bag semantics) against the original query.  On mismatch the plan is
quarantined for the rest of the session, a structured
:class:`repro.runtime.incidents.Incident` is logged, and the original
query's own result is returned -- the library's known failure mode
("outer-join rewrites are notoriously easy to get subtly wrong")
becomes a contained, observable event instead of silent wrong answers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import BudgetExceeded, OptimizerInternalError, ReplanTriggered
from repro.exec import execute as hash_execute
from repro.exec import execute_vector
from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import Expr, ExprError
from repro.optimizer import (
    OptimizationResult,
    Statistics,
    goo_reorder,
    greedy_reorder,
    optimize,
    partitioned_reorder,
)
from repro.optimizer.cost import CostModel
from repro.optimizer.tiers import TIER_NAMES
from repro.relalg import Relation
from repro.runtime.budget import DEFAULT_TIERS, Budget, TierThresholds
from repro.runtime.faults import fault_point
from repro.runtime.feedback import (
    CardinalityMonitor,
    FeedbackStore,
    monitor_scope,
)
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.plan_cache import PlanCache
from repro.runtime.tracing import set_tag, span


class DegradationLevel(IntEnum):
    """Which rung of the ladder produced the answer.

    ``HEURISTIC`` is a backward-compatible alias of ``GREEDY`` (the
    pre-tier name of the rung): identity comparisons written against
    the old three-rung ladder keep working, while ``.name`` reports
    the current ``GREEDY``.
    """

    FULL = 0
    PARTITIONED_DP = 1
    GOO = 2
    GREEDY = 3
    HEURISTIC = 3  # legacy alias
    AS_WRITTEN = 4


#: Share of the remaining per-query time each optimizing rung may burn
#: before the runtime moves on (the as-written rung gets what's left).
_STAGE_FRACTIONS = {
    DegradationLevel.FULL: 0.5,
    DegradationLevel.PARTITIONED_DP: 0.5,
    DegradationLevel.GOO: 0.5,
    DegradationLevel.GREEDY: 0.6,
}

_EXECUTORS = {
    "reference": evaluate,
    "hash": hash_execute,
    "vector": execute_vector,
}


@dataclass
class SessionResult:
    """One query's answer plus the runtime's account of producing it."""

    relation: Relation
    chosen: Expr
    degradation_level: DegradationLevel
    degradation_reason: str | None
    plans_considered: int
    verified: bool | None  # True = checked OK; None = not checked
    incident: Incident | None
    elapsed_ms: float
    budget_snapshot: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)
    replans: int = 0
    replan_events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """Machine-readable summary (bench JSON, logs)."""
        return {
            "rows": len(self.relation),
            "degradation_level": int(self.degradation_level),
            "degradation_stage": self.degradation_level.name.lower(),
            "degradation_reason": self.degradation_reason,
            "plans_considered": self.plans_considered,
            "verified": self.verified,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "budget": self.budget_snapshot,
            "plan_cache": self.plan_cache,
            "replans": self.replans,
        }


@dataclass
class StatementOutcome:
    """One SQL statement's effect: a view registration or a result."""

    kind: str  # "view" | "select"
    view_name: str | None = None
    translation: object | None = None
    result: SessionResult | None = None


class QuerySession:
    """The resilient runtime facade every entry point routes through.

    Parameters
    ----------
    db:
        The database queries run against.
    catalog:
        SQL catalog for :meth:`run_sql`; derived from ``db`` when
        omitted.
    stats:
        Optimizer statistics; exact statistics are scanned from ``db``
        when omitted.
    budget:
        A :class:`Budget` *template*: each query gets a fresh budget
        with these limits (so one query cannot starve the next).
    verify:
        Differentially verify every optimized plan against the
        original query on a row-sample before trusting it.
    executor:
        ``"reference"`` (interpreter), ``"hash"`` (row-at-a-time
        hash-join engine) or ``"vector"`` (batch-at-a-time columnar
        engine).
    optimize_fn:
        The rung-0 planner, ``repro.optimize`` by default.  Tests
        inject wrong-plan planners here to exercise the safety net.
    verify_seed:
        Seed for the verification row-sampler: two sessions with the
        same seed draw identical samples, so quarantine incidents are
        reproducible.
    plan_cache:
        Cross-query :class:`PlanCache`; a fresh bounded cache by
        default.  Pass a shared instance to amortize across sessions,
        or ``PlanCache(max_entries=0)`` to disable caching.
    incidents:
        Shared :class:`IncidentLog`; a fresh one by default.  The
        query service passes one log to every worker session so the
        whole pool journals into a single bounded ring.
    quarantined:
        Shared quarantine set; a fresh one by default.  Sharing it
        (together with the plan cache) means a plan quarantined by one
        session is never served by a concurrent one.
    feedback:
        A :class:`repro.runtime.feedback.FeedbackStore` to learn
        observed cardinalities into (shareable across sessions, like
        the plan cache).  When present, every monitored execution's
        est/actual deltas are ingested, the estimator corrects future
        plans with them, and the store's generation is composed into
        the plan-cache key so corrected estimates invalidate stale
        plans automatically.  ``None`` (the default) disables
        feedback unless ``replan_threshold`` is set, in which case a
        private store is created.
    replan_threshold:
        Arm mid-query re-planning: when an operator's actual
        cardinality exceeds its estimate by this factor (e.g. ``4.0``
        = 4x), the full-rung execution aborts, re-costs with the
        observed counts, and resumes from materialized intermediates.
        ``None`` (the default) disables re-planning.
    max_replans:
        Re-plans allowed per query before the session gives up and
        runs the current plan to completion (the give-up path into the
        normal degradation ladder) -- re-planning can never loop.
    metrics:
        Optional :class:`repro.runtime.metrics.MetricsRegistry` for
        re-plan counters and est/actual ratio histograms (the service
        passes its own registry to every worker session).
    enum_tier:
        Join-enumeration tier policy: ``"auto"`` (default) picks the
        first rung from the query's relation count and the budget's
        :class:`repro.runtime.budget.TierThresholds`; ``"dp"``,
        ``"partitioned"`` and ``"goo"`` pin it for experiments (the
        greedy and as-written rungs always remain below).
    """

    def __init__(
        self,
        db: Database,
        catalog=None,
        stats: Statistics | None = None,
        budget: Budget | None = None,
        verify: bool = False,
        executor: str = "reference",
        max_plans: int = 5000,
        verify_sample_rows: int = 50,
        optimize_fn=None,
        verify_seed: int = 0,
        plan_cache: PlanCache | None = None,
        incidents: IncidentLog | None = None,
        quarantined: set[Expr] | None = None,
        feedback: FeedbackStore | None = None,
        replan_threshold: float | None = None,
        max_replans: int = 2,
        metrics=None,
        enum_tier: str = "auto",
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; pick from {sorted(_EXECUTORS)}"
            )
        if enum_tier not in TIER_NAMES:
            raise ValueError(
                f"unknown enum_tier {enum_tier!r}; pick from {sorted(TIER_NAMES)}"
            )
        self.db = db
        self.catalog = catalog
        self.stats = stats if stats is not None else Statistics.from_database(db)
        self._budget_template = budget
        self.verify = verify
        self.executor = executor
        self.max_plans = max_plans
        self.verify_sample_rows = verify_sample_rows
        self.verify_seed = verify_seed
        self._optimize_fn = optimize_fn if optimize_fn is not None else optimize
        self.incidents = incidents if incidents is not None else IncidentLog()
        self.quarantined: set[Expr] = (
            quarantined if quarantined is not None else set()
        )
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        if feedback is None and replan_threshold is not None:
            feedback = FeedbackStore()
        self.feedback = feedback
        if feedback is not None:
            # the estimator reads corrections through the stats object
            self.stats.feedback = feedback
        self.replan_threshold = replan_threshold
        self.max_replans = max_replans
        self.metrics = metrics
        self.enum_tier = enum_tier

    # -- plumbing --------------------------------------------------------

    def _fresh_budget(self) -> Budget:
        template = self._budget_template
        if template is None:
            return Budget()
        return Budget(
            deadline_ms=template.deadline_ms,
            max_plans=template.max_plans,
            max_rows=template.max_rows,
            tiers=template.tiers,
        )

    def _thresholds(self, budget: Budget) -> TierThresholds:
        if budget.tiers is not None:
            return budget.tiers
        template = self._budget_template
        if template is not None and template.tiers is not None:
            return template.tiers
        return DEFAULT_TIERS

    def _rungs(self, query: Expr, thresholds: TierThresholds) -> tuple:
        """The optimizing rungs to attempt, best-first (policy, not crash).

        The as-written rung is implicit below whatever is returned.
        """
        if self.enum_tier == "dp":
            return (DegradationLevel.FULL, DegradationLevel.GREEDY)
        if self.enum_tier == "partitioned":
            return (DegradationLevel.PARTITIONED_DP, DegradationLevel.GREEDY)
        if self.enum_tier == "goo":
            return (DegradationLevel.GOO, DegradationLevel.GREEDY)
        n = len(query.base_names)
        if n <= thresholds.full_max_relations:
            return (DegradationLevel.FULL, DegradationLevel.GREEDY)
        if n <= thresholds.partitioned_max_relations:
            return (
                DegradationLevel.PARTITIONED_DP,
                DegradationLevel.GOO,
                DegradationLevel.GREEDY,
            )
        return (DegradationLevel.GOO, DegradationLevel.GREEDY)

    def _plan_rung(
        self,
        query: Expr,
        level: DegradationLevel,
        stage_budget: Budget,
        thresholds: TierThresholds,
    ) -> OptimizationResult:
        """Invoke one rung's planner."""
        if level is DegradationLevel.FULL:
            return self._optimize_fn(
                query, self.stats, max_plans=self.max_plans, budget=stage_budget
            )
        if level is DegradationLevel.PARTITIONED_DP:
            return partitioned_reorder(
                query, self.stats, budget=stage_budget, thresholds=thresholds
            )
        if level is DegradationLevel.GOO:
            return goo_reorder(query, self.stats, budget=stage_budget)
        return greedy_reorder(query, self.stats, budget=stage_budget)

    def _count_tier(self, level: DegradationLevel) -> None:
        if self.metrics is not None:
            self.metrics.counter("repro_enum_tier_total").labels(
                tier=level.name.lower()
            ).inc()

    def _execute(self, plan: Expr, budget: Budget) -> Relation:
        return _EXECUTORS[self.executor](plan, self.db, budget)

    def _plan_version(self, required_order=()):
        """The plan-cache version key: ``stats_version`` alone, or
        composed with the feedback generation so corrected estimates
        invalidate stale plans automatically.  A required output order
        is part of the key too -- an order-aware plan must not be
        served to (or shadowed by) an order-indifferent run of the
        same query."""
        version = self.stats.version
        if self.feedback is not None:
            version = (version, self.feedback.generation)
        if required_order:
            version = (version, ("order",) + tuple(required_order))
        return version

    @staticmethod
    def _last_resort_budget(run_budget: Budget) -> Budget:
        """Deadline lifted, row cap kept: answer > deadline, but never OOM.

        The cancellation token survives the carve -- a cancelled query
        must stop even at the rung that ignores the deadline.
        """
        return Budget(
            deadline_ms=None,
            max_plans=None,
            max_rows=run_budget.max_rows,
            cancel=run_budget.cancel,
            parent=run_budget,
        )

    def _sample_database(self) -> Database:
        """A seeded row-sample of every base table.

        Tables at or under ``verify_sample_rows`` are taken whole;
        larger ones are down-sampled by a ``random.Random`` seeded with
        ``verify_seed``, with tables visited in sorted-name order -- so
        two sessions with the same seed (and database) verify against
        byte-identical samples and quarantine incidents reproduce.
        """
        rng = random.Random(self.verify_seed)
        sampled = Database()
        for name in sorted(self.db.names()):
            relation = self.db[name]
            rows = list(relation.rows)
            if len(rows) > self.verify_sample_rows:
                rows = rng.sample(rows, self.verify_sample_rows)
            sampled.add(name, relation.with_rows(rows))
        return sampled

    # -- the ladder ------------------------------------------------------

    def run(
        self,
        query: Expr,
        budget: Budget | None = None,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> SessionResult:
        """Run ``query`` through the degradation ladder.

        Args:
            query: The logical expression to answer.
            budget: Per-query :class:`Budget`; a fresh one from the
                session template when omitted.
            required_order: ``(attribute, descending)`` pairs the
                caller wants the answer ordered by (the query's ORDER
                BY).  The optimizer tries to provide it cheaply (sort
                pushed below joins, streamed through groupings); when
                the chosen plan cannot, the caller must sort the
                result itself -- check the plan's provided order.

        Raises:
            repro.errors.BudgetExceeded: The row cap was breached even
                at the as-written rung (deadline overruns degrade
                instead of raising).
            repro.errors.QueryCancelled: The budget's cancel token
                fired at a checkpoint.
        """
        with span("session.run", executor=self.executor):
            return self._run(query, budget, required_order)

    def _run(
        self,
        query: Expr,
        budget: Budget | None,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> SessionResult:
        t0 = time.monotonic()
        run_budget = budget if budget is not None else self._fresh_budget()
        reasons: list[str] = []

        rungs = self._rungs(query, self._thresholds(run_budget))
        for level in rungs:
            try:
                outcome = self._attempt_optimized(
                    query,
                    run_budget,
                    level,
                    primary=level is rungs[0],
                    required_order=required_order,
                )
            except (BudgetExceeded, OptimizerInternalError, ExprError) as exc:
                reason = f"{level.name.lower()} stage abandoned: {exc}"
                reasons.append(reason)
                self.incidents.record(
                    Incident(
                        kind="stage-abandoned",
                        query=str(query),
                        detail={
                            "stage": level.name.lower(),
                            "error": type(exc).__name__,
                            "message": str(exc),
                        },
                        action="degraded",
                    )
                )
                continue
            set_tag("stage", outcome.degradation_level.name.lower())
            self._count_tier(outcome.degradation_level)
            return self._finalize(outcome, t0, run_budget, reasons)

        # rung 2: the original query.  The deadline bounds *optimization*
        # effort; down here a late answer beats no answer, so only the
        # row cap (the memory guard) stays -- exceeding it propagates as
        # a typed RowBudgetExceeded instead of OOMing the process.
        set_tag("stage", "as_written")
        self._count_tier(DegradationLevel.AS_WRITTEN)
        with span("execute", engine=self.executor, stage="as_written"):
            relation = self._execute(
                query, self._last_resort_budget(run_budget)
            )
        result = SessionResult(
            relation=relation,
            chosen=query,
            degradation_level=DegradationLevel.AS_WRITTEN,
            degradation_reason="; ".join(reasons) or None,
            plans_considered=0,
            verified=None,
            incident=None,
            elapsed_ms=(time.monotonic() - t0) * 1000.0,
            budget_snapshot=run_budget.to_dict(),
            plan_cache={"hit": False, **self.plan_cache.counters()},
        )
        return result

    def _attempt_optimized(
        self,
        query: Expr,
        run_budget: Budget,
        level: DegradationLevel,
        primary: bool = True,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> SessionResult:
        """One optimizing rung: plan, execute, verify -- under a slice.

        ``primary`` marks the rung the tier policy chose first: only
        its plans go through the cross-query plan cache (a lower rung's
        plan reached after a failure would shadow the better plan on
        reuse).
        """
        stage_budget = run_budget.stage(
            _STAGE_FRACTIONS[level],
            # the fallback rungs run *because* the plan cap blew; their
            # own effort is bounded structurally (tiers / GREEDY_PLAN_CAP)
            max_plans="inherit" if level is DegradationLevel.FULL else None,
            where=f"{level.name.lower()}-stage",
        )
        cache_hit = False
        with span(f"plan.{level.name.lower()}"):
            optimized = None
            if primary:
                cached = self.plan_cache.lookup(
                    query, self._plan_version(required_order)
                )
                if cached is not None:
                    optimized = cached
                    cache_hit = True
            if optimized is None:
                optimized = self._plan_rung(
                    query, level, stage_budget, self._thresholds(run_budget)
                )
                optimized = self._order_pass(
                    optimized, required_order, stage_budget
                )
            plan = self._pick_plan(optimized)
        if self.feedback is not None:
            relation, plan, optimized, replans, replan_events = (
                self._execute_adaptive(query, plan, optimized, stage_budget, level)
            )
        else:
            replans, replan_events = 0, []
            with span("execute", engine=self.executor):
                relation = self._execute(plan, stage_budget)

        verified: bool | None = None
        incident: Incident | None = None
        if self.verify:
            verified, incident = self._verify_plan(query, plan, run_budget)
            if incident is not None:
                # containment: the optimized answer is not trusted;
                # re-run the original (last-resort budget: a correct
                # late answer beats a fast wrong one).
                relation = self._execute(
                    query, self._last_resort_budget(run_budget)
                )
                return SessionResult(
                    relation=relation,
                    chosen=query,
                    degradation_level=DegradationLevel.AS_WRITTEN,
                    degradation_reason=(
                        "verification mismatch: optimized plan quarantined"
                    ),
                    plans_considered=optimized.plans_considered,
                    verified=False,
                    incident=incident,
                    elapsed_ms=0.0,  # stamped by _finalize
                    budget_snapshot={},
                    plan_cache={"hit": cache_hit},
                    replans=replans,
                    replan_events=replan_events,
                )
        # only trustworthy primary-rung results are cached: a failed
        # verification never reaches here (handled above), and a
        # fallback rung's plan would shadow the better primary plan on
        # reuse.  A re-planned query re-stores even on a cache hit: the
        # hit was under the pre-feedback generation, and ``optimized``
        # now holds the corrected plan keyed by the bumped generation.
        if primary and (not cache_hit or replans):
            self.plan_cache.store(
                query, self._plan_version(required_order), optimized
            )
        return SessionResult(
            relation=relation,
            chosen=plan,
            degradation_level=level,
            degradation_reason=None,
            plans_considered=optimized.plans_considered,
            verified=verified,
            incident=incident,
            elapsed_ms=0.0,  # stamped by _finalize
            budget_snapshot={},
            plan_cache={"hit": cache_hit},
            replans=replans,
            replan_events=replan_events,
        )

    def _order_pass(
        self,
        optimized: OptimizationResult,
        required_order: tuple[tuple[str, bool], ...],
        stage_budget: Budget,
    ) -> OptimizationResult:
        """Order-aware refinement of the rung's chosen plan.

        Re-plans the inner-join core with the Pareto DP (interesting
        orders from join keys, group keys and ``required_order``) and
        keeps whichever of {rung plan, ordered candidates} has the
        lowest refined cost.  A pass that declines (non-inner core,
        budget, internal error) leaves the rung's result untouched --
        ordering is an optimization, never a failure mode.
        """
        from repro.optimizer.orders import order_aware_reorder

        try:
            with span("plan.order"):
                best = order_aware_reorder(
                    optimized.best,
                    self.stats,
                    required=tuple(required_order),
                    budget=stage_budget,
                )
        except (BudgetExceeded, OptimizerInternalError, ExprError):
            return optimized
        if best == optimized.best:
            return optimized
        cost = CostModel(self.stats).cost(best)
        return OptimizationResult(
            best=best,
            best_cost=cost,
            original_cost=optimized.original_cost,
            plans_considered=optimized.plans_considered,
            ranked=[(cost, best)] + optimized.ranked,
        )

    # -- adaptive execution (cardinality feedback + re-planning) ---------

    def _execute_adaptive(
        self,
        query: Expr,
        plan: Expr,
        optimized: OptimizationResult,
        stage_budget: Budget,
        level: DegradationLevel,
    ) -> tuple[Relation, Expr, OptimizationResult, int, list]:
        """Execute ``plan`` under a cardinality monitor.

        Every operator boundary reports est/actual to the monitor;
        observations are ingested into the feedback store either way,
        so *future* queries plan on corrected estimates.  When armed
        (``replan_threshold`` set, full rung only -- the heuristic rung
        observes without triggering), an actual count beyond Nx its
        estimate aborts execution mid-query: the session ingests the
        observed counts, re-optimizes under what remains of the stage
        budget, and re-executes -- with the monitor's materialized
        intermediates serving every subtree the new plan shares with
        the old one.  After ``max_replans`` re-plans (or a failed
        re-optimization) the monitor is disarmed and the current plan
        runs to completion; a blown budget still degrades down the
        normal ladder.  ``replan.trigger`` / ``replan.reoptimize`` /
        ``replan.resume`` are both tracing spans and fault-injection
        sites.
        """
        armed = (
            self.replan_threshold is not None
            and level is DegradationLevel.FULL
        )
        monitor = CardinalityMonitor(
            threshold=self.replan_threshold if armed else None,
            max_cached_rows=(
                stage_budget.max_rows
                if stage_budget.max_rows is not None
                else 200_000
            ),
        )
        self._stamp_estimates(monitor, plan)
        replans = 0
        events: list[dict] = []
        while True:
            try:
                with span(
                    "execute", engine=self.executor, replans=str(replans)
                ), monitor_scope(monitor):
                    relation = self._execute(plan, stage_budget)
                break
            except ReplanTriggered as trigger:
                replans += 1
                plan, optimized = self._handle_replan(
                    query, plan, optimized, stage_budget,
                    monitor, trigger, replans, events,
                )
        self._ingest_observations(monitor)
        return relation, plan, optimized, replans, events

    def _handle_replan(
        self,
        query: Expr,
        plan: Expr,
        optimized: OptimizationResult,
        stage_budget: Budget,
        monitor: CardinalityMonitor,
        trigger: ReplanTriggered,
        replans: int,
        events: list,
    ) -> tuple[Expr, OptimizationResult]:
        """One triggered re-plan; returns the plan to resume with."""
        event = {**trigger.to_dict(), "replans": replans}
        event.pop("error", None)
        with span(
            "replan.trigger",
            site=trigger.site,
            est=f"{trigger.est:g}",
            actual=f"{trigger.actual:g}",
        ):
            fault_point("replan", op="trigger")
            # believe the observed counts before re-costing: this bumps
            # the feedback generation, so the stale cached plan for this
            # query self-invalidates
            self._ingest_observations(monitor)

        if replans > self.max_replans:
            monitor.disarm()
            event["outcome"] = "gave-up"
            self._record_replan(query, event, "replan-cap-reached")
            events.append(event)
            return plan, optimized

        with span("replan.reoptimize"):
            fault_point("replan", op="reoptimize")
            model = CostModel(self.stats)
            try:
                event["old_cost"] = model.cost(plan)
                reopt = self._optimize_fn(
                    query,
                    self.stats,
                    max_plans=self.max_plans,
                    budget=stage_budget,
                )
                new_plan = self._pick_plan(reopt)
                event["new_cost"] = model.cost(new_plan)
            except (BudgetExceeded, OptimizerInternalError, ExprError) as exc:
                # give up re-planning, keep the answer coming: the
                # current plan runs to completion (shared subtrees are
                # already materialized), and a truly blown budget still
                # degrades down the normal ladder
                monitor.disarm()
                event["outcome"] = "reoptimize-failed"
                event["error"] = f"{type(exc).__name__}: {exc}"
                self._record_replan(query, event, "reoptimize-failed")
                events.append(event)
                return plan, optimized

        if new_plan == plan:
            # the estimates moved but the plan did not; the monitor's
            # fired-set guarantees this node cannot trigger again
            event["outcome"] = "same-plan"
            self._record_replan(query, event, "same-plan")
            events.append(event)
            return plan, optimized

        with span("replan.resume", reused=str(monitor.reused)):
            fault_point("replan", op="resume")
            self._stamp_estimates(monitor, new_plan)
        event["outcome"] = "replanned"
        self._record_replan(query, event, "replanned")
        events.append(event)
        return new_plan, reopt

    def _stamp_estimates(self, monitor: CardinalityMonitor, plan: Expr) -> None:
        """Stamp per-node row estimates for the plan about to run."""
        model = CostModel(self.stats)
        monitor.stamp(plan, lambda node: model.estimate(node).rows)

    def _ingest_observations(self, monitor: CardinalityMonitor) -> None:
        """Drain the monitor's est/actual pairs into the store."""
        if self.feedback is None:
            return
        version = self.stats.version
        for node, est, actual in monitor.drain():
            self.feedback.observe(node, est, actual, stats_version=version)
            if self.metrics is not None and est is not None and est > 0:
                self.metrics.histogram("repro_estimate_error_ratio").observe(
                    actual / est
                )

    def _record_replan(self, query: Expr, event: dict, outcome: str) -> None:
        self.incidents.record(
            Incident(
                kind="replan",
                query=str(query),
                detail=dict(event),
                action=outcome,
            )
        )
        if self.metrics is not None:
            self.metrics.counter("repro_replans_total").labels(
                outcome=event.get("outcome", outcome)
            ).inc()

    def _finalize(
        self,
        result: SessionResult,
        t0: float,
        run_budget: Budget,
        reasons: list[str],
    ) -> SessionResult:
        result.elapsed_ms = (time.monotonic() - t0) * 1000.0
        result.budget_snapshot = run_budget.to_dict()
        result.plan_cache = {**result.plan_cache, **self.plan_cache.counters()}
        if result.degradation_reason is None and reasons:
            result.degradation_reason = "; ".join(reasons)
        return result

    def _pick_plan(self, optimized: OptimizationResult) -> Expr:
        """The cheapest candidate that is not quarantined."""
        if optimized.best not in self.quarantined:
            return optimized.best
        for _, plan in optimized.ranked:
            if plan not in self.quarantined:
                return plan
        raise OptimizerInternalError(
            "every candidate plan is quarantined by earlier verification failures"
        )

    # -- verification ----------------------------------------------------

    def _verify_plan(
        self, original: Expr, plan: Expr, run_budget: Budget
    ) -> tuple[bool | None, Incident | None]:
        """Differentially check ``plan`` against ``original`` on a sample.

        Returns ``(verified, incident)``.  ``verified`` is None when the
        check could not finish inside the budget (recorded, not fatal:
        an unverified plan is still the best plan we have).
        """
        if plan == original:
            return True, None
        with span("verify"):
            return self._verify_on_sample(original, plan, run_budget)

    def _verify_on_sample(
        self, original: Expr, plan: Expr, run_budget: Budget
    ) -> tuple[bool | None, Incident | None]:
        sample = self._sample_database()
        remaining = run_budget.remaining_ms
        check_budget = Budget(
            deadline_ms=None if remaining == float("inf") else remaining,
            cancel=run_budget.cancel,
        )
        try:
            reference = evaluate(original, sample, budget=check_budget)
            candidate = evaluate(plan, sample, budget=check_budget)
        except BudgetExceeded as exc:
            self.incidents.record(
                Incident(
                    kind="verification-skipped",
                    query=str(original),
                    detail=exc.to_dict(),
                    action="accepted-unverified-plan",
                )
            )
            return None, None
        if reference.same_content(candidate):
            return True, None
        self.quarantined.add(plan)
        evicted = self.plan_cache.evict_plan(plan)
        incident = self.incidents.record(
            Incident(
                kind="verification-mismatch",
                query=str(original),
                detail={
                    "plan": str(plan),
                    "sample_rows": {
                        name: len(sample[name]) for name in sample.names()
                    },
                    "verify_seed": self.verify_seed,
                    "reference_rows": len(reference),
                    "plan_rows": len(candidate),
                    "plan_cache": {
                        "evicted": evicted,
                        **self.plan_cache.counters(),
                    },
                },
                action="quarantined-plan; fell back to original",
            )
        )
        return False, incident

    # -- SQL front door --------------------------------------------------

    def _ensure_catalog(self):
        if self.catalog is None:
            from repro.sql import SqlCatalog

            catalog = SqlCatalog()
            for name in self.db.names():
                catalog.add_table(name, tuple(self.db[name].real))
            self.catalog = catalog
        return self.catalog

    def run_sql(self, text: str) -> list[StatementOutcome]:
        """Run a ``;``-separated SQL script through the ladder.

        ``create view`` statements register views in the session
        catalog; every ``select`` runs via :meth:`run`.

        Args:
            text: The SQL script (the subset in ``repro.sql``).

        Raises:
            repro.errors.UserInputError: The script does not parse or
                references unknown tables/columns.
        """
        from repro.sql import parse_statements, translate
        from repro.sql.ast import CreateViewStmt

        catalog = self._ensure_catalog()
        outcomes: list[StatementOutcome] = []
        for statement in parse_statements(text):
            if isinstance(statement, CreateViewStmt):
                catalog.add_view(statement)
                outcomes.append(
                    StatementOutcome(kind="view", view_name=statement.name)
                )
                continue
            translation = translate(statement, catalog)
            outcomes.append(
                StatementOutcome(
                    kind="select",
                    translation=translation,
                    result=self.run(
                        translation.expr,
                        required_order=translation.order_by,
                    ),
                )
            )
        return outcomes

    # -- planning without execution (EXPLAIN) ----------------------------

    def plan(
        self,
        query: Expr,
        budget: Budget | None = None,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> tuple[OptimizationResult | None, DegradationLevel, str | None]:
        """The ladder's planning half only (for EXPLAIN-style output).

        Args:
            query: The logical expression to plan.
            budget: Per-query :class:`Budget`; a fresh one from the
                session template when omitted.
            required_order: Desired output order, as in :meth:`run`.

        Returns:
            ``(optimized, level, reason)`` -- the optimization result
            (``None`` when every optimizing rung was abandoned), the
            rung that produced it, and the abandoned rungs' reasons.
        """
        run_budget = budget if budget is not None else self._fresh_budget()
        thresholds = self._thresholds(run_budget)
        reasons: list[str] = []
        rungs = self._rungs(query, thresholds)
        for level in rungs:
            primary = level is rungs[0]
            try:
                # inside the try: carving from an expired budget raises
                # DeadlineExceeded eagerly, which is just another way
                # for the stage to be abandoned
                stage_budget = run_budget.stage(
                    _STAGE_FRACTIONS[level],
                    max_plans="inherit" if level is DegradationLevel.FULL else None,
                    where=f"{level.name.lower()}-stage",
                )
                if primary:
                    cached = self.plan_cache.lookup(
                        query, self._plan_version(required_order)
                    )
                    if cached is not None:
                        return cached, level, "; ".join(reasons) or None
                optimized = self._plan_rung(query, level, stage_budget, thresholds)
                optimized = self._order_pass(
                    optimized, required_order, stage_budget
                )
                if primary:
                    self.plan_cache.store(
                        query, self._plan_version(required_order), optimized
                    )
            except (BudgetExceeded, OptimizerInternalError, ExprError) as exc:
                reasons.append(f"{level.name.lower()}: {exc}")
                continue
            return optimized, level, "; ".join(reasons) or None
        return None, DegradationLevel.AS_WRITTEN, "; ".join(reasons) or None
