"""Cardinality feedback: query-driven estimates and mid-query re-planning.

Static selectivity estimates go wrong exactly where the paper's
machinery lives -- generalized selections and outer-join reorderings
multiply per-conjunct guesses that no histogram backs up.  Following
the query-driven strategy of Shin (PAPERS.md), this module closes the
loop with two pieces:

* :class:`FeedbackStore` -- a bounded, thread-safe store of observed
  est/actual deltas, keyed two ways: by **predicate fingerprint**
  (a multiplicative selectivity correction that transfers across
  re-ordered join trees) and by **subtree fingerprint** (an exact
  observed row count for a logical subtree the engine has already
  run).  The cost model consults it through
  :meth:`FeedbackStore.corrected_rows`; every *material* correction
  bumps :attr:`FeedbackStore.generation`, which the session composes
  into the plan-cache key so stale plans self-invalidate.
  Suspect observations -- wild est/actual ratios or oscillating
  revisions, e.g. poisoned by a ``feedback:perturb`` fault -- are
  **quarantined** per fingerprint so a poisoned delta can never wedge
  the optimizer permanently.

* :class:`CardinalityMonitor` -- a contextvar-scoped watcher the three
  engines report to at their operator boundaries (the same places
  Budget ticks live).  It records est/actual pairs, caches bounded
  materialized intermediates keyed by ``(subtree, needed-columns)``,
  and -- when armed with an Nx threshold -- raises
  :class:`repro.errors.ReplanTriggered` the first time an operator's
  actual cardinality exceeds its estimate by that factor.  The session
  catches the signal, ingests the observations, re-optimizes with the
  corrected estimates, and re-executes; the monitor's intermediate
  cache turns shared subtrees of the new plan into O(1) lookups, so
  resumption pays only for the plan fragments that actually changed.

Observing is ingestion's fault site: :meth:`FeedbackStore.observe`
applies ``perturb_factor("feedback", "ingest")``, so a fault clause
like ``feedback:perturb=16x`` poisons the store the way a buggy
counter would -- which is precisely what the quarantine machinery is
tested against.

This module must stay import-light (stdlib + :mod:`repro.errors` +
the fault/tracing leaf modules): the engines import it at module load,
while ``repro.runtime``'s package init is still executing.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReplanTriggered, UserInputError
from repro.runtime.faults import _NODE_SITES, perturb_factor

_MONITOR: ContextVar["CardinalityMonitor | None"] = ContextVar(
    "repro_cardinality_monitor", default=None
)

#: corrections are clamped into [1/_MAX_FACTOR, _MAX_FACTOR]
_MAX_FACTOR = 1e6

_MIN_ROWS = 1e-9


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def subtree_key(expr) -> str:
    """Fingerprint of a whole logical subtree (order-sensitive)."""
    return "t:" + _digest(repr(expr))


def predicate_key(predicate) -> str:
    """Fingerprint of one predicate, independent of the join order
    around it -- the correction it indexes transfers to every plan
    that evaluates the same predicate."""
    return "p:" + _digest(repr(predicate))


def _node_site(expr) -> str:
    name = type(expr).__name__
    return _NODE_SITES.get(name, name.lower())


@dataclass
class FeedbackEntry:
    """One fingerprint's accumulated correction."""

    key: str
    kind: str  # "subtree" | "predicate"
    factor: float = 1.0  # predicate: multiplicative selectivity fix
    rows: float | None = None  # subtree: last observed cardinality
    observations: int = 0
    swings: int = 0  # large direction reversals seen so far
    last_log: float = 0.0  # log-ratio of the previous revision
    quarantined: bool = False
    stats_version: int = 0  # entries are inert under other stats

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "factor": self.factor,
            "rows": self.rows,
            "observations": self.observations,
            "swings": self.swings,
            "last_log": self.last_log,
            "quarantined": self.quarantined,
            "stats_version": self.stats_version,
        }

    @staticmethod
    def from_dict(data: dict) -> "FeedbackEntry":
        try:
            return FeedbackEntry(
                key=str(data["key"]),
                kind=str(data["kind"]),
                factor=float(data.get("factor", 1.0)),
                rows=None if data.get("rows") is None else float(data["rows"]),
                observations=int(data.get("observations", 0)),
                swings=int(data.get("swings", 0)),
                last_log=float(data.get("last_log", 0.0)),
                quarantined=bool(data.get("quarantined", False)),
                stats_version=int(data.get("stats_version", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise UserInputError(f"bad feedback entry {data!r}: {exc}") from None


class FeedbackStore:
    """Bounded, thread-safe est/actual feedback with self-invalidation.

    Args:
        max_entries: LRU bound on distinct fingerprints.
        bump_ratio: A revision that moves an applied value by more than
            this factor (either direction) is *material* and bumps
            :attr:`generation` -- well-estimated operators therefore
            never invalidate warm plan-cache entries.
        suspect_ratio: An observation this far off its baseline is
            treated as poisoned: the entry is quarantined, the delta
            discarded.
        swing_ratio: A revision reversing direction by more than this
            factor counts as one oscillation swing.
        max_swings: Oscillation swings tolerated before quarantine.
    """

    def __init__(
        self,
        max_entries: int = 512,
        *,
        bump_ratio: float = 2.0,
        suspect_ratio: float = 1e4,
        swing_ratio: float = 16.0,
        max_swings: int = 2,
    ) -> None:
        if max_entries < 1:
            raise UserInputError("feedback max_entries must be >= 1")
        self.max_entries = max_entries
        self.bump_ratio = bump_ratio
        self.suspect_ratio = suspect_ratio
        self.swing_ratio = swing_ratio
        self.max_swings = max_swings
        #: bumped on every material correction; the session composes it
        #: with ``stats_version`` into the plan-cache key
        self.generation = 0
        self._entries: dict[str, FeedbackEntry] = {}  # insertion = LRU order
        self._lock = threading.Lock()
        self.ingests = 0
        self.applied = 0
        self.quarantines = 0
        self.evictions = 0

    # -- ingestion -------------------------------------------------------

    def observe(
        self, expr, est: float | None, actual: float, stats_version: int = 0
    ) -> None:
        """Ingest one executed operator's est/actual pair.

        ``expr`` is the logical node the engine just finished;
        ``est`` is the optimizer's row estimate for it (``None`` when
        the node was never costed) and ``actual`` the observed count.
        This is the ``feedback.ingest`` fault site: an active
        ``feedback:perturb`` clause scales ``actual`` before it is
        believed, which is how chaos storms poison the store.
        """
        actual = float(actual) * perturb_factor("feedback", "ingest")
        with self._lock:
            self.ingests += 1
            self._ingest_subtree(subtree_key(expr), est, actual, stats_version)
            predicate = getattr(expr, "predicate", None)
            if predicate is not None and est is not None and est > 0:
                self._ingest_predicate(
                    predicate_key(predicate), est, actual, stats_version
                )

    def _ingest_subtree(
        self, key: str, est: float | None, actual: float, stats_version: int
    ) -> None:
        entry = self._entry(key, "subtree", stats_version)
        if entry.quarantined:
            return
        baseline = entry.rows if entry.rows is not None else est
        if not self._sane(entry, baseline, actual):
            return
        entry.rows = max(actual, 0.0)
        entry.observations += 1
        self._maybe_bump(baseline, actual)

    def _ingest_predicate(
        self, key: str, est: float, actual: float, stats_version: int
    ) -> None:
        entry = self._entry(key, "predicate", stats_version)
        if entry.quarantined:
            return
        ratio = max(actual, _MIN_ROWS) / max(est, _MIN_ROWS)
        if not self._sane(entry, est, actual):
            return
        # ``est`` already had ``entry.factor`` applied when it was
        # costed, so composing multiplicatively converges to a fixpoint
        # once the correction is right (ratio -> 1).
        entry.factor = min(max(entry.factor * ratio, 1.0 / _MAX_FACTOR), _MAX_FACTOR)
        entry.observations += 1
        self._maybe_bump(est, actual)

    def _entry(self, key: str, kind: str, stats_version: int) -> FeedbackEntry:
        entry = self._entries.pop(key, None)
        if entry is None or entry.stats_version != stats_version:
            entry = FeedbackEntry(key, kind, stats_version=stats_version)
        self._entries[key] = entry  # (re-)append = most recently used
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        return entry

    def _sane(
        self, entry: FeedbackEntry, baseline: float | None, actual: float
    ) -> bool:
        """Quarantine checks; returns ``False`` when the delta must be
        discarded (and possibly the whole entry retired)."""
        if baseline is None or baseline <= 0:
            return True  # nothing to compare against yet
        log_ratio = math.log(max(actual, _MIN_ROWS) / max(baseline, _MIN_ROWS))
        if abs(log_ratio) > math.log(self.suspect_ratio):
            self._quarantine(entry)
            return False
        if (
            abs(log_ratio) > math.log(self.swing_ratio)
            and entry.last_log * log_ratio < 0
        ):
            entry.swings += 1
            if entry.swings >= self.max_swings:
                self._quarantine(entry)
                return False
        entry.last_log = log_ratio
        return True

    def _quarantine(self, entry: FeedbackEntry) -> None:
        entry.quarantined = True
        entry.factor = 1.0
        entry.rows = None
        self.quarantines += 1
        # plans costed with the now-retired correction are stale
        self.generation += 1

    def _maybe_bump(self, baseline: float | None, actual: float) -> None:
        if baseline is None or baseline <= 0:
            return
        ratio = max(actual, _MIN_ROWS) / max(baseline, _MIN_ROWS)
        if ratio > self.bump_ratio or ratio < 1.0 / self.bump_ratio:
            self.generation += 1

    # -- application -----------------------------------------------------

    def corrected_rows(
        self, expr, est_rows: float, stats_version: int = 0
    ) -> float | None:
        """The feedback-corrected row count for ``expr``, or ``None``
        when no applicable (non-quarantined, same-stats) entry exists.

        Exact subtree observations win over predicate factors: a
        subtree the engine has already executed needs no estimate at
        all."""
        if not self._entries:
            return None
        with self._lock:
            entry = self._entries.get(subtree_key(expr))
            if (
                entry is not None
                and not entry.quarantined
                and entry.rows is not None
                and entry.stats_version == stats_version
            ):
                self.applied += 1
                return entry.rows
            predicate = getattr(expr, "predicate", None)
            if predicate is not None:
                entry = self._entries.get(predicate_key(predicate))
                if (
                    entry is not None
                    and not entry.quarantined
                    and entry.factor != 1.0
                    and entry.stats_version == stats_version
                ):
                    self.applied += 1
                    return est_rows * entry.factor
        return None

    # -- maintenance / introspection -------------------------------------

    def clear_quarantine(self) -> int:
        """Drop quarantined entries so their fingerprints may learn
        again; returns how many were released."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e.quarantined]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict:
        """Counters for snapshots and metric syncing."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "generation": self.generation,
                "ingests": self.ingests,
                "applied": self.applied,
                "quarantines": self.quarantines,
                "quarantined_entries": sum(
                    1 for e in self._entries.values() if e.quarantined
                ),
                "evictions": self.evictions,
            }

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize entries + generation (LRU order preserved)."""
        with self._lock:
            return json.dumps(
                {
                    "version": 1,
                    "generation": self.generation,
                    "max_entries": self.max_entries,
                    "entries": [e.to_dict() for e in self._entries.values()],
                },
                indent=2,
            )

    @classmethod
    def from_json(cls, text: str, **kwargs) -> "FeedbackStore":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise UserInputError(f"bad feedback JSON: {exc}") from None
        if not isinstance(data, dict) or "entries" not in data:
            raise UserInputError("bad feedback JSON: expected an object with 'entries'")
        kwargs.setdefault("max_entries", int(data.get("max_entries", 512)))
        store = cls(**kwargs)
        store.generation = int(data.get("generation", 0))
        for item in data["entries"]:
            entry = FeedbackEntry.from_dict(item)
            store._entries[entry.key] = entry
        return store

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path, **kwargs) -> "FeedbackStore":
        return cls.from_json(Path(path).read_text(), **kwargs)


class CardinalityMonitor:
    """Per-execution watcher of operator cardinalities.

    The session stamps it with the chosen plan's per-node estimates,
    activates it around execution via :func:`monitor_scope`, and the
    engines report through :func:`monitor_record` at every operator
    boundary.  When ``threshold`` is set (armed), an actual count
    beyond ``threshold``x its estimate raises
    :class:`~repro.errors.ReplanTriggered` -- once per node, so a
    re-executed plan can never trip over the same operator twice.

    Completed intermediates are cached keyed ``(subtree, needed)``
    (``needed`` is the vector engine's column-pruning context; row
    engines use ``None``), bounded by ``max_cached_rows``, so
    re-execution after a re-plan resumes from materialized results
    instead of recomputing shared subtrees.
    """

    def __init__(
        self,
        threshold: float | None = None,
        max_cached_rows: int = 200_000,
    ) -> None:
        if threshold is not None and threshold <= 1.0:
            raise UserInputError("replan threshold must be > 1")
        self.threshold = threshold
        self.max_cached_rows = max_cached_rows
        self.estimates: dict[str, float] = {}
        #: fingerprint -> (node, est, actual); drained at ingest time
        self.observed: dict[str, tuple[object, float | None, float]] = {}
        self._results: dict[tuple[str, object], object] = {}
        self.cached_rows = 0
        self.fired: set[str] = set()
        self.reused = 0

    def stamp(self, plan, estimator) -> None:
        """(Re-)record per-node row estimates for ``plan``'s tree."""
        self.estimates.clear()
        stack = [plan]
        while stack:
            node = stack.pop()
            self.estimates[subtree_key(node)] = float(estimator(node))
            stack.extend(node.children())

    def disarm(self) -> None:
        """Give up on re-planning: keep observing, stop triggering."""
        self.threshold = None

    @property
    def armed(self) -> bool:
        return self.threshold is not None

    def lookup(self, expr, needed=None):
        """A previously materialized result for ``(expr, needed)``."""
        result = self._results.get((subtree_key(expr), needed))
        if result is not None:
            self.reused += 1
        return result

    def record(self, expr, rows: int, result=None, needed=None) -> None:
        """Record one operator boundary; may raise ReplanTriggered."""
        key = subtree_key(expr)
        est = self.estimates.get(key)
        self.observed[key] = (expr, est, float(rows))
        if result is not None and self.cached_rows + rows <= self.max_cached_rows:
            self._results[(key, needed)] = result
            self.cached_rows += rows
        if (
            self.threshold is not None
            and est is not None
            and key not in self.fired
            and rows > max(est, 1.0) * self.threshold
        ):
            self.fired.add(key)
            raise ReplanTriggered(
                _node_site(expr), est, float(rows), self.threshold
            )

    def drain(self) -> list[tuple[object, float | None, float]]:
        """Observations since the last drain (for store ingestion)."""
        items = list(self.observed.values())
        self.observed.clear()
        return items


# -- the hooks the engines call ------------------------------------------


def monitor_lookup(expr, needed=None):
    """Materialized-intermediate lookup; ``None`` unless a monitor is
    active and has the result.  A single contextvar read when idle."""
    monitor = _MONITOR.get()
    if monitor is None:
        return None
    return monitor.lookup(expr, needed)


def monitor_record(expr, rows: int, result=None, needed=None) -> None:
    """Operator-boundary observation; a no-op unless a monitor is
    active.  May raise :class:`~repro.errors.ReplanTriggered`."""
    monitor = _MONITOR.get()
    if monitor is None:
        return
    monitor.record(expr, rows, result, needed)


def active_monitor() -> CardinalityMonitor | None:
    return _MONITOR.get()


@contextmanager
def monitor_scope(monitor: CardinalityMonitor | None):
    """Activate ``monitor`` for the current context (thread/task)."""
    if monitor is None:
        yield None
        return
    token = _MONITOR.set(monitor)
    try:
        yield monitor
    finally:
        _MONITOR.reset(token)


__all__ = [
    "CardinalityMonitor",
    "FeedbackEntry",
    "FeedbackStore",
    "active_monitor",
    "monitor_lookup",
    "monitor_record",
    "monitor_scope",
    "predicate_key",
    "subtree_key",
]
