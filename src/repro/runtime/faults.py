"""Deterministic, seeded fault injection.

Robustness claims that are never exercised are wishes.  This module
lets tests, benches and the CLI *prove* the containment story by
injecting faults at well-known points in the stack -- operator
boundaries in all three execution engines, plan-cache lookups/stores,
and the statistics provider -- under a seeded plan, so every chaos
run is reproducible bit-for-bit.

A :class:`FaultPlan` is parsed from a compact spec string::

    vector.join:crash@0.05,cache.get:latency=50ms@0.1,stats:perturb=2x

Each comma-separated clause is ``site:kind[@probability]``:

* ``site`` -- a dotted injection-site name (``vector.join``,
  ``hash.scan``, ``reference.groupby``, ``cache.get``, ``cache.put``,
  ``stats.<table>``).  A clause site matches a point site exactly or
  as a dot-boundary prefix (``vector`` matches every vector operator;
  ``stats`` matches every table).
* ``kind`` -- ``crash`` (raise :class:`repro.errors.InjectedFault`),
  ``latency=<n>ms|<n>s`` (sleep), or ``perturb=<f>x`` (scale the
  statistics the optimizer sees -- Shin's thesis in PAPERS.md is the
  argument for treating estimates as fallible inputs).  Three
  *process-level* kinds -- ``kill9`` (SIGKILL self), ``hang`` (stop
  responding forever), ``exit`` (hard ``os._exit``) -- target the
  ``worker`` site and fire **only inside worker child processes** via
  :meth:`FaultStream.apply_process`; the thread-mode :meth:`apply`
  path ignores them, so a process-chaos plan can never take down the
  parent.
* ``probability`` -- per-checkpoint firing probability, default 1.

Fault state is **contextvar-scoped**: a plan is activated per query
via :meth:`FaultPlan.stream` + :func:`fault_scope`, so the service's
concurrent worker threads each see an independent random stream,
seeded by ``(plan seed, query index)``.  Two runs of the same workload
under the same plan therefore inject the same faults into the same
queries regardless of thread interleaving.

When no stream is active, :func:`fault_point` is a single contextvar
read -- cheap enough to leave compiled into the hot engines.

This module must stay import-light (stdlib + :mod:`repro.errors`
only): the engines import it at module load, while ``repro.runtime``'s
package init is still executing.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.errors import InjectedFault, UserInputError

_ACTIVE: ContextVar["FaultStream | None"] = ContextVar(
    "repro_fault_stream", default=None
)

#: Expression node type -> stable operator-site suffix, shared by the
#: three engines so one clause targets the same operator in each.
_NODE_SITES = {
    "BaseRel": "scan",
    "Select": "select",
    "Project": "project",
    "Join": "join",
    "UnionAll": "union",
    "SemiJoin": "semijoin",
    "GroupBy": "groupby",
    "GenSelect": "genselect",
    "Rename": "rename",
    "AdjustPadding": "adjust",
    "Sort": "sort",
}


#: Kinds that terminate or wedge an entire worker process.  They are
#: only ever *applied* from inside a child via ``apply_process``; the
#: in-thread ``apply`` path skips them by construction.
PROCESS_KINDS = frozenset({"kill9", "hang", "exit"})

#: Kinds whose clause body is the bare kind name (no ``=value``).
_BARE_KINDS = frozenset({"crash"}) | PROCESS_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault clause."""

    site: str
    kind: str  # "crash" | "latency" | "perturb" | "kill9" | "hang" | "exit"
    probability: float = 1.0
    latency_ms: float = 0.0
    factor: float = 1.0

    def matches(self, site: str) -> bool:
        """Exact or dot-boundary-prefix site match."""
        return site == self.site or site.startswith(self.site + ".")

    def __str__(self) -> str:
        if self.kind == "latency":
            body = f"latency={self.latency_ms:g}ms"
        elif self.kind == "perturb":
            body = f"perturb={self.factor:g}x"
        else:  # bare kinds: crash, kill9, hang, exit
            body = self.kind
        return f"{self.site}:{body}@{self.probability:g}"


def _parse_clause(clause: str) -> FaultSpec:
    clause = clause.strip()
    if ":" not in clause:
        raise UserInputError(
            f"bad fault clause {clause!r}: expected 'site:kind[@prob]'"
        )
    site, _, rest = clause.partition(":")
    site = site.strip()
    if not site:
        raise UserInputError(f"bad fault clause {clause!r}: empty site")
    rest, _, prob_text = rest.partition("@")
    probability = 1.0
    if prob_text:
        try:
            probability = float(prob_text)
        except ValueError:
            raise UserInputError(
                f"bad fault probability {prob_text!r} in {clause!r}"
            ) from None
        if not 0.0 <= probability <= 1.0:
            raise UserInputError(
                f"fault probability {probability} out of [0, 1] in {clause!r}"
            )
    kind, _, value = rest.strip().partition("=")
    kind = kind.strip()
    if kind in _BARE_KINDS:
        if value.strip():
            raise UserInputError(
                f"fault kind {kind!r} takes no value in {clause!r}"
            )
        return FaultSpec(site, kind, probability)
    if kind == "latency":
        text = value.strip().lower()
        try:
            if text.endswith("ms"):
                latency_ms = float(text[:-2])
            elif text.endswith("s"):
                latency_ms = float(text[:-1]) * 1000.0
            else:
                latency_ms = float(text)
        except ValueError:
            raise UserInputError(
                f"bad latency value {value!r} in {clause!r} "
                "(expected e.g. 'latency=50ms')"
            ) from None
        if latency_ms < 0:
            raise UserInputError(f"negative latency in {clause!r}")
        return FaultSpec(site, "latency", probability, latency_ms=latency_ms)
    if kind == "perturb":
        text = value.strip().lower().removesuffix("x")
        try:
            factor = float(text)
        except ValueError:
            raise UserInputError(
                f"bad perturb factor {value!r} in {clause!r} "
                "(expected e.g. 'perturb=2x')"
            ) from None
        if factor <= 0:
            raise UserInputError(f"perturb factor must be > 0 in {clause!r}")
        return FaultSpec(site, "perturb", probability, factor=factor)
    raise UserInputError(
        f"unknown fault kind {kind!r} in {clause!r} "
        "(expected crash, kill9, hang, exit, latency=<n>ms, or perturb=<f>x)"
    )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded set of fault clauses.

    The plan itself is immutable and shareable; per-query randomness
    comes from :meth:`stream`, which derives an independent
    ``random.Random`` from ``(seed, index)``.
    """

    specs: tuple[FaultSpec, ...]
    seed: int = 0

    @staticmethod
    def parse(text: str, seed: int = 0) -> "FaultPlan":
        """Parse a comma-separated clause list into a plan.

        Args:
            text: Clauses like
                ``"vector.join:crash@0.05,cache.get:latency=50ms@0.1,stats:perturb=2x"``
                -- ``site[:kind[=value]][@probability]`` per clause,
                where a site prefix matches every sub-site.
            seed: Base seed; :meth:`stream` mixes it with the query
                index so runs are reproducible end to end.

        Raises:
            UserInputError: On an empty plan or a malformed clause.
        """
        clauses = [c for c in text.split(",") if c.strip()]
        if not clauses:
            raise UserInputError(f"empty fault plan {text!r}")
        return FaultPlan(tuple(_parse_clause(c) for c in clauses), seed)

    def stream(self, index: int, attempt: int = 0) -> "FaultStream":
        """The reproducible fault stream for query number ``index``.

        ``attempt`` salts the stream for *redeliveries* (the process
        pool retrying a query whose worker died): attempt 0 is
        bit-identical to the historical stream, while each retry draws
        fresh -- but still seed-deterministic -- rolls.  Without the
        salt a probabilistic ``worker:kill9`` would re-fire on every
        retry and no crashed query could ever succeed.
        """
        return FaultStream(
            self.specs,
            random.Random(self.seed * 1_000_003 + index + 104_729 * attempt),
        )

    def __str__(self) -> str:
        return ",".join(str(s) for s in self.specs)

    def to_dict(self) -> dict:
        """Structured form for incident records and service snapshots."""
        return {"seed": self.seed, "specs": [str(s) for s in self.specs]}


class FaultStream:
    """One query's private fault randomness over a plan's clauses."""

    __slots__ = ("specs", "rng", "injected")

    def __init__(self, specs: tuple[FaultSpec, ...], rng: random.Random) -> None:
        self.specs = specs
        self.rng = rng
        #: (site, kind) pairs that actually fired, for assertions/incidents.
        self.injected: list[tuple[str, str]] = []

    def apply(self, site: str) -> None:
        """Roll every matching clause at ``site``; sleep and/or raise.

        Process kinds are skipped: a ``worker:kill9`` clause must never
        fire in the thread-mode path or it would take down the caller's
        process -- only :meth:`apply_process`, called from inside a
        worker child, performs those rolls.
        """
        for spec in self.specs:
            if (
                spec.kind == "perturb"
                or spec.kind in PROCESS_KINDS
                or not spec.matches(site)
            ):
                continue
            if self.rng.random() >= spec.probability:
                continue
            self.injected.append((site, spec.kind))
            if spec.kind == "latency":
                time.sleep(spec.latency_ms / 1000.0)
            else:  # crash
                raise InjectedFault(site, str(spec))

    def apply_process(self, site: str) -> str | None:
        """Roll the process-level clauses at ``site``; return the kind
        that fired (``"kill9"``/``"hang"``/``"exit"``) or ``None``.

        The *caller* performs the action -- this module stays
        import-light and side-effect-free, and only the worker child
        in :mod:`repro.runtime.procpool` calls this.  Rolls consume the
        same per-query RNG as :meth:`apply`, and are always made first
        (at task receipt), so thread-mode and process-mode streams stay
        independently deterministic.
        """
        fired: str | None = None
        for spec in self.specs:
            if spec.kind not in PROCESS_KINDS or not spec.matches(site):
                continue
            if self.rng.random() >= spec.probability:
                continue
            self.injected.append((site, spec.kind))
            if fired is None:
                fired = spec.kind
        return fired

    def factor(self, site: str) -> float:
        """Combined perturbation factor for ``site`` (1.0 = untouched)."""
        factor = 1.0
        for spec in self.specs:
            if spec.kind != "perturb" or not spec.matches(site):
                continue
            if self.rng.random() < spec.probability:
                self.injected.append((site, spec.kind))
                factor *= spec.factor
        return factor


# -- the hooks the rest of the stack calls -------------------------------


def active_stream() -> FaultStream | None:
    return _ACTIVE.get()


def fault_point(engine: str, node=None, op: str | None = None) -> None:
    """Injection checkpoint; a no-op unless a stream is active.

    ``engine`` is the site prefix (``"vector"``, ``"cache"``); the
    operator suffix comes from ``op`` or from the expression ``node``'s
    type via the shared site table.
    """
    stream = _ACTIVE.get()
    if stream is None:
        return
    if op is None:
        name = type(node).__name__
        op = _NODE_SITES.get(name, name.lower())
    stream.apply(f"{engine}.{op}")


def perturb_factor(engine: str, op: str) -> float:
    """Statistics perturbation factor at ``engine.op`` (1.0 when idle)."""
    stream = _ACTIVE.get()
    if stream is None:
        return 1.0
    return stream.factor(f"{engine}.{op}")


@contextmanager
def fault_scope(stream: FaultStream | None):
    """Activate ``stream`` for the current context (thread/task)."""
    if stream is None:
        yield None
        return
    token = _ACTIVE.set(stream)
    try:
        yield stream
    finally:
        _ACTIVE.reset(token)


__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultStream",
    "PROCESS_KINDS",
    "active_stream",
    "fault_point",
    "fault_scope",
    "perturb_factor",
]
