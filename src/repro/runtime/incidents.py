"""Structured incident records for contained failures.

When differential verification catches a wrong rewrite (or a budget
kills a stage), the runtime does not just log a string: it records an
:class:`Incident` -- a structured, serializable account of what was
attempted, what went wrong, and what the runtime did about it -- and
keeps quarantined plans out of circulation for the rest of the
session.  ``IncidentLog.to_json_lines()`` emits one JSON object per
incident, ready for whatever log pipeline sits downstream; everything
is also mirrored to the ``repro.runtime`` stdlib logger.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field

logger = logging.getLogger("repro.runtime")
# library etiquette: without this, python's last-resort handler dumps
# every incident repr to stderr in unconfigured applications (the CLI
# already reports degradation via its `-- stage:` footer)
logger.addHandler(logging.NullHandler())


@dataclass(frozen=True)
class Incident:
    """One contained failure event.

    ``kind`` is a stable machine-readable tag (``"verification-mismatch"``,
    ``"stage-abandoned"``); ``action`` records the containment taken
    (``"quarantined-plan; fell back to original"``, ``"degraded"``).
    """

    kind: str
    query: str
    detail: dict = field(default_factory=dict)
    action: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "query": self.query,
            "detail": self.detail,
            "action": self.action,
        }


class IncidentLog:
    """An append-only, in-memory incident journal."""

    def __init__(self) -> None:
        self._records: list[Incident] = []

    def record(self, incident: Incident) -> Incident:
        self._records.append(incident)
        logger.warning(
            "incident kind=%s action=%s query=%s detail=%s",
            incident.kind,
            incident.action,
            incident.query,
            incident.detail,
        )
        return incident

    @property
    def records(self) -> tuple[Incident, ...]:
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def to_json_lines(self) -> str:
        """One JSON object per incident (the structured export format)."""
        return "\n".join(
            json.dumps(incident.to_dict(), default=str) for incident in self._records
        )
