"""Structured incident records for contained failures.

When differential verification catches a wrong rewrite (or a budget
kills a stage, or the service reroutes around a crashing engine), the
runtime does not just log a string: it records an :class:`Incident` --
a structured, serializable account of what was attempted, what went
wrong, and what the runtime did about it -- and keeps quarantined
plans out of circulation for the rest of the session.
``IncidentLog.to_json_lines()`` emits one JSON object per incident,
ready for whatever log pipeline sits downstream; everything is also
mirrored to the ``repro.runtime`` stdlib logger.

The log is a bounded ring buffer (default 1000 records): a service
under sustained fault load must not leak memory through its own
observability channel.  When records are dropped, the oldest go first
and a ``dropped`` counter is carried in the JSON export, so downstream
consumers can tell a quiet hour from a truncated one.  All operations
are thread-safe -- the service's worker pool shares one log.
"""

from __future__ import annotations

import json
import logging
import threading
from collections import deque
from dataclasses import dataclass, field

logger = logging.getLogger("repro.runtime")
# library etiquette: without this, python's last-resort handler dumps
# every incident repr to stderr in unconfigured applications (the CLI
# already reports degradation via its `-- stage:` footer)
logger.addHandler(logging.NullHandler())


@dataclass(frozen=True)
class Incident:
    """One contained failure event.

    ``kind`` is a stable machine-readable tag (``"verification-mismatch"``,
    ``"stage-abandoned"``, ``"breaker-open"``); ``action`` records the
    containment taken (``"quarantined-plan; fell back to original"``,
    ``"degraded"``, ``"rerouted"``).
    """

    kind: str
    query: str
    detail: dict = field(default_factory=dict)
    action: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "query": self.query,
            "detail": self.detail,
            "action": self.action,
        }


class IncidentLog:
    """A bounded, thread-safe, in-memory incident journal.

    ``capacity`` bounds the ring; the oldest records are dropped first
    and counted in :attr:`dropped`.
    """

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("IncidentLog capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[Incident] = deque(maxlen=capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def record(self, incident: Incident) -> Incident:
        with self._lock:
            if len(self._records) == self.capacity:
                self._dropped += 1
            self._records.append(incident)
        logger.warning(
            "incident kind=%s action=%s query=%s detail=%s",
            incident.kind,
            incident.action,
            incident.query,
            incident.detail,
        )
        return incident

    def extend(self, incidents) -> int:
        """Merge a batch of incidents (e.g. a worker child's journal
        delta shipped over the result pipe) into this log, in order.

        Returns the number of records merged.  Each record goes through
        :meth:`record`, so the ring bound, drop accounting and logger
        mirroring all apply.
        """
        merged = 0
        for incident in incidents:
            self.record(incident)
            merged += 1
        return merged

    @property
    def records(self) -> tuple[Incident, ...]:
        with self._lock:
            return tuple(self._records)

    @property
    def dropped(self) -> int:
        """How many records the ring has discarded (oldest first)."""
        return self._dropped

    def count(self, kind: str) -> int:
        """How many retained records carry ``kind``."""
        return sum(1 for incident in self.records if incident.kind == kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records)

    def to_json_lines(self) -> str:
        """One JSON object per incident (the structured export format).

        When the ring has dropped records, a trailer object
        ``{"kind": "incident-log-truncated", "dropped": N, ...}`` is
        appended so consumers see the truncation, not just the tail.
        """
        with self._lock:
            records = list(self._records)
            dropped = self._dropped
        lines = [json.dumps(i.to_dict(), default=str) for i in records]
        if dropped:
            lines.append(
                json.dumps(
                    {
                        "kind": "incident-log-truncated",
                        "dropped": dropped,
                        "capacity": self.capacity,
                    }
                )
            )
        return "\n".join(lines)
