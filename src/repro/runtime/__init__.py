"""The resilient optimization runtime.

Production optimizers cannot afford the library's default behavior --
enumerate everything, execute whatever comes out, raise on anything
unexpected -- because the rewrite closure is exponential in the worst
case (the paper's own Section 4 caveat) and cost estimates are
fallible.  This package wraps the whole stack in the machinery a
service needs:

* :class:`Budget` -- wall-clock deadline, plan-count and row-count
  caps, enforced *cooperatively* at generator checkpoints inside the
  enumerator and both executors (no threads, no signals), raising the
  typed :class:`repro.errors.BudgetExceeded` family;
* :class:`QuerySession` -- the facade every entry point (CLI,
  examples, benchmarks) routes through.  It attempts a degradation
  ladder ``full reorder -> greedy/DP heuristic -> as written``, each
  stage under its slice of the budget, and records which stage
  produced the answer (:class:`DegradationLevel`, plus the reason the
  upper stages were abandoned);
* differential verification -- optionally re-check the chosen plan
  against the original query under the reference interpreter on a
  row-sample; a mismatch quarantines the plan, logs a structured
  :class:`Incident`, and falls back to the original query, so a wrong
  rewrite becomes a contained, observable event instead of silent
  wrong answers.

See ``docs/ROBUSTNESS.md`` for the operational story.
"""

from repro.runtime.budget import Budget
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.plan_cache import PlanCache, query_fingerprint
from repro.runtime.session import (
    DegradationLevel,
    QuerySession,
    SessionResult,
    StatementOutcome,
)

__all__ = [
    "Budget",
    "Incident",
    "IncidentLog",
    "DegradationLevel",
    "PlanCache",
    "QuerySession",
    "SessionResult",
    "StatementOutcome",
    "query_fingerprint",
]
