"""The resilient optimization runtime.

Production optimizers cannot afford the library's default behavior --
enumerate everything, execute whatever comes out, raise on anything
unexpected -- because the rewrite closure is exponential in the worst
case (the paper's own Section 4 caveat) and cost estimates are
fallible.  This package wraps the whole stack in the machinery a
service needs:

* :class:`Budget` -- wall-clock deadline, plan-count and row-count
  caps, enforced *cooperatively* at generator checkpoints inside the
  enumerator and all three executors (no signals, no preemption),
  raising the typed :class:`repro.errors.BudgetExceeded` family.
  Counters are thread-safe and every checkpoint observes an optional
  :class:`CancelToken`;
* :class:`QuerySession` -- the single-caller facade.  It attempts a
  degradation ladder ``full reorder -> greedy/DP heuristic -> as
  written``, each stage under its slice of the budget, and records
  which stage produced the answer (:class:`DegradationLevel`, plus the
  reason the upper stages were abandoned);
* :class:`QueryService` -- the concurrent front end: a bounded worker
  pool over per-worker sessions, admission control that sheds load
  with the typed :class:`repro.errors.AdmissionRejected`, per-engine
  circuit breakers that reroute around a misbehaving engine
  (``vector -> hash -> reference``), cooperative cancellation, and a
  clean drain on shutdown;
* differential verification -- optionally re-check the chosen plan
  against the original query under the reference interpreter on a
  row-sample; a mismatch quarantines the plan, logs a structured
  :class:`Incident`, and falls back to the original query, so a wrong
  rewrite becomes a contained, observable event instead of silent
  wrong answers;
* :class:`FaultPlan` -- deterministic, seeded fault injection at
  operator/cache/statistics boundaries, so all of the above is
  exercised by construction (the chaos suite in
  ``tests/integration/test_chaos.py``);
* :class:`FeedbackStore` / :class:`CardinalityMonitor` -- adaptive
  re-optimization: observed est/actual cardinality deltas correct the
  cost model's estimates (bumping a generation the plan-cache key
  composes with, so stale plans self-invalidate), and an armed monitor
  aborts a mid-flight plan whose actual cardinalities blow past their
  estimates, re-plans with the observed counts, and resumes from
  materialized intermediates;
* :class:`Tracer` / :class:`MetricsRegistry` -- the observability
  layer: contextvar-scoped span trees over the whole plan lifecycle
  (sharing the fault layer's operator-site seam) and service-level
  counters/histograms exportable as JSON or Prometheus text (see
  ``docs/OBSERVABILITY.md``).

See ``docs/ROBUSTNESS.md`` for the operational story.

Import note: the heavy facades (session, service) are loaded lazily
via PEP 562 -- the execution engines import
:mod:`repro.runtime.faults` at module load, which must not drag the
session (and hence the engines themselves) into a cycle.
"""

from repro.runtime.budget import Budget, CancelToken
from repro.runtime.faults import (
    FaultPlan,
    FaultSpec,
    FaultStream,
    fault_point,
    fault_scope,
    perturb_factor,
)
from repro.runtime.feedback import (
    CardinalityMonitor,
    FeedbackStore,
    monitor_scope,
)
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.metrics import MetricsRegistry, parse_prometheus, service_registry
from repro.runtime.plan_cache import PlanCache, query_fingerprint
from repro.runtime.tracing import Span, Tracer, trace_op, trace_scope

_LAZY = {
    "DegradationLevel": "repro.runtime.session",
    "QuerySession": "repro.runtime.session",
    "SessionResult": "repro.runtime.session",
    "StatementOutcome": "repro.runtime.session",
    "BreakerConfig": "repro.runtime.service",
    "BreakerState": "repro.runtime.service",
    "CircuitBreaker": "repro.runtime.service",
    "QueryService": "repro.runtime.service",
    "QueryTicket": "repro.runtime.service",
    "ServiceResult": "repro.runtime.service",
    "ProcPoolConfig": "repro.runtime.procpool",
    "WorkerSupervisor": "repro.runtime.procpool",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Budget",
    "CancelToken",
    "CardinalityMonitor",
    "FaultPlan",
    "FaultSpec",
    "FaultStream",
    "FeedbackStore",
    "Incident",
    "IncidentLog",
    "DegradationLevel",
    "PlanCache",
    "QuerySession",
    "QueryService",
    "QueryTicket",
    "SessionResult",
    "ServiceResult",
    "StatementOutcome",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ProcPoolConfig",
    "WorkerSupervisor",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "fault_point",
    "fault_scope",
    "monitor_scope",
    "parse_prometheus",
    "perturb_factor",
    "query_fingerprint",
    "service_registry",
    "trace_op",
    "trace_scope",
]
