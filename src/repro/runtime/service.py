"""The concurrent query service: admission, breakers, cancellation, drain.

:class:`repro.runtime.QuerySession` made one caller resilient; this
module makes the *process* resilient when many callers share it.  A
:class:`QueryService` is a bounded thread pool over per-worker
sessions, with four containment mechanisms layered on top:

**Admission control.**  Submissions enter a bounded queue.  When the
queue is full (or the service is closed, or the service-level budget
is exhausted) the submission is *shed* with the typed
:class:`repro.errors.AdmissionRejected` instead of growing an
unbounded backlog -- a loaded service answers "no" in microseconds
rather than "yes" in minutes.

**Budgets and cancellation.**  Each query's deadline is carved from
the service-level :class:`Budget` at dequeue time (so queue wait does
not silently eat execution time budgeted for someone else), clamped by
the per-query template.  Aggregate plan/row spend is charged back to
the service budget -- its counters are thread-safe -- and a ticket's
``cancel()`` is observed cooperatively at the same ``tick()``
checkpoints the budget already uses.

**Circuit breakers.**  Every engine has a :class:`CircuitBreaker`.
Incidents attributable to the engine -- injected or genuine crashes,
differential-verification mismatches -- are counted in a sliding
window; at the threshold the breaker *opens* and the service routes
around the engine (``vector -> hash -> reference``).  After a
cool-down the breaker *half-opens* and admits a single probe query:
success closes it, failure re-opens it.  Every transition is recorded
as a structured :class:`Incident` (``breaker-open``,
``breaker-half-open``, ``breaker-closed``) and surfaced in the CLI
footer and service snapshots.  The reference interpreter is the floor
of the fallback chain and is never gated.

**Clean shutdown.**  ``close()`` stops admission, lets queued work
drain (or cancels it with ``drain=False``), and joins every worker;
``with QueryService(...) as svc:`` does the same.

Determinism: with a seeded :class:`repro.runtime.faults.FaultPlan`
each query's fault stream is derived from its admission index, not
from thread timing, so chaos runs reproduce exactly.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    EngineFailure,
    QueryCancelled,
    ReproError,
    UserInputError,
)
from repro.expr.evaluate import Database
from repro.expr.nodes import Expr
from repro.optimizer import Statistics
from repro.runtime.budget import Budget, CancelToken
from repro.runtime.faults import FaultPlan, fault_scope
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.feedback import FeedbackStore
from repro.runtime.metrics import (
    MetricsRegistry,
    service_registry,
    sync_cache_metrics,
    sync_engine_metrics,
    sync_feedback_metrics,
)
from repro.runtime.plan_cache import PlanCache, ShardedPlanCache
from repro.runtime.session import QuerySession, SessionResult

#: Engine fallback order: fastest first, ground truth last.
FALLBACK_CHAIN = ("vector", "hash", "reference")


# -- circuit breaker -----------------------------------------------------


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """When to open, how long to stay open, what counts as "recent".

    ``failure_threshold`` incidents within ``window_s`` seconds open
    the breaker; after ``cooldown_s`` it half-opens for one probe.
    """

    failure_threshold: int = 3
    window_s: float = 60.0
    cooldown_s: float = 30.0


class CircuitBreaker:
    """Per-engine failure accounting with open/half-open/closed states.

    Thread-safe; ``clock`` is injectable so tests drive transitions
    deterministically.  State-changing calls return the transition
    name (``"open"``, ``"half-open"``, ``"closed"``) or ``None`` so
    the service can journal each transition exactly once.
    """

    def __init__(
        self,
        engine: str,
        config: BreakerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._failures: deque[float] = deque()
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.opened_count = 0

    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def allow(self) -> tuple[bool, str | None]:
        """May the engine serve the next query?  -> (allowed, transition)."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True, None
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at >= self.config.cooldown_s:
                    self._state = BreakerState.HALF_OPEN
                    self._probe_in_flight = True
                    return True, "half-open"
                return False, None
            # HALF_OPEN: exactly one probe at a time
            if self._probe_in_flight:
                return False, None
            self._probe_in_flight = True
            return True, None

    def record_success(self) -> str | None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._failures.clear()
                self._probe_in_flight = False
                return "closed"
            return None

    def record_failure(self) -> str | None:
        now = self._clock()
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                # the probe failed: straight back to OPEN, fresh cooldown
                self._state = BreakerState.OPEN
                self._opened_at = now
                self._probe_in_flight = False
                self.opened_count += 1
                return "open"
            if self._state is BreakerState.OPEN:
                return None
            self._failures.append(now)
            horizon = now - self.config.window_s
            while self._failures and self._failures[0] < horizon:
                self._failures.popleft()
            if len(self._failures) >= self.config.failure_threshold:
                self._state = BreakerState.OPEN
                self._opened_at = now
                self.opened_count += 1
                return "open"
            return None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "engine": self.engine,
                "state": self._state.value,
                "recent_failures": len(self._failures),
                "opened_count": self.opened_count,
            }


# -- tickets and results -------------------------------------------------


@dataclass
class ServiceResult:
    """A session result plus the service's account of routing it."""

    session: SessionResult
    engine: str
    #: engines tried before ``engine`` answered, as (engine, error).
    attempts: tuple[tuple[str, str], ...]
    index: int
    service_ms: float
    queue_ms: float

    # convenience delegation: callers mostly want the session fields
    @property
    def relation(self):
        return self.session.relation

    @property
    def chosen(self):
        return self.session.chosen

    @property
    def degradation_level(self):
        return self.session.degradation_level

    @property
    def degradation_reason(self):
        return self.session.degradation_reason

    @property
    def verified(self):
        return self.session.verified

    @property
    def incident(self):
        return self.session.incident

    @property
    def plan_cache(self):
        return self.session.plan_cache

    @property
    def replans(self):
        return self.session.replans

    @property
    def replan_events(self):
        return self.session.replan_events

    def to_dict(self) -> dict:
        return {
            **self.session.to_dict(),
            "engine": self.engine,
            "attempts": [list(a) for a in self.attempts],
            "index": self.index,
            "service_ms": round(self.service_ms, 3),
            "queue_ms": round(self.queue_ms, 3),
        }


class QueryTicket:
    """A handle on one admitted query: wait, inspect, cancel."""

    def __init__(
        self,
        index: int,
        query: Expr,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> None:
        self.index = index
        self.query = query
        self.required_order = required_order
        self.cancel_token = CancelToken()
        self.submitted_at = time.monotonic()
        self._done = threading.Event()
        self._result: ServiceResult | None = None
        self._error: BaseException | None = None

    def cancel(self) -> None:
        """Request cooperative cancellation (observed at budget ticks)."""
        self.cancel_token.cancel()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Block for the outcome; raises the query's typed error."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query #{self.index} not finished within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- service side ---------------------------------------------------

    def _resolve(self, result: ServiceResult) -> None:
        self._result = result
        self._done.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


_STOP = object()


# -- the service ---------------------------------------------------------


class QueryService:
    """A bounded, breaker-protected, cancellable front end over sessions.

    Parameters
    ----------
    db, catalog, stats:
        As for :class:`QuerySession`; statistics are scanned once and
        shared by every worker.
    workers:
        Worker threads (each owns one lazily-built session per engine;
        sessions share the plan cache, incident log, quarantine set
        and statistics).
    queue_depth:
        Admission queue bound; a full queue sheds load with
        :class:`repro.errors.AdmissionRejected`.
    budget:
        Per-query :class:`Budget` template (deadline/plan/row caps).
    service_budget:
        Shared service-level :class:`Budget`.  Per-query deadlines are
        carved from its remaining time; aggregate plan/row spend is
        charged back to it, and exhausting it closes admission.
    engine:
        Preferred engine; failures walk the tail of
        :data:`FALLBACK_CHAIN` (the reference interpreter is never
        breaker-gated -- it is the floor).
    fault_plan:
        Optional :class:`FaultPlan`; each query gets the deterministic
        stream for its admission index.
    breaker:
        :class:`BreakerConfig` shared by all engine breakers.
    metrics:
        Shared :class:`repro.runtime.metrics.MetricsRegistry`; a fresh
        pre-declared service registry by default.  Exported via
        :meth:`export_metrics` (JSON or Prometheus text).
    session_factory:
        Test hook: ``f(engine) -> QuerySession`` replacing the default
        construction (used to inject failing planners and gates).
    clock:
        Injectable monotonic clock for the breakers.
    feedback:
        Shared :class:`repro.runtime.feedback.FeedbackStore` for
        cardinality feedback across every worker session.  ``None``
        (default) disables feedback unless ``replan_threshold`` is
        set, in which case a service-private store is created.
    replan_threshold:
        Arm mid-query re-planning in every worker session (see
        :class:`QuerySession`).  Re-plans run inside the query's
        carved budget, so re-plan storms still respect deadlines,
        circuit breakers and admission control.
    max_replans:
        Per-query re-plan cap forwarded to worker sessions.
    enum_tier:
        Join-enumeration tier policy forwarded to worker sessions
        (``auto`` | ``dp`` | ``partitioned`` | ``goo``; see
        :class:`QuerySession`).
    isolation:
        ``"thread"`` (default) runs worker sessions on threads in this
        process; ``"process"`` runs them in supervised child processes
        (see :mod:`repro.runtime.procpool`), so a segfaulting or
        wedged worker costs one query, not the service.  The API is
        identical either way; ``session_factory`` is thread-only (an
        arbitrary factory cannot cross a process boundary).
    max_retries:
        Process isolation only: how many times a query whose worker
        died is redelivered to a fresh worker before it surfaces the
        typed :class:`repro.errors.WorkerCrashed`.  ``None`` defers to
        the :class:`repro.runtime.procpool.ProcPoolConfig` default.
    procpool:
        Optional :class:`repro.runtime.procpool.ProcPoolConfig` with
        the supervisor's tunables (heartbeat cadence, restart backoff,
        flap thresholds, poison threshold).
    shm:
        Process isolation only: ship base tables to workers as
        shared-memory columnar pages (:mod:`repro.relalg.pages`)
        instead of pickling them into the spawn blob.  ``None``
        (default) auto-detects platform support; ``True`` requests it
        (still falling back, per table or entirely, when paging is
        impossible); ``False`` forces the pickle path.  See
        ``docs/SCALING.md``.
    """

    def __init__(
        self,
        db: Database,
        *,
        catalog=None,
        stats: Statistics | None = None,
        workers: int = 2,
        queue_depth: int = 16,
        budget: Budget | None = None,
        service_budget: Budget | None = None,
        engine: str = "vector",
        verify: bool = False,
        verify_seed: int = 0,
        max_plans: int = 5000,
        fault_plan: FaultPlan | None = None,
        breaker: BreakerConfig | None = None,
        plan_cache: PlanCache | None = None,
        incident_capacity: int = 1000,
        metrics: MetricsRegistry | None = None,
        session_factory=None,
        clock=time.monotonic,
        feedback: FeedbackStore | None = None,
        replan_threshold: float | None = None,
        max_replans: int = 2,
        enum_tier: str = "auto",
        isolation: str = "thread",
        max_retries: int | None = None,
        procpool=None,
        shm: bool | None = None,
    ) -> None:
        if engine not in FALLBACK_CHAIN:
            raise ValueError(
                f"unknown engine {engine!r}; pick from {FALLBACK_CHAIN}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"unknown isolation {isolation!r}; pick 'thread' or 'process'"
            )
        if isolation == "process" and session_factory is not None:
            raise ValueError(
                "session_factory is thread-only: an arbitrary factory "
                "cannot cross the process boundary"
            )
        self.db = db
        self.catalog = catalog
        self.stats = stats if stats is not None else Statistics.from_database(db)
        self.engine = engine
        self.verify = verify
        self.verify_seed = verify_seed
        self.max_plans = max_plans
        self.fault_plan = fault_plan
        self.queue_depth = queue_depth
        self._budget_template = budget
        self._service_budget = service_budget
        self._session_factory = session_factory
        self.plan_cache = (
            plan_cache if plan_cache is not None else ShardedPlanCache()
        )
        if feedback is None and replan_threshold is not None:
            feedback = FeedbackStore()
        self.feedback = feedback
        if feedback is not None:
            self.stats.feedback = feedback
        self.replan_threshold = replan_threshold
        self.max_replans = max_replans
        self.enum_tier = enum_tier
        self.metrics = metrics if metrics is not None else service_registry()
        self.incidents = IncidentLog(capacity=incident_capacity)
        self.quarantined: set[Expr] = set()
        self.breakers = {
            name: CircuitBreaker(name, breaker, clock) for name in FALLBACK_CHAIN
        }
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._closed = False
        self._close_done = threading.Event()
        self._budget_exhausted = False
        self._next_index = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.cancelled = 0
        self.isolation = isolation
        self.shm = shm
        self.shm_enabled = False
        if isolation == "process" and shm is not False:
            from repro.relalg.pages import pages_supported

            self.shm_enabled = pages_supported()
        self._supervisor = None
        if isolation == "process":
            # imported lazily: thread-mode services never pay for the
            # multiprocessing machinery
            from repro.runtime.procpool import ProcPoolConfig, WorkerSupervisor

            config = procpool if procpool is not None else ProcPoolConfig()
            if max_retries is not None:
                from dataclasses import replace

                config = replace(config, max_retries=max_retries)
            self._supervisor = WorkerSupervisor(self, workers, config)
            self._threads = self._supervisor.start()
        else:
            self._threads = [
                threading.Thread(
                    target=self._worker, name=f"repro-service-{i}", daemon=True
                )
                for i in range(workers)
            ]
            for thread in self._threads:
                thread.start()

    # -- admission -------------------------------------------------------

    def submit(
        self,
        query: Expr,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> QueryTicket:
        """Admit ``query`` or shed it with a typed rejection.

        Args:
            query: The logical expression to run.
            required_order: Desired output order, forwarded to every
                worker session's planner (see
                :meth:`repro.runtime.QuerySession.run`).

        Raises:
            repro.errors.AdmissionRejected: The service is closed, its
                budget is exhausted, or the admission queue is full.
            repro.errors.WorkerPoolDegraded: Process isolation only --
                every worker slot is flapping, so load is shed instead
                of queued (an ``AdmissionRejected`` subclass).
        """
        if self._supervisor is not None and self._supervisor.degraded:
            from repro.errors import WorkerPoolDegraded

            with self._lock:
                self.rejected += 1
            self.metrics.counter("repro_sheds_total").inc()
            self.incidents.record(
                Incident(
                    kind="admission-rejected",
                    query=str(query),
                    detail=self._supervisor.snapshot(),
                    action="shed-load-pool-degraded",
                )
            )
            raise WorkerPoolDegraded("worker pool degraded: every slot flapping")
        with self._lock:
            if self._closed:
                raise AdmissionRejected("service is closed")
            if self._budget_exhausted:
                self.rejected += 1
                self.metrics.counter("repro_sheds_total").inc()
                raise AdmissionRejected("service budget exhausted")
            ticket = QueryTicket(self._next_index, query, required_order)
            self._next_index += 1
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            with self._lock:
                self.rejected += 1
            self.metrics.counter("repro_sheds_total").inc()
            self.incidents.record(
                Incident(
                    kind="admission-rejected",
                    query=str(query),
                    detail={"queue_depth": self.queue_depth},
                    action="shed-load",
                )
            )
            raise AdmissionRejected(
                "admission queue full", queue_depth=self.queue_depth
            ) from None
        with self._lock:
            self.submitted += 1
        self.metrics.counter("repro_admissions_total").inc()
        return ticket

    def run(
        self,
        query: Expr,
        timeout: float | None = None,
        required_order: tuple[tuple[str, bool], ...] = (),
    ) -> ServiceResult:
        """Submit and wait: the synchronous convenience entry point."""
        return self.submit(query, required_order).result(timeout)

    # -- shutdown --------------------------------------------------------

    def drain(self) -> None:
        """Block until every admitted query has been processed."""
        self._queue.join()

    def close(self, drain: bool = True) -> None:
        """Stop admission, settle outstanding work, join the workers.

        ``drain=True`` (default) lets queued queries finish;
        ``drain=False`` rejects them with
        :class:`repro.errors.QueryCancelled`.

        Idempotent *and* re-entrant: exactly one caller performs the
        shutdown; every other concurrent or later ``close()`` blocks
        until that shutdown has fully completed, so no caller can
        observe a half-torn-down service.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
        if not first:
            self._close_done.wait()
            return
        try:
            self._close(drain)
        finally:
            self._close_done.set()

    def _close(self, drain: bool) -> None:
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    with self._lock:
                        self.cancelled += 1
                    self.incidents.record(
                        Incident(
                            kind="query-cancelled",
                            query=str(item.query),
                            detail={"index": item.index},
                            action="rejected-at-shutdown",
                        )
                    )
                    item._reject(QueryCancelled("service shutdown"))
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        if self._supervisor is not None:
            self._supervisor.shutdown()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ---------------------------------------------------

    def snapshot(self) -> dict:
        """Machine-readable service state for footers and bench JSON."""
        with self._lock:
            counters = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
            }
        return {
            **counters,
            "engine": self.engine,
            "workers": len(self._threads),
            "isolation": self.isolation,
            "shm": self.shm_enabled,
            "procpool": (
                self._supervisor.snapshot() if self._supervisor is not None else None
            ),
            "queue_depth": self.queue_depth,
            "breakers": {
                name: breaker.snapshot() for name, breaker in self.breakers.items()
            },
            "incidents": len(self.incidents),
            "incidents_dropped": self.incidents.dropped,
            "plan_cache": self.plan_cache.counters(),
            "feedback": self.feedback.counters() if self.feedback else None,
            "replan_threshold": self.replan_threshold,
            "fault_plan": self.fault_plan.to_dict() if self.fault_plan else None,
        }

    def export_metrics(self) -> MetricsRegistry:
        """The service registry, with plan-cache gauges freshly synced.

        Use this (rather than :attr:`metrics` directly) when exporting:
        cache hits/misses live in the shared :class:`PlanCache` and are
        copied into the registry at export time.
        """
        sync_cache_metrics(self.metrics, self.plan_cache)
        sync_engine_metrics(self.metrics)
        if self.feedback is not None:
            sync_feedback_metrics(self.metrics, self.feedback)
        return self.metrics

    # -- worker machinery ------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._process(item)
            except BaseException as exc:  # the pool must never lose a worker
                if not item.done():  # pragma: no cover - defensive
                    item._reject(
                        exc if isinstance(exc, ReproError) else EngineFailure(
                            [("worker", f"{type(exc).__name__}: {exc}")]
                        )
                    )
            finally:
                self._queue.task_done()

    def _session_for(self, engine: str) -> QuerySession:
        sessions = getattr(self._local, "sessions", None)
        if sessions is None:
            sessions = self._local.sessions = {}
        if engine not in sessions:
            if self._session_factory is not None:
                sessions[engine] = self._session_factory(engine)
            else:
                sessions[engine] = QuerySession(
                    self.db,
                    catalog=self.catalog,
                    stats=self.stats,
                    verify=self.verify,
                    executor=engine,
                    max_plans=self.max_plans,
                    verify_seed=self.verify_seed,
                    plan_cache=self.plan_cache,
                    incidents=self.incidents,
                    quarantined=self.quarantined,
                    feedback=self.feedback,
                    replan_threshold=self.replan_threshold,
                    max_replans=self.max_replans,
                    metrics=self.metrics,
                    enum_tier=self.enum_tier,
                )
        return sessions[engine]

    def _engine_order(self) -> tuple[str, ...]:
        start = FALLBACK_CHAIN.index(self.engine)
        return FALLBACK_CHAIN[start:]

    def _carve_budget(self, ticket: QueryTicket) -> Budget:
        """The query's budget: template caps, service-clamped deadline."""
        template = self._budget_template
        deadline = template.deadline_ms if template is not None else None
        service = self._service_budget
        if service is not None and service.deadline_ms is not None:
            service.check_deadline(where="service-carve")  # typed when spent
            remaining = service.remaining_ms
            deadline = remaining if deadline is None else min(deadline, remaining)
        return Budget(
            deadline_ms=deadline,
            max_plans=template.max_plans if template else None,
            max_rows=template.max_rows if template else None,
            cancel=ticket.cancel_token,
        )

    def _charge_service(self, spent: Budget) -> None:
        """Charge a query's spend back to the shared service budget."""
        service = self._service_budget
        if service is None:
            return
        try:
            if spent.plans:
                service.charge_plans(spent.plans, where="service-aggregate")
            if spent.rows:
                service.charge_rows(spent.rows, where="service-aggregate")
        except BudgetExceeded as exc:
            with self._lock:
                already = self._budget_exhausted
                self._budget_exhausted = True
            if not already:
                self.incidents.record(
                    Incident(
                        kind="service-budget-exhausted",
                        query="",
                        detail=exc.to_dict(),
                        action="admission-closed",
                    )
                )

    def _note_transition(self, engine: str, transition: str | None, query) -> None:
        if transition is None:
            return
        self.metrics.counter("repro_breaker_transitions_total").labels(
            engine=engine, to=transition
        ).inc()
        kind = {
            "open": "breaker-open",
            "half-open": "breaker-half-open",
            "closed": "breaker-closed",
        }[transition]
        self.incidents.record(
            Incident(
                kind=kind,
                query=str(query),
                detail=self.breakers[engine].snapshot(),
                action={
                    "open": f"routing around {engine}",
                    "half-open": f"probing {engine}",
                    "closed": f"restored {engine}",
                }[transition],
            )
        )

    def _trip(self, engine: str, query) -> None:
        self._note_transition(engine, self.breakers[engine].record_failure(), query)

    def _process(self, ticket: QueryTicket) -> None:
        t0 = time.monotonic()
        queue_ms = (t0 - ticket.submitted_at) * 1000.0
        if ticket.cancel_token.cancelled:
            with self._lock:
                self.cancelled += 1
            self.incidents.record(
                Incident(
                    kind="query-cancelled",
                    query=str(ticket.query),
                    detail={"index": ticket.index, "queue_ms": round(queue_ms, 3)},
                    action="dropped-before-start",
                )
            )
            ticket._reject(QueryCancelled("before start"))
            return
        stream = (
            self.fault_plan.stream(ticket.index) if self.fault_plan else None
        )
        qbudget: Budget | None = None
        try:
            with fault_scope(stream):
                qbudget = self._carve_budget(ticket)
                self._route(ticket, qbudget, t0, queue_ms)
        except BaseException as exc:
            # typed carve failures (service deadline spent) and anything
            # the routing loop re-raised
            self._settle_failure(ticket, exc)
        finally:
            if qbudget is not None:
                self._charge_service(qbudget)

    def _route(
        self, ticket: QueryTicket, qbudget: Budget, t0: float, queue_ms: float
    ) -> None:
        attempts: list[tuple[str, str]] = []
        last_error: BaseException | None = None
        for engine in self._engine_order():
            breaker = self.breakers[engine]
            if engine == "reference":
                allowed, transition = True, None  # the floor is never gated
            else:
                allowed, transition = breaker.allow()
            self._note_transition(engine, transition, ticket.query)
            if not allowed:
                attempts.append((engine, "breaker-open"))
                continue
            session = self._session_for(engine)
            try:
                # the kwarg is omitted when empty so injected session
                # doubles with the older run() signature keep working
                kwargs = (
                    {"required_order": ticket.required_order}
                    if ticket.required_order
                    else {}
                )
                result = session.run(ticket.query, budget=qbudget, **kwargs)
            except QueryCancelled as exc:
                with self._lock:
                    self.cancelled += 1
                self.incidents.record(
                    Incident(
                        kind="query-cancelled",
                        query=str(ticket.query),
                        detail={"index": ticket.index, "engine": engine},
                        action="unwound-at-checkpoint",
                    )
                )
                ticket._reject(exc)
                return
            except BudgetExceeded as exc:
                # ran out of resources, not an engine defect: retrying on
                # a slower engine under the same spent budget cannot help
                self.incidents.record(
                    Incident(
                        kind="budget-exhausted",
                        query=str(ticket.query),
                        detail={"engine": engine, **exc.to_dict()},
                        action="typed-error",
                    )
                )
                self._settle_failure(ticket, exc)
                return
            except UserInputError:
                # the query's fault; no engine is to blame
                raise
            except Exception as exc:  # crash (injected or genuine)
                message = f"{type(exc).__name__}: {exc}"
                attempts.append((engine, message))
                last_error = exc
                self.metrics.counter("repro_engine_failures_total").labels(
                    engine=engine
                ).inc()
                self.incidents.record(
                    Incident(
                        kind="engine-failure",
                        query=str(ticket.query),
                        detail={
                            "engine": engine,
                            "error": type(exc).__name__,
                            "message": str(exc),
                            "index": ticket.index,
                        },
                        action="rerouted",
                    )
                )
                if engine != "reference":
                    self._trip(engine, ticket.query)
                continue
            if result.verified is False:
                # wrong plan contained by the session (fell back to the
                # original); the mismatch still counts against the engine
                if engine != "reference":
                    self._trip(engine, ticket.query)
            elif engine != "reference":
                self._note_transition(
                    engine, breaker.record_success(), ticket.query
                )
            with self._lock:
                self.completed += 1
            service_ms = (time.monotonic() - t0) * 1000.0
            self.metrics.counter("repro_queries_total").labels(
                outcome="ok"
            ).inc()
            self.metrics.histogram("repro_query_latency_ms").observe(service_ms)
            ticket._resolve(
                ServiceResult(
                    session=result,
                    engine=engine,
                    attempts=tuple(attempts),
                    index=ticket.index,
                    service_ms=service_ms,
                    queue_ms=queue_ms,
                )
            )
            return
        # every engine refused or failed
        error: BaseException
        if isinstance(last_error, ReproError):
            error = last_error
        else:
            error = EngineFailure(attempts)
        self.incidents.record(
            Incident(
                kind="query-failed",
                query=str(ticket.query),
                detail={"attempts": [list(a) for a in attempts]},
                action="typed-error",
            )
        )
        self._settle_failure(ticket, error)

    def _settle_failure(self, ticket: QueryTicket, exc: BaseException) -> None:
        with self._lock:
            self.failed += 1
        self.metrics.counter("repro_queries_total").labels(outcome="error").inc()
        if not isinstance(exc, ReproError):
            exc = EngineFailure([("service", f"{type(exc).__name__}: {exc}")])
        if not ticket.done():
            ticket._reject(exc)


__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "FALLBACK_CHAIN",
    "QueryService",
    "QueryTicket",
    "ServiceResult",
]
