"""Process-level fault isolation: a supervised worker-process pool.

Thread workers (:class:`repro.runtime.QueryService`'s default) contain
*typed* failures -- engine crashes, budget overruns, wrong plans -- but
a segfaulting native extension, a runaway C loop, or an ``os._exit``
deep in a dependency takes the whole process down, queries, breakers
and all.  This module moves execution into child processes so the
blast radius of a dying worker is one query, not the service:

* A :class:`WorkerSupervisor` owns N ``multiprocessing`` workers
  (``spawn`` start method -- the parent is threaded, so ``fork`` is
  off the table).  Each child runs full :class:`QuerySession` stacks
  over the pickled database/catalog/statistics; the pickled init blob
  is built once and cached, so restarts are cheap.
* **Three-way failure detection.**  (1) the child's exit code / death
  signal, (2) missed heartbeats -- children beat over the result pipe
  while a query is in flight, so a wedged worker is distinguishable
  from an idle one -- and (3) per-query deadline overrun with a grace
  period, after which the supervisor sends SIGKILL.
* **Restart with backoff.**  A dead worker is respawned under
  exponential backoff plus jitter.  Restarts are counted per slot in a
  sliding window; past the threshold the slot enters a circuit-style
  *flapping* state and sheds its work with the typed
  :class:`repro.errors.WorkerPoolDegraded` until a cooldown expires --
  a crash-looping pool must answer "no" cheaply, not respawn forever.
* **At-most-``max_retries`` redelivery.**  Queries here are read-only,
  so a query that was in flight on a dead worker is safely retried on
  a fresh one; past the cap it surfaces the typed
  :class:`repro.errors.WorkerCrashed` with the death reason journaled.
* **Poisoned-query quarantine.**  A query fingerprint that kills
  workers ``poison_threshold`` times in a row is quarantined: further
  occurrences fail fast instead of grinding the pool down.

Routing stays in the parent: the engine fallback walk, circuit
breakers, admission control and budget carving are exactly the
machinery of :class:`QueryService` -- each *engine attempt* is
dispatched to a child, typed errors come back over the pipe (encoded
structurally; exception classes with custom constructors do not
survive pickling), and the child's incident-journal delta is merged
into the parent log so one ring buffer tells the whole story.

Determinism: the per-query fault stream is still derived from
``(plan seed, admission index)`` -- the process-level kinds
(``worker:kill9``, ``worker:hang``, ``worker:exit``) are rolled first,
at task receipt inside the child, so chaos runs reproduce exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import signal
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    EngineFailure,
    InjectedFault,
    OptimizerInternalError,
    PlanBudgetExceeded,
    QueryCancelled,
    ReproError,
    RowBudgetExceeded,
    UserInputError,
    VerificationFailed,
    WorkerCrashed,
    WorkerPoolDegraded,
)
from repro.runtime.budget import Budget
from repro.runtime.incidents import Incident, IncidentLog
from repro.runtime.plan_cache import ShardedPlanCache, query_fingerprint
from repro.runtime.tracing import span

#: The fault site process-level clauses target (``worker:kill9`` etc.
#: match by dot-boundary prefix, exactly like engine sites).
WORKER_FAULT_SITE = "worker.query"

#: Exit code for the injected ``worker:exit`` fault (EX_SOFTWARE).
_EXIT_FAULT_CODE = 70


@dataclass(frozen=True)
class ProcPoolConfig:
    """Tunables for the supervised process pool.

    The defaults favour fast tests over production patience: a worker
    that misses heartbeats for two seconds is presumed wedged, and a
    slot that restarts five times inside ten seconds is flapping.
    """

    max_retries: int = 2
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 2.0
    deadline_grace_s: float = 0.5
    poll_interval_s: float = 0.02
    restart_backoff_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    restart_jitter_s: float = 0.02
    flap_threshold: int = 5
    flap_window_s: float = 10.0
    flap_cooldown_s: float = 5.0
    poison_threshold: int = 2
    spawn_timeout_s: float = 60.0
    start_method: str = "spawn"
    # sharded-cache warm-up: how many recently successful queries a
    # fresh worker pre-plans, and the planning budget for each (a
    # restart must come back warm, not come back late)
    warmup_limit: int = 16
    warmup_deadline_ms: float = 250.0


# -- error transport ------------------------------------------------------
#
# ReproError subclasses carry structured fields through custom
# constructors, and ``pickle`` rebuilds exceptions via ``cls(*args)`` --
# which explodes for anything whose ``__init__`` signature is not
# ``(message)``.  So errors cross the pipe as plain dicts and are
# rebuilt from a registry on the parent side.

_MESSAGE_ERRORS = {
    cls.__name__: cls
    for cls in (
        UserInputError,
        OptimizerInternalError,
        VerificationFailed,
        ReproError,
    )
}
_BUDGET_ERRORS = {
    cls.__name__: cls
    for cls in (BudgetExceeded, DeadlineExceeded, PlanBudgetExceeded, RowBudgetExceeded)
}


def encode_error(exc: BaseException) -> dict:
    """Structural form of ``exc`` for the result pipe."""
    out: dict = {"kind": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, BudgetExceeded):
        out["detail"] = {
            "limit": exc.limit,
            "spent": exc.spent,
            "where": exc.where,
        }
    elif isinstance(exc, QueryCancelled):
        out["detail"] = {"where": exc.where}
    elif isinstance(exc, InjectedFault):
        out["detail"] = {"site": exc.site, "spec": exc.spec}
    elif isinstance(exc, EngineFailure):
        out["detail"] = {"attempts": [list(a) for a in exc.attempts]}
    return out


def decode_error(payload: dict) -> BaseException:
    """Rebuild the typed error :func:`encode_error` flattened.

    Unknown kinds (a genuine engine bug of any class) come back as
    the member of the taxonomy the thread path would produce:
    an :class:`EngineFailure` wrapping the message.
    """
    kind = payload.get("kind", "")
    message = payload.get("message", "")
    detail = payload.get("detail", {})
    if kind in _BUDGET_ERRORS:
        return _BUDGET_ERRORS[kind](
            detail.get("limit", 0.0), detail.get("spent", 0.0), detail.get("where", "")
        )
    if kind == "QueryCancelled":
        return QueryCancelled(detail.get("where", ""))
    if kind == "InjectedFault":
        return InjectedFault(detail.get("site", ""), detail.get("spec", ""))
    if kind == "EngineFailure":
        return EngineFailure([tuple(a) for a in detail.get("attempts", [])])
    if kind in _MESSAGE_ERRORS:
        return _MESSAGE_ERRORS[kind](message)
    return EngineFailure([("worker", f"{kind}: {message}")])


# -- the child ------------------------------------------------------------


def _perform_process_fault(kind: str) -> None:
    """Carry out a rolled process-level fault.  May never return."""
    if kind == "kill9":
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "exit":
        os._exit(_EXIT_FAULT_CODE)
    elif kind == "hang":
        # wedged, not dead: never beats, never answers, never exits --
        # exactly the failure mode heartbeat detection exists for.
        while True:
            time.sleep(60.0)


def _heartbeat_loop(conn, send_lock, busy, stop, interval_s: float) -> None:
    """Beat over the result pipe while a query is in flight.

    Idle workers stay silent: an unbounded heartbeat stream into a
    pipe nobody is draining would eventually fill the OS buffer and
    deadlock the child.  The parent only watches for beats while it is
    awaiting a result, so busy-only beats are exactly sufficient.
    """
    while not stop.is_set():
        if not busy.wait(0.1):
            continue
        try:
            with send_lock:
                conn.send(("heartbeat",))
        except (BrokenPipeError, OSError):
            os._exit(0)  # the parent is gone; nothing left to serve
        if stop.wait(interval_s):
            return


def _worker_main(conn, init_blob: bytes) -> None:
    """Child entry point: sessions over the unpickled snapshot.

    Protocol (tuples over the duplex pipe):

    parent -> child: ``("task", {...})`` | ``("shutdown",)``
    child -> parent: ``("ready", pid)`` | ``("heartbeat",)`` |
    ``("result", payload)`` | ``("error", payload)`` | ``("bye",)``

    Every result/error payload carries the child's incident-journal
    delta and its budget spend, so parent-side observability and
    service budget charge-back see through the process boundary.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates
    init = pickle.loads(init_blob)
    from repro.runtime.session import QuerySession

    db = init["db"]
    handles = init.get("page_handles") or {}
    if handles:
        # zero-copy path: the blob carried only unpageable tables; the
        # rest attach from the supervisor's shared-memory pages.  The
        # resource tracker is told to forget each segment -- only the
        # creating parent may unlink.
        from repro.relalg.pages import attach_page

        for table, handle in handles.items():
            with span("page.attach", table=table, segment=handle.segment):
                db.add(table, attach_page(handle).relation())
    stats = init["stats"]
    feedback = None
    if init["replan_threshold"] is not None:
        from repro.runtime.feedback import FeedbackStore

        feedback = FeedbackStore()
        stats.feedback = feedback
    incidents = IncidentLog(capacity=init["incident_capacity"])
    plan_cache = ShardedPlanCache()
    quarantined: set = set()
    sessions: dict[str, QuerySession] = {}

    def session_for(engine: str) -> QuerySession:
        if engine not in sessions:
            sessions[engine] = QuerySession(
                db,
                catalog=init["catalog"],
                stats=stats,
                verify=init["verify"],
                executor=engine,
                max_plans=init["max_plans"],
                verify_seed=init["verify_seed"],
                plan_cache=plan_cache,
                incidents=incidents,
                quarantined=quarantined,
                feedback=feedback,
                replan_threshold=init["replan_threshold"],
                max_replans=init["max_replans"],
                enum_tier=init["enum_tier"],
            )
        return sessions[engine]

    fault_plan = init["fault_plan"]
    send_lock = threading.Lock()
    busy = threading.Event()
    stop = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, send_lock, busy, stop, init["heartbeat_interval_s"]),
        daemon=True,
    )
    beater.start()
    with send_lock:
        conn.send(("ready", os.getpid()))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            if msg[0] == "shutdown":
                with send_lock:
                    conn.send(("bye",))
                return
            if msg[0] == "warmup":
                _warm_cache(
                    msg[1],
                    session_for,
                    init["engine"],
                    init["warmup_deadline_ms"],
                )
                continue
            _run_task(msg[1], session_for, fault_plan, incidents, conn, send_lock, busy)
    finally:
        stop.set()


def _warm_cache(entries, session_for, engine: str, deadline_ms: float) -> None:
    """Pre-plan recently successful queries into this child's cache.

    Runs between the ready handshake and the first task, so a
    restarted worker answers its first repeated query from a warm
    sharded cache instead of re-optimizing from scratch.  Each entry
    gets a small planning budget and failures are ignored -- warm-up
    is an optimization, never a correctness dependency.
    """
    session = session_for(engine)
    for query, required_order in entries:
        try:
            with span("cache.warmup"):
                session.plan(
                    query,
                    budget=Budget(deadline_ms=deadline_ms),
                    required_order=required_order,
                )
        except Exception:
            continue


def _run_task(task, session_for, fault_plan, incidents, conn, send_lock, busy) -> None:
    from repro.runtime.faults import fault_scope

    stream = (
        fault_plan.stream(task["index"], task.get("attempt", 0))
        if fault_plan
        else None
    )
    journal_mark = len(incidents)
    budget = Budget.from_caps(task["caps"])
    try:
        with fault_scope(stream):
            if stream is not None:
                # rolled before heartbeats start: an injected hang is
                # caught by heartbeat timeout, not the deadline.
                fired = stream.apply_process(WORKER_FAULT_SITE)
                if fired is not None:
                    _perform_process_fault(fired)
            busy.set()
            session = session_for(task["engine"])
            kwargs = (
                {"required_order": task["required_order"]}
                if task["required_order"]
                else {}
            )
            result = session.run(task["query"], budget=budget, **kwargs)
        reply = (
            "result",
            {
                "session": result,
                "incidents": incidents.records[journal_mark:],
                "spend": {"plans": budget.plans, "rows": budget.rows},
            },
        )
    except BaseException as exc:
        reply = (
            "error",
            {
                **encode_error(exc),
                "incidents": incidents.records[journal_mark:],
                "spend": {"plans": budget.plans, "rows": budget.rows},
            },
        )
    finally:
        busy.clear()
    with send_lock:
        conn.send(reply)


# -- the parent -----------------------------------------------------------


class _Slot:
    """One worker position: current process, pipe, and flap history.

    A slot is owned by exactly one dispatcher thread; only the
    flap-state fields are read cross-thread (under the supervisor
    lock) to answer the pool-degraded question.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.restarts: deque[float] = deque()
        self.flapping_until = 0.0
        self.consecutive_failures = 0
        self.next_reason = "start"  # why the next (re)spawn happens


class WorkerSupervisor:
    """Owns the worker processes and routes tickets onto them.

    Created by :class:`QueryService` when ``isolation="process"``; its
    dispatcher threads take over the service's admission queue, so
    admission control, budgets, breakers, counters and the incident
    log are all the service's own -- this class adds only the process
    boundary and its failure handling.
    """

    def __init__(self, service, workers: int, config: ProcPoolConfig) -> None:
        self.service = service
        self.config = config
        self._ctx = multiprocessing.get_context(config.start_method)
        self._slots = [_Slot(i) for i in range(workers)]
        self._lock = threading.Lock()
        self._rng = random.Random()
        self._kills: dict[str, int] = {}  # fingerprint -> consecutive worker deaths
        self._poisoned: set[str] = set()
        self._shutdown = False
        self.restarts = 0
        self.retries = 0
        # recently successful (query, required_order) pairs, newest
        # last, broadcast to fresh workers so restarts come back warm
        self._warm: OrderedDict[str, tuple] = OrderedDict()
        self._warm_lock = threading.Lock()
        self.page_registry = None
        if getattr(service, "shm_enabled", False):
            from repro.relalg.pages import PageRegistry, sweep_orphans

            with span("page.sweep"):
                swept = sweep_orphans()
            if swept:
                service.metrics.counter("repro_shm_orphans_swept_total").inc(
                    len(swept)
                )
                service.incidents.record(
                    Incident(
                        kind="shm-orphans-swept",
                        query="",
                        detail={"segments": swept},
                        action="unlinked",
                    )
                )
            with span("page.build"):
                self.page_registry = PageRegistry.build(service.db)
            registry = self.page_registry
            service.metrics.gauge("repro_shm_segments").set(
                len(registry.handles)
            )
            service.metrics.gauge("repro_shm_bytes").set(registry.nbytes)
            if registry.fallback:
                service.metrics.counter("repro_shm_fallback_total").inc(
                    len(registry.fallback)
                )
        self._init_blob = self._build_init_blob()

    # -- wiring -----------------------------------------------------------

    def start(self) -> list[threading.Thread]:
        """Spawn the dispatcher threads (the service joins these)."""
        threads = [
            threading.Thread(
                target=self._dispatch,
                args=(slot,),
                name=f"repro-procpool-{slot.index}",
                daemon=True,
            )
            for slot in self._slots
        ]
        for thread in threads:
            thread.start()
        return threads

    def _build_init_blob(self) -> bytes:
        svc = self.service
        registry = self.page_registry
        if registry is None:
            db = svc.db
            page_handles = None
        else:
            # only unpageable tables ride the pickle; the rest cross
            # as page handles, a few dozen bytes per table
            from repro.expr.evaluate import Database

            db = Database()
            for table in registry.fallback:
                db.add(table, svc.db[table])
            page_handles = dict(registry.handles)
        # the feedback store holds locks and cannot cross the pipe;
        # children build their own when re-planning is armed.
        stashed = getattr(svc.stats, "feedback", None)
        svc.stats.feedback = None
        try:
            return pickle.dumps(
                {
                    "db": db,
                    "page_handles": page_handles,
                    "engine": svc.engine,
                    "warmup_deadline_ms": self.config.warmup_deadline_ms,
                    "catalog": svc.catalog,
                    "stats": svc.stats,
                    "verify": svc.verify,
                    "verify_seed": svc.verify_seed,
                    "max_plans": svc.max_plans,
                    "replan_threshold": svc.replan_threshold,
                    "max_replans": svc.max_replans,
                    "enum_tier": svc.enum_tier,
                    "fault_plan": svc.fault_plan,
                    "incident_capacity": svc.incidents.capacity,
                    "heartbeat_interval_s": self.config.heartbeat_interval_s,
                }
            )
        finally:
            svc.stats.feedback = stashed

    # -- state ------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when *every* slot is flapping: shed at admission."""
        now = time.monotonic()
        with self._lock:
            return all(slot.flapping_until > now for slot in self._slots)

    def snapshot(self) -> dict:
        now = time.monotonic()
        with self._lock:
            flapping = sum(1 for s in self._slots if s.flapping_until > now)
            return {
                "workers": len(self._slots),
                "alive": sum(
                    1
                    for s in self._slots
                    if s.process is not None and s.process.is_alive()
                ),
                "restarts": self.restarts,
                "retries": self.retries,
                "flapping": flapping,
                "degraded": flapping == len(self._slots),
                "poisoned": len(self._poisoned),
                "shm": (
                    self.page_registry.snapshot()
                    if self.page_registry is not None
                    else None
                ),
                "warm_queries": len(self._warm),
            }

    # -- dispatcher loop ---------------------------------------------------

    def _dispatch(self, slot: _Slot) -> None:
        from repro.runtime.service import _STOP

        queue = self.service._queue
        while True:
            item = queue.get()
            try:
                if item is _STOP:
                    self._shutdown_slot(slot)
                    return
                self._process_ticket(slot, item)
            except BaseException as exc:  # the pool must never lose a dispatcher
                if not item.done():  # pragma: no cover - defensive
                    item._reject(
                        exc
                        if isinstance(exc, ReproError)
                        else EngineFailure(
                            [("supervisor", f"{type(exc).__name__}: {exc}")]
                        )
                    )
            finally:
                queue.task_done()

    def _process_ticket(self, slot: _Slot, ticket) -> None:
        svc = self.service
        t0 = time.monotonic()
        queue_ms = (t0 - ticket.submitted_at) * 1000.0
        if ticket.cancel_token.cancelled:
            with svc._lock:
                svc.cancelled += 1
            svc.incidents.record(
                Incident(
                    kind="query-cancelled",
                    query=str(ticket.query),
                    detail={"index": ticket.index, "queue_ms": round(queue_ms, 3)},
                    action="dropped-before-start",
                )
            )
            ticket._reject(QueryCancelled("before start"))
            return
        fingerprint = query_fingerprint(ticket.query)
        if fingerprint in self._poisoned:
            svc.incidents.record(
                Incident(
                    kind="poisoned-query-rejected",
                    query=str(ticket.query),
                    detail={"index": ticket.index, "fingerprint": fingerprint},
                    action="failed-fast",
                )
            )
            svc._settle_failure(
                ticket,
                WorkerCrashed("poisoned", poisoned=True, fingerprint=fingerprint),
            )
            return
        qbudget = None
        try:
            qbudget = svc._carve_budget(ticket)
            self._route(slot, ticket, qbudget, fingerprint, t0, queue_ms)
        except BaseException as exc:
            svc._settle_failure(ticket, exc)
        finally:
            if qbudget is not None:
                svc._charge_service(qbudget)

    # -- routing (mirrors QueryService._route across the pipe) ------------

    def _route(
        self, slot: _Slot, ticket, qbudget: Budget, fingerprint: str, t0, queue_ms
    ) -> None:
        svc = self.service
        attempts: list[tuple[str, str]] = []
        last_error: BaseException | None = None
        retries = 0
        dispatches = 0  # salts the fault stream per delivery
        for engine in svc._engine_order():
            breaker = svc.breakers[engine]
            if engine == "reference":
                allowed, transition = True, None  # the floor is never gated
            else:
                allowed, transition = breaker.allow()
            svc._note_transition(engine, transition, ticket.query)
            if not allowed:
                attempts.append((engine, "breaker-open"))
                continue
            while True:  # redelivery loop for worker deaths
                self._ensure_worker(slot, ticket.query)
                status, payload = self._exchange(
                    slot, ticket, qbudget, engine, dispatches
                )
                dispatches += 1
                if status != "died":
                    break
                reason = payload
                slot.consecutive_failures += 1
                self._kills[fingerprint] = self._kills.get(fingerprint, 0) + 1
                svc.incidents.record(
                    Incident(
                        kind="worker-crashed",
                        query=str(ticket.query),
                        detail={
                            "index": ticket.index,
                            "worker": slot.index,
                            "engine": engine,
                            "reason": reason,
                            "retries": retries,
                        },
                        action="worker-restarting",
                    )
                )
                if self._kills[fingerprint] >= self.config.poison_threshold:
                    self._poisoned.add(fingerprint)
                    svc.incidents.record(
                        Incident(
                            kind="poisoned-query-quarantined",
                            query=str(ticket.query),
                            detail={
                                "fingerprint": fingerprint,
                                "worker_deaths": self._kills[fingerprint],
                            },
                            action="quarantined",
                        )
                    )
                    svc._settle_failure(
                        ticket,
                        WorkerCrashed(
                            reason,
                            retries=retries,
                            poisoned=True,
                            fingerprint=fingerprint,
                        ),
                    )
                    return
                if retries >= self.config.max_retries:
                    svc._settle_failure(
                        ticket,
                        WorkerCrashed(reason, retries=retries, fingerprint=fingerprint),
                    )
                    return
                retries += 1
                with self._lock:
                    self.retries += 1
                svc.metrics.counter("repro_worker_retries_total").inc()
                with span(
                    "worker.retry", worker=str(slot.index), reason=reason
                ):
                    pass
            if status == "deadline":
                # the worker blew through deadline + grace and was
                # killed; surface the budget truth, not a crash.
                limit = qbudget.deadline_ms or 0.0
                exc = DeadlineExceeded(limit, qbudget.elapsed_ms, "worker-deadline")
                svc.incidents.record(
                    Incident(
                        kind="budget-exhausted",
                        query=str(ticket.query),
                        detail={"engine": engine, **exc.to_dict()},
                        action="worker-killed",
                    )
                )
                svc._settle_failure(ticket, exc)
                return
            if status == "cancelled":
                with svc._lock:
                    svc.cancelled += 1
                svc.incidents.record(
                    Incident(
                        kind="query-cancelled",
                        query=str(ticket.query),
                        detail={"index": ticket.index, "engine": engine},
                        action="worker-killed",
                    )
                )
                ticket._reject(QueryCancelled("worker-killed"))
                return
            # a completed exchange (ok or typed error): the query no
            # longer kills workers, so its death streak resets
            self._kills.pop(fingerprint, None)
            slot.consecutive_failures = 0
            spend = payload.get("spend", {})
            try:
                qbudget.tick(
                    rows=spend.get("rows", 0),
                    plans=spend.get("plans", 0),
                    where="worker-spend",
                )
            except BudgetExceeded as exc:
                svc.incidents.record(
                    Incident(
                        kind="budget-exhausted",
                        query=str(ticket.query),
                        detail={"engine": engine, **exc.to_dict()},
                        action="typed-error",
                    )
                )
                svc._settle_failure(ticket, exc)
                return
            if status == "error":
                exc = decode_error(payload)
                if isinstance(exc, QueryCancelled):
                    with svc._lock:
                        svc.cancelled += 1
                    svc.incidents.record(
                        Incident(
                            kind="query-cancelled",
                            query=str(ticket.query),
                            detail={"index": ticket.index, "engine": engine},
                            action="unwound-at-checkpoint",
                        )
                    )
                    ticket._reject(exc)
                    return
                if isinstance(exc, BudgetExceeded):
                    svc.incidents.record(
                        Incident(
                            kind="budget-exhausted",
                            query=str(ticket.query),
                            detail={"engine": engine, **exc.to_dict()},
                            action="typed-error",
                        )
                    )
                    svc._settle_failure(ticket, exc)
                    return
                if isinstance(exc, UserInputError):
                    svc._settle_failure(ticket, exc)
                    return
                # engine crash (injected or genuine): try the next engine
                message = f"{type(exc).__name__}: {exc}"
                attempts.append((engine, message))
                last_error = exc
                svc.metrics.counter("repro_engine_failures_total").labels(
                    engine=engine
                ).inc()
                svc.incidents.record(
                    Incident(
                        kind="engine-failure",
                        query=str(ticket.query),
                        detail={
                            "engine": engine,
                            "error": type(exc).__name__,
                            "message": str(exc),
                            "index": ticket.index,
                        },
                        action="rerouted",
                    )
                )
                if engine != "reference":
                    svc._trip(engine, ticket.query)
                continue
            # status == "ok"
            result = payload["session"]
            if result.verified is False:
                if engine != "reference":
                    svc._trip(engine, ticket.query)
            elif engine != "reference":
                svc._note_transition(
                    engine, breaker.record_success(), ticket.query
                )
            with svc._lock:
                svc.completed += 1
            self._note_warm(fingerprint, ticket.query, ticket.required_order)
            service_ms = (time.monotonic() - t0) * 1000.0
            svc.metrics.counter("repro_queries_total").labels(outcome="ok").inc()
            svc.metrics.histogram("repro_query_latency_ms").observe(service_ms)
            from repro.runtime.service import ServiceResult

            ticket._resolve(
                ServiceResult(
                    session=result,
                    engine=engine,
                    attempts=tuple(attempts),
                    index=ticket.index,
                    service_ms=service_ms,
                    queue_ms=queue_ms,
                )
            )
            return
        error: BaseException
        if isinstance(last_error, ReproError):
            error = last_error
        else:
            error = EngineFailure(attempts)
        svc.incidents.record(
            Incident(
                kind="query-failed",
                query=str(ticket.query),
                detail={"attempts": [list(a) for a in attempts]},
                action="typed-error",
            )
        )
        svc._settle_failure(ticket, error)

    # -- one engine attempt over the pipe ----------------------------------

    def _exchange(
        self, slot: _Slot, ticket, qbudget: Budget, engine: str, attempt: int
    ):
        """Send one engine attempt to the slot's worker, watch it run.

        Returns ``(status, payload)``:

        * ``("ok", result_payload)`` / ``("error", error_payload)`` --
          the child answered; incidents are already merged.
        * ``("died", reason)`` -- the worker is gone (killed, crashed
          or wedged); the slot has been reaped and ``slot.next_reason``
          records why for the restart metric.
        * ``("deadline", None)`` / ``("cancelled", None)`` -- the
          supervisor killed the worker on purpose.
        """
        cfg = self.config
        svc = self.service
        conn = slot.conn
        caps = qbudget.caps()
        gauge = svc.metrics.gauge("repro_worker_heartbeat_age_seconds").labels(
            worker=str(slot.index)
        )
        try:
            while conn.poll(0):  # drop stale heartbeats from a prior task
                conn.recv()
            conn.send(
                (
                    "task",
                    {
                        "index": ticket.index,
                        "query": ticket.query,
                        "required_order": ticket.required_order,
                        "caps": caps,
                        "engine": engine,
                        "attempt": attempt,
                    },
                )
            )
        except (BrokenPipeError, EOFError, OSError):
            return ("died", self._reap(slot, expected_reason="pipe-closed"))
        sent_at = time.monotonic()
        deadline_at = (
            None
            if caps["deadline_ms"] is None
            else sent_at + caps["deadline_ms"] / 1000.0 + cfg.deadline_grace_s
        )
        last_beat = sent_at
        while True:
            try:
                ready = conn.poll(cfg.poll_interval_s)
            except (BrokenPipeError, OSError):
                return ("died", self._reap(slot, expected_reason="pipe-closed"))
            if ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    return ("died", self._reap(slot, expected_reason="pipe-closed"))
                tag = msg[0]
                if tag == "heartbeat":
                    last_beat = time.monotonic()
                    gauge.set(0.0)
                    continue
                if tag in ("result", "error"):
                    gauge.set(0.0)
                    payload = msg[1]
                    svc.incidents.extend(payload.get("incidents", ()))
                    return ("ok" if tag == "result" else "error", payload)
                continue  # unknown tag: ignore
            now = time.monotonic()
            if ticket.cancel_token.cancelled:
                self._kill(slot, "cancel")
                return ("cancelled", None)
            age = now - last_beat
            gauge.set(age)
            if slot.process is not None and not slot.process.is_alive():
                if conn.poll(0):
                    continue  # drain the final buffered message first
                return ("died", self._reap(slot))
            if age > cfg.heartbeat_timeout_s:
                self._kill(slot, "hang")
                return ("died", "hang")
            if deadline_at is not None and now > deadline_at:
                self._kill(slot, "deadline")
                return ("deadline", None)

    # -- process lifecycle -------------------------------------------------

    def _ensure_worker(self, slot: _Slot, query) -> None:
        """Make the slot's worker live, respawning under backoff.

        Raises :class:`WorkerPoolDegraded` while the slot is flapping:
        its dispatcher sheds work instead of feeding a crash loop.
        """
        if slot.process is not None and not slot.process.is_alive():
            self._reap(slot)  # died idle between queries
        if (
            slot.process is not None
            and slot.process.is_alive()
            and slot.conn is not None
        ):
            return
        cfg = self.config
        now = time.monotonic()
        with self._lock:
            flapping = slot.flapping_until > now
        if flapping:
            raise WorkerPoolDegraded(
                f"worker {slot.index} flapping "
                f"({cfg.flap_threshold} restarts in {cfg.flap_window_s:g}s)"
            )
        reason = slot.next_reason
        if reason != "start" and slot.consecutive_failures:
            backoff = min(
                cfg.restart_backoff_cap_s,
                cfg.restart_backoff_s * (2 ** (slot.consecutive_failures - 1)),
            ) + self._rng.random() * cfg.restart_jitter_s
            time.sleep(backoff)
        name = "worker.spawn" if reason == "start" else "worker.restart"
        with span(name, worker=str(slot.index), reason=reason):
            self._spawn(slot, reason, query)

    def _spawn(self, slot: _Slot, reason: str, query) -> None:
        cfg = self.config
        svc = self.service
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._init_blob),
            name=f"repro-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent's copy; the child keeps its own
        svc.metrics.counter("repro_worker_restarts_total").labels(
            reason=reason
        ).inc()
        with self._lock:
            self.restarts += 1
        if reason != "start":
            self._note_flap(slot, query)
        deadline = time.monotonic() + cfg.spawn_timeout_s

        def _spawn_failed(why: str) -> WorkerPoolDegraded:
            process.kill()
            process.join(1.0)
            try:
                parent_conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            slot.process = None
            slot.conn = None
            slot.consecutive_failures += 1
            slot.next_reason = "spawn-failed"
            return WorkerPoolDegraded(f"worker {slot.index} failed to start: {why}")

        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _spawn_failed(f"no ready within {cfg.spawn_timeout_s:g}s")
            try:
                ready = parent_conn.poll(min(0.05, max(remaining, 0.001)))
            except (BrokenPipeError, OSError):
                raise _spawn_failed("pipe closed during startup") from None
            if ready:
                try:
                    msg = parent_conn.recv()
                except (EOFError, OSError):
                    raise _spawn_failed(
                        f"died during startup (exit {process.exitcode})"
                    ) from None
                if msg[0] == "ready":
                    break
            elif not process.is_alive():
                raise _spawn_failed(f"exited during startup ({process.exitcode})")
        warm = self._warm_entries()
        if warm:
            # broadcast the warm-up set before the first task: the
            # child processes messages in order, so its cache is hot
            # by the time any query arrives
            try:
                parent_conn.send(("warmup", warm))
                svc.metrics.counter("repro_cache_warmup_total").inc(len(warm))
            except (BrokenPipeError, OSError):  # pragma: no cover - racy death
                pass
        slot.process = process
        slot.conn = parent_conn
        slot.next_reason = "start"

    def _warm_entries(self) -> list[tuple]:
        with self._warm_lock:
            return list(self._warm.values())

    def _note_warm(self, fingerprint: str, query, required_order) -> None:
        """Record a successful query for future worker warm-ups (LRU)."""
        with self._warm_lock:
            self._warm.pop(fingerprint, None)
            self._warm[fingerprint] = (query, required_order)
            while len(self._warm) > self.config.warmup_limit:
                self._warm.popitem(last=False)

    def _note_flap(self, slot: _Slot, query) -> None:
        cfg = self.config
        now = time.monotonic()
        with self._lock:
            slot.restarts.append(now)
            horizon = now - cfg.flap_window_s
            while slot.restarts and slot.restarts[0] < horizon:
                slot.restarts.popleft()
            tripped = (
                len(slot.restarts) >= cfg.flap_threshold
                and slot.flapping_until <= now
            )
            if tripped:
                slot.flapping_until = now + cfg.flap_cooldown_s
                slot.restarts.clear()
        if tripped:
            self.service.incidents.record(
                Incident(
                    kind="worker-flapping",
                    query=str(query),
                    detail={
                        "worker": slot.index,
                        "threshold": cfg.flap_threshold,
                        "window_s": cfg.flap_window_s,
                        "cooldown_s": cfg.flap_cooldown_s,
                    },
                    action="slot-shedding",
                )
            )

    def _kill(self, slot: _Slot, reason: str) -> None:
        """SIGKILL the slot's worker and reap it (reason journaled)."""
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
        self._reap(slot, expected_reason=reason)

    def _reap(self, slot: _Slot, expected_reason: str | None = None) -> str:
        """Collect a dead worker; returns the death reason string.

        The exit code wins over a generic ``pipe-closed``: a SIGKILLed
        child often surfaces first as an EOF on the pipe, but
        ``exit:-9`` is the truth an incident reader wants.
        """
        process = slot.process
        reason = expected_reason or "unknown"
        if process is not None:
            process.join(2.0)
            if expected_reason in (None, "pipe-closed"):
                code = process.exitcode
                if code is not None:
                    reason = f"exit:{code}"
                elif expected_reason is None:
                    reason = "exit:?"
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        slot.process = None
        slot.conn = None
        slot.next_reason = reason
        return reason

    def _shutdown_slot(self, slot: _Slot) -> None:
        """Graceful drain for one worker: ask, wait briefly, then kill."""
        process, conn = slot.process, slot.conn
        if process is None:
            return
        try:
            if conn is not None:
                conn.send(("shutdown",))
        except (BrokenPipeError, OSError):
            pass
        process.join(2.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        slot.process = None
        slot.conn = None

    def shutdown(self) -> None:
        """Reap every worker (idempotent; called after dispatchers join)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for slot in self._slots:
            self._shutdown_slot(slot)
        if self.page_registry is not None:
            # workers are gone; destroying the segments is now safe
            self.page_registry.close(unlink=True)


__all__ = [
    "ProcPoolConfig",
    "WORKER_FAULT_SITE",
    "WorkerSupervisor",
    "decode_error",
    "encode_error",
]
