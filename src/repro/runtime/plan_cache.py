"""Cross-query plan cache: amortize optimization over repeated queries.

Optimization dominates latency for repeated or scripted workloads (the
same view expanded under several selects, a dashboard re-issuing one
query shape).  :class:`PlanCache` memoizes successful *full*
optimization results keyed by

* a **canonical query fingerprint** -- a digest of the expression
  tree's exact structure, constants included.  Binding different
  constants therefore misses the cache by design: constant-specific
  statistics (value frequencies) legitimately change the chosen plan,
  and reusing a plan across constants would silently pin a stale
  choice; and
* the **statistics version** (:attr:`Statistics.version`), so a
  refreshed catalog invalidates every entry without explicit flushes.
  The version may be any hashable -- the session composes it with the
  cardinality-feedback generation (``(stats_version, generation)``, see
  :mod:`repro.runtime.feedback`) so observed-cardinality corrections
  also self-invalidate stale plans.

Only trustworthy entries are stored: full-rung results whose
verification did not fail (``verified is not False``).  A later
quarantine of a cached plan evicts the entry (:meth:`evict_plan`).
The cache is bounded LRU; hit/miss counters surface in EXPLAIN, the
CLI, and session results.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.expr.nodes import Expr
from repro.runtime.faults import fault_point
from repro.runtime.tracing import add_counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.planner import OptimizationResult


def query_fingerprint(query: Expr) -> str:
    """Canonical fingerprint of a query's exact structure.

    ``repr`` of the (frozen dataclass) tree is unambiguous and covers
    every field -- operators, attribute tuples, predicates, constants.
    The digest is stable across processes, unlike ``hash()``.
    """
    return hashlib.sha256(repr(query).encode()).hexdigest()[:16]


class PlanCache:
    """Bounded LRU of optimization results, keyed by (fingerprint, stats version).

    Thread-safe: one cache is shared by every worker session of a
    :class:`repro.runtime.service.QueryService`, so the LRU reordering
    (a read-modify-write on the underlying ``OrderedDict``) and the
    counters are guarded by a lock.  Fault-injection checkpoints
    (``cache.get`` / ``cache.put``) fire *outside* the lock so an
    injected latency never serializes the whole pool.
    """

    def __init__(self, max_entries: int = 256) -> None:
        """Create a bounded cache.

        Args:
            max_entries: LRU bound; ``0`` disables caching entirely
                (every store is immediately evicted).
        """
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, int], "OptimizationResult"] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, query: Expr, stats_version: int
    ) -> "OptimizationResult | None":
        """The cached result for ``query``, or ``None`` on a miss.

        Args:
            query: The logical expression being planned (fingerprinted
                structurally, constants included).
            stats_version: :attr:`Statistics.version` the caller plans
                under (or any hashable composed from it, e.g. a
                ``(stats_version, feedback_generation)`` tuple);
                entries stored under another version never hit.

        Both outcomes move the hit/miss counters and fire the
        ``cache.get`` fault/trace checkpoint.
        """
        fault_point("cache", op="get")
        key = (query_fingerprint(query), stats_version)
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self.misses += 1
                add_counter("cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            add_counter("cache_hits")
            return found

    def store(
        self, query: Expr, stats_version: int, result: "OptimizationResult"
    ) -> None:
        """Cache ``result`` for ``(query, stats_version)``, LRU-evicting.

        Args:
            query: The logical expression the result was planned for.
            stats_version: Statistics version the plan was costed under.
            result: A full-rung :class:`OptimizationResult` whose
                verification (if any) did not fail.
        """
        fault_point("cache", op="put")
        key = (query_fingerprint(query), stats_version)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict_plan(self, plan: Expr) -> int:
        """Drop every entry whose chosen plan is ``plan`` (quarantine).

        Returns the number of entries evicted.
        """
        with self._lock:
            stale = [k for k, v in self._entries.items() if v.best == plan]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict:
        """Machine-readable counters for EXPLAIN / CLI / incidents."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "evictions": self.evictions,
            }
