"""Cross-query plan cache: amortize optimization over repeated queries.

Optimization dominates latency for repeated or scripted workloads (the
same view expanded under several selects, a dashboard re-issuing one
query shape).  :class:`PlanCache` memoizes successful *full*
optimization results keyed by

* a **canonical query fingerprint** -- a digest of the expression
  tree's exact structure, constants included.  Binding different
  constants therefore misses the cache by design: constant-specific
  statistics (value frequencies) legitimately change the chosen plan,
  and reusing a plan across constants would silently pin a stale
  choice; and
* the **statistics version** (:attr:`Statistics.version`), so a
  refreshed catalog invalidates every entry without explicit flushes.
  The version may be any hashable -- the session composes it with the
  cardinality-feedback generation (``(stats_version, generation)``, see
  :mod:`repro.runtime.feedback`) so observed-cardinality corrections
  also self-invalidate stale plans.

Only trustworthy entries are stored: full-rung results whose
verification did not fail (``verified is not False``).  A later
quarantine of a cached plan evicts the entry (:meth:`evict_plan`).
The cache is bounded LRU; hit/miss counters surface in EXPLAIN, the
CLI, and session results.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.expr.nodes import Expr
from repro.runtime.faults import fault_point
from repro.runtime.tracing import add_counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.planner import OptimizationResult


def query_fingerprint(query: Expr) -> str:
    """Canonical fingerprint of a query's exact structure.

    ``repr`` of the (frozen dataclass) tree is unambiguous and covers
    every field -- operators, attribute tuples, predicates, constants.
    The digest is stable across processes, unlike ``hash()``.
    """
    return hashlib.sha256(repr(query).encode()).hexdigest()[:16]


class PlanCache:
    """Bounded LRU of optimization results, keyed by (fingerprint, stats version).

    Thread-safe: one cache is shared by every worker session of a
    :class:`repro.runtime.service.QueryService`, so the LRU reordering
    (a read-modify-write on the underlying ``OrderedDict``) and the
    counters are guarded by a lock.  Fault-injection checkpoints
    (``cache.get`` / ``cache.put``) fire *outside* the lock so an
    injected latency never serializes the whole pool.
    """

    def __init__(self, max_entries: int = 256) -> None:
        """Create a bounded cache.

        Args:
            max_entries: LRU bound; ``0`` disables caching entirely
                (every store is immediately evicted).
        """
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, int], "OptimizationResult"] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(
        self, query: Expr, stats_version: int
    ) -> "OptimizationResult | None":
        """The cached result for ``query``, or ``None`` on a miss.

        Args:
            query: The logical expression being planned (fingerprinted
                structurally, constants included).
            stats_version: :attr:`Statistics.version` the caller plans
                under (or any hashable composed from it, e.g. a
                ``(stats_version, feedback_generation)`` tuple);
                entries stored under another version never hit.

        Both outcomes move the hit/miss counters and fire the
        ``cache.get`` fault/trace checkpoint.
        """
        fault_point("cache", op="get")
        return self._lookup_key((query_fingerprint(query), stats_version))

    def _lookup_key(self, key) -> "OptimizationResult | None":
        """Keyed lookup past the fault checkpoint (shard entry point)."""
        with self._lock:
            found = self._entries.get(key)
            if found is None:
                self.misses += 1
                add_counter("cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            add_counter("cache_hits")
            return found

    def store(
        self, query: Expr, stats_version: int, result: "OptimizationResult"
    ) -> None:
        """Cache ``result`` for ``(query, stats_version)``, LRU-evicting.

        Args:
            query: The logical expression the result was planned for.
            stats_version: Statistics version the plan was costed under.
            result: A full-rung :class:`OptimizationResult` whose
                verification (if any) did not fail.
        """
        fault_point("cache", op="put")
        self._store_key((query_fingerprint(query), stats_version), result)

    def _store_key(self, key, result: "OptimizationResult") -> None:
        """Keyed store past the fault checkpoint (shard entry point)."""
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict_plan(self, plan: Expr) -> int:
        """Drop every entry whose chosen plan is ``plan`` (quarantine).

        Returns the number of entries evicted.
        """
        with self._lock:
            stale = [k for k, v in self._entries.items() if v.best == plan]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict:
        """Machine-readable counters for EXPLAIN / CLI / incidents."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "evictions": self.evictions,
            }


class ShardedPlanCache:
    """A :class:`PlanCache` hash-partitioned into independent shards.

    One global cache lock serializes every planner in the pool on a
    single hot mutex; sharding by fingerprint spreads that contention
    ``shards``-ways while keeping the exact :class:`PlanCache` duck
    type (``lookup`` / ``store`` / ``evict_plan`` / ``clear`` /
    ``counters`` / ``len``), so the session, the service snapshot and
    the metrics sync cannot tell the difference.  Shard choice hashes
    only the *fingerprint* -- every stats version of one query lands in
    one shard, so LRU pressure stays per-query-shape local.

    The same class serves both sides of the process boundary: the
    parent service's shared cache and each worker child's private one
    (children receive warm-up broadcasts on spawn, see
    :mod:`repro.runtime.procpool`).
    """

    def __init__(self, shards: int = 8, max_entries: int = 256) -> None:
        """Create ``shards`` independent LRUs bounding ``max_entries`` total.

        Args:
            shards: Partition count (>= 1); each shard has its own lock.
            max_entries: Total LRU bound, split evenly across shards
                (each shard holds at least one entry).
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        per_shard = max(1, -(-max_entries // shards)) if max_entries else 0
        self.max_entries = max_entries
        self._shards = tuple(PlanCache(per_shard) for _ in range(shards))

    @property
    def shards(self) -> int:
        return len(self._shards)

    def _shard_of(self, fingerprint: str) -> PlanCache:
        return self._shards[int(fingerprint[:8], 16) % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._shards)

    def lookup(
        self, query: Expr, stats_version: int
    ) -> "OptimizationResult | None":
        """Exactly :meth:`PlanCache.lookup`, routed to one shard.

        The fingerprint is computed once and reused for both routing
        and the cache key; the ``cache.get`` fault/trace checkpoint
        fires outside every shard lock, same as the flat cache.
        """
        fault_point("cache", op="get")
        fingerprint = query_fingerprint(query)
        return self._shard_of(fingerprint)._lookup_key(
            (fingerprint, stats_version)
        )

    def store(
        self, query: Expr, stats_version: int, result: "OptimizationResult"
    ) -> None:
        """Exactly :meth:`PlanCache.store`, routed to one shard."""
        fault_point("cache", op="put")
        fingerprint = query_fingerprint(query)
        self._shard_of(fingerprint)._store_key(
            (fingerprint, stats_version), result
        )

    def evict_plan(self, plan: Expr) -> int:
        """Quarantine eviction must scan every shard (plan, not key)."""
        return sum(shard.evict_plan(plan) for shard in self._shards)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def counters(self) -> dict:
        """Aggregated counters plus the shard count."""
        out = {"hits": 0, "misses": 0, "entries": 0, "evictions": 0}
        for shard in self._shards:
            for key, value in shard.counters().items():
                out[key] += value
        out["shards"] = len(self._shards)
        return out
