"""repro -- a reproduction of Goel & Iyer (SIGMOD 1996),
"SQL Query Optimization: Reordering for a General Class of Queries".

Quick tour of the public API:

* :mod:`repro.relalg` -- the relational substrate: relations with
  virtual row ids, NULL semantics, (outer) joins, generalized
  projection, and the paper's **generalized selection** operator.
* :mod:`repro.expr` -- logical query trees, a reference interpreter
  (:func:`repro.expr.evaluate`) and a paper-style pretty printer.
* :mod:`repro.hypergraph` -- query hypergraphs, preserved sets and
  conflict sets (Definitions 3.1/3.3).
* :mod:`repro.core` -- the reordering machinery: identities (1)-(8),
  conjunct deferral, association trees (Definition 3.2), the rewrite
  closure, aggregation push-up, unnesting, simplification.
* :mod:`repro.optimizer` -- cardinality estimation, C_out costing, the
  plan chooser and the paper's baselines.
* :mod:`repro.sql` -- a SQL front-end for the subset the paper uses.
* :mod:`repro.workloads` -- the motivating scenarios as generators.

See ``examples/quickstart.py`` for a five-minute walkthrough.
"""

from repro.expr import Database, evaluate, to_algebra
from repro.core import enumerate_plans, reorder_pipeline
from repro.optimizer import Statistics, optimize

__version__ = "1.0.0"

__all__ = [
    "Database",
    "evaluate",
    "to_algebra",
    "enumerate_plans",
    "reorder_pipeline",
    "Statistics",
    "optimize",
    "__version__",
]
