"""repro -- a reproduction of Goel & Iyer (SIGMOD 1996),
"SQL Query Optimization: Reordering for a General Class of Queries".

Quick tour of the public API:

* :mod:`repro.relalg` -- the relational substrate: relations with
  virtual row ids, NULL semantics, (outer) joins, generalized
  projection, and the paper's **generalized selection** operator.
* :mod:`repro.expr` -- logical query trees, a reference interpreter
  (:func:`repro.expr.evaluate`) and a paper-style pretty printer.
* :mod:`repro.hypergraph` -- query hypergraphs, preserved sets and
  conflict sets (Definitions 3.1/3.3).
* :mod:`repro.core` -- the reordering machinery: identities (1)-(8),
  conjunct deferral, association trees (Definition 3.2), the rewrite
  closure, aggregation push-up, unnesting, simplification.
* :mod:`repro.optimizer` -- cardinality estimation, C_out costing, the
  plan chooser and the paper's baselines.
* :mod:`repro.sql` -- a SQL front-end for the subset the paper uses.
* :mod:`repro.workloads` -- the motivating scenarios as generators.
* :mod:`repro.runtime` -- the resilient runtime: budgets, the
  degradation ladder, differential verification (docs/ROBUSTNESS.md).
* :mod:`repro.errors` -- the unified exception taxonomy rooted at
  :class:`repro.errors.ReproError`.

See ``examples/quickstart.py`` for a five-minute walkthrough.
"""

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    DeadlineExceeded,
    EngineFailure,
    InjectedFault,
    OptimizerInternalError,
    PlanBudgetExceeded,
    QueryCancelled,
    ReproError,
    RowBudgetExceeded,
    UserInputError,
    VerificationFailed,
)
from repro.expr import Database, evaluate, to_algebra
from repro.core import enumerate_plans, reorder_pipeline
from repro.optimizer import Statistics, optimize
from repro.runtime import (
    Budget,
    CancelToken,
    DegradationLevel,
    FaultPlan,
    QueryService,
    QuerySession,
)

# the historical error classes, re-exported so `except repro.X` works
# without hunting down the defining module
from repro.expr.nodes import ExprError
from repro.relalg.schema import SchemaError
from repro.sql.lexer import SqlLexError
from repro.sql.parser import SqlParseError
from repro.sql.translate import SqlTranslationError
from repro.hypergraph.hypergraph import HypergraphError
from repro.core.split import SplitError
from repro.core.theorem1 import Theorem1Error
from repro.core.aggregation import PullUpError
from repro.optimizer.dp import DpError

__version__ = "1.1.0"

__all__ = [
    "Database",
    "evaluate",
    "to_algebra",
    "enumerate_plans",
    "reorder_pipeline",
    "Statistics",
    "optimize",
    "Budget",
    "CancelToken",
    "DegradationLevel",
    "FaultPlan",
    "QueryService",
    "QuerySession",
    # taxonomy roots
    "ReproError",
    "UserInputError",
    "OptimizerInternalError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "PlanBudgetExceeded",
    "RowBudgetExceeded",
    "VerificationFailed",
    "QueryCancelled",
    "AdmissionRejected",
    "InjectedFault",
    "EngineFailure",
    # historical error classes
    "ExprError",
    "SchemaError",
    "SqlLexError",
    "SqlParseError",
    "SqlTranslationError",
    "HypergraphError",
    "SplitError",
    "Theorem1Error",
    "PullUpError",
    "DpError",
    "__version__",
]
