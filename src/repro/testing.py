"""Equivalence-testing utilities for downstream users.

Rewrites over outer joins are notoriously easy to get subtly wrong
(this reproduction found two errata in the paper itself), so the
library ships the randomized checker its own test suite is built on:
evaluate two expressions on many small randomized databases -- NULLs
and empty relations included -- and compare bags of rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.expr.evaluate import Database, evaluate
from repro.expr.nodes import BaseRel, Expr
from repro.relalg import Relation
from repro.relalg.nulls import NULL


@dataclass
class Counterexample:
    """A database on which the two expressions disagree."""

    trial: int
    db: Database
    left_rows: int
    right_rows: int

    def describe(self) -> str:
        lines = [f"counterexample at trial {self.trial}:"]
        for name in self.db.names():
            relation = self.db[name]
            lines.append(f"  {name}: {[tuple(r[a] for a in relation.real) for r in relation]}")
        lines.append(
            f"  left yields {self.left_rows} row(s), right {self.right_rows}"
        )
        return "\n".join(lines)


def random_database_for(
    expr: Expr,
    rng: random.Random,
    max_rows: int = 3,
    null_probability: float = 0.15,
    domain=(1, 2),
) -> Database:
    """A randomized database covering every base relation of ``expr``."""
    db = Database()
    for node in expr.walk():
        if isinstance(node, BaseRel) and node.name not in db:
            rows = []
            for _ in range(rng.randint(0, max_rows)):
                rows.append(
                    tuple(
                        NULL
                        if rng.random() < null_probability
                        else rng.choice(domain)
                        for _ in node.attrs
                    )
                )
            db.add(node.name, Relation.base(node.name, list(node.attrs), rows))
    return db


def check_equivalent(
    left: Expr,
    right: Expr,
    trials: int = 200,
    seed: int = 0,
    max_rows: int = 3,
    null_probability: float = 0.15,
) -> Counterexample | None:
    """Search for a database on which ``left`` and ``right`` differ.

    Returns None when all trials agree; otherwise the first
    counterexample found.  Both expressions must reference the same
    base relations.
    """
    if left.base_names != right.base_names:
        raise ValueError(
            "expressions reference different base relations: "
            f"{sorted(left.base_names)} vs {sorted(right.base_names)}"
        )
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database_for(
            left, rng, max_rows=max_rows, null_probability=null_probability
        )
        a = evaluate(left, db)
        b = evaluate(right, db)
        if not a.same_content(b):
            return Counterexample(trial, db, len(a), len(b))
    return None


def assert_equivalent(left: Expr, right: Expr, **kwargs) -> None:
    """Raise AssertionError with a readable counterexample on mismatch."""
    witness = check_equivalent(left, right, **kwargs)
    if witness is not None:
        raise AssertionError(witness.describe())
