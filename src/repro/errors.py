"""The unified exception taxonomy.

Every error the library raises descends from :class:`ReproError`, so a
caller (and the resilient runtime in :mod:`repro.runtime`) can tell the
three failure families apart with one ``except`` clause each:

* :class:`UserInputError` -- the *query or data* is at fault: SQL that
  does not lex/parse/translate, schemas that do not line up, malformed
  expression trees.  Retrying will not help; the input must change.
* :class:`OptimizerInternalError` -- the *optimizer* declined or
  failed: a rewrite premise does not hold, a query shape is outside an
  algorithm's scope.  The query is fine; executing it as written (or
  via a simpler strategy) still works, which is exactly what the
  runtime's degradation ladder does.
* :class:`BudgetExceeded` -- nothing is wrong except that a resource
  budget (wall-clock deadline, plan count, row count) ran out.  The
  typed subclasses say which dimension, and carry ``limit``/``spent``
  so incident records stay structured.

The historical error classes (``SqlParseError``, ``DpError``, ...)
keep their ``ValueError`` lineage for backward compatibility -- code
that caught ``ValueError`` still works -- but now also descend from
:class:`ReproError` through the two family roots above.

This module must stay import-light: it is imported by leaf modules
(``relalg.schema``, ``sql.lexer``, ``expr.nodes``) and must never
import anything from :mod:`repro` itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of every exception this library raises deliberately."""


class UserInputError(ReproError, ValueError):
    """The query or data is malformed; retrying cannot succeed."""


class OptimizerInternalError(ReproError, ValueError):
    """An optimizer component declined or failed; the query itself is
    fine and can still be executed by a simpler strategy."""


class BudgetExceeded(ReproError):
    """A resource budget ran out.

    ``dimension`` names the exhausted resource, ``limit`` the budgeted
    amount and ``spent`` the amount consumed when the check fired.
    """

    dimension = "budget"

    def __init__(self, limit: float, spent: float, where: str = "") -> None:
        self.limit = limit
        self.spent = spent
        self.where = where
        suffix = f" (in {where})" if where else ""
        super().__init__(
            f"{self.dimension} budget exceeded: spent {spent:g} of {limit:g}{suffix}"
        )

    def to_dict(self) -> dict:
        """Structured form for incident records."""
        return {
            "error": type(self).__name__,
            "dimension": self.dimension,
            "limit": self.limit,
            "spent": self.spent,
            "where": self.where,
        }


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed (limit/spent in milliseconds)."""

    dimension = "deadline_ms"


class PlanBudgetExceeded(BudgetExceeded):
    """The enumerator produced more plans than the budget allows."""

    dimension = "plans"


class RowBudgetExceeded(BudgetExceeded):
    """Execution materialized more intermediate rows than allowed."""

    dimension = "rows"


class ReplanTriggered(ReproError):
    """An operator's observed cardinality blew past its estimate.

    Internal control flow for adaptive re-optimization: raised at an
    engine operator boundary by the cardinality monitor
    (:mod:`repro.runtime.feedback`) and caught by the session's
    adaptive executor, which re-costs the query with the observed
    counts and resumes from the materialized intermediates.
    Deliberately *not* a :class:`BudgetExceeded` or
    :class:`OptimizerInternalError`: the degradation ladder must never
    absorb it as a stage failure -- a triggered re-plan is a decision,
    not a defect.
    """

    def __init__(
        self, site: str, est: float, actual: float, threshold: float
    ) -> None:
        self.site = site
        self.est = est
        self.actual = actual
        self.threshold = threshold
        super().__init__(
            f"replan triggered at {site}: actual {actual:g} rows > "
            f"{threshold:g}x estimated {est:g}"
        )

    def to_dict(self) -> dict:
        """Structured form for incident records."""
        return {
            "error": type(self).__name__,
            "site": self.site,
            "est": self.est,
            "actual": self.actual,
            "threshold": self.threshold,
        }


class VerificationFailed(ReproError):
    """Differential verification found a plan/original mismatch.

    The resilient runtime normally *contains* this (quarantine + fall
    back to the original plan) rather than letting it propagate; it
    escapes only when containment is impossible.
    """


class QueryCancelled(ReproError):
    """The caller cancelled the query via its :class:`CancelToken`.

    Deliberately *not* a :class:`BudgetExceeded`: the degradation
    ladder must not catch it and keep trying cheaper strategies -- a
    cancelled query should stop, not degrade.
    """

    def __init__(self, where: str = "") -> None:
        self.where = where
        suffix = f" (in {where})" if where else ""
        super().__init__(f"query cancelled{suffix}")


class AdmissionRejected(ReproError):
    """The service shed this query instead of queueing it.

    Raised at submission time when the admission queue is full, the
    service is closed, or the service-level budget is exhausted --
    bounded queues over unbounded backlogs.
    """

    def __init__(self, reason: str, queue_depth: int | None = None) -> None:
        self.reason = reason
        self.queue_depth = queue_depth
        detail = f" (queue depth {queue_depth})" if queue_depth is not None else ""
        super().__init__(f"admission rejected: {reason}{detail}")


class InjectedFault(ReproError):
    """A deterministic fault-injection point fired (testing only).

    Deliberately *not* an :class:`OptimizerInternalError`: the session
    ladder must not absorb it -- an injected engine crash should
    surface to the service layer, where the circuit breaker and
    engine-fallback logic are the machinery under test.
    """

    def __init__(self, site: str, spec: str = "") -> None:
        self.site = site
        self.spec = spec
        suffix = f" [{spec}]" if spec else ""
        super().__init__(f"injected fault at {site}{suffix}")


class WorkerCrashed(ReproError):
    """A worker process died while executing this query.

    Raised by the process-isolated service after retries are exhausted
    (``retries``), or immediately when the query's fingerprint has been
    quarantined as poisoned (``poisoned=True``) because it killed
    multiple workers in a row.  ``reason`` records how the worker died
    (``"exit:-9"``, ``"hang"``, ``"deadline"``, ``"pipe-closed"``).
    """

    def __init__(
        self,
        reason: str,
        retries: int = 0,
        poisoned: bool = False,
        fingerprint: str = "",
    ) -> None:
        self.reason = reason
        self.retries = retries
        self.poisoned = poisoned
        self.fingerprint = fingerprint
        if poisoned:
            detail = f"query quarantined as poisoned ({reason})"
        else:
            detail = f"worker died ({reason}) after {retries} retries"
        super().__init__(detail)

    def to_dict(self) -> dict:
        """Structured form for incident records."""
        return {
            "error": type(self).__name__,
            "reason": self.reason,
            "retries": self.retries,
            "poisoned": self.poisoned,
            "fingerprint": self.fingerprint,
        }


class WorkerPoolDegraded(AdmissionRejected):
    """The worker pool is shedding load because restarts are churning.

    Every worker slot is in the flapping state (too many restarts
    inside the flap window), so instead of queueing work that would
    only feed the churn, the service fails fast with this typed error.
    An :class:`AdmissionRejected` subclass so callers that already shed
    on admission pressure handle it for free.
    """


class EngineFailure(ReproError):
    """Every candidate engine failed to answer the query.

    Wraps the last underlying error so even an untyped engine bug
    escapes the service as a member of the taxonomy.
    """

    def __init__(self, attempts: list[tuple[str, str]] | None = None) -> None:
        self.attempts = list(attempts or [])
        detail = "; ".join(f"{engine}: {error}" for engine, error in self.attempts)
        super().__init__(
            "all engines failed" + (f" ({detail})" if detail else "")
        )


__all__ = [
    "ReproError",
    "UserInputError",
    "OptimizerInternalError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "PlanBudgetExceeded",
    "RowBudgetExceeded",
    "ReplanTriggered",
    "VerificationFailed",
    "QueryCancelled",
    "AdmissionRejected",
    "InjectedFault",
    "WorkerCrashed",
    "WorkerPoolDegraded",
    "EngineFailure",
]
