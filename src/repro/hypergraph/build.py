"""Build the query hypergraph from an expression tree.

Each binary join node contributes one hyperedge: the hypernodes are
the base relations its predicate references on each operand side
(Example 3.2 -- predicate ``p2,4 ∧ p2,5`` yields ``⟨{r2},{r4,r5}⟩``).
Right outer joins are normalized to directed (left) orientation.
Cartesian products (predicate TRUE) connect the full operand relation
sets so connectivity is preserved.
"""

from __future__ import annotations

from repro.expr.nodes import Expr, GenSelect, GroupBy, Join, JoinKind, Project, Select, SemiJoin
from repro.expr.predicates import TRUE
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, HypergraphError
from repro.runtime.tracing import add_counter


def hypergraph_of(expr: Expr, edge_prefix: str = "h") -> Hypergraph:
    """The hypergraph of the join structure of ``expr``.

    Unary nodes (Select / Project / GroupBy / GenSelect) are
    transparent: the hypergraph describes only the binary join
    skeleton, which is what the reordering machinery works over.
    """
    # a counter, not a span: builds happen per rewrite-candidate inside
    # enumeration -- thousands per query -- and would drown the trace
    add_counter("hypergraph_builds")
    edges: list[Hyperedge] = []
    counter = [0]

    def visit(node: Expr) -> frozenset[str]:
        if isinstance(node, (Select, Project, GroupBy, GenSelect)):
            return visit(node.children()[0])
        if isinstance(node, SemiJoin):
            # the right side only filters; it is invisible to reordering
            return visit(node.left)
        if isinstance(node, Join):
            left = visit(node.left)
            right = visit(node.right)
            counter[0] += 1
            eid = f"{edge_prefix}{counter[0]}"
            if node.predicate is TRUE:
                hn_left, hn_right = left, right
            else:
                refs = node.predicate_relations(node.predicate)
                hn_left = refs & left
                hn_right = refs & right
                if not hn_left or not hn_right:
                    raise HypergraphError(
                        f"join predicate {node.predicate} does not reference "
                        "both operand sides"
                    )
            kind = node.kind
            if kind is JoinKind.RIGHT:
                kind = JoinKind.LEFT
                hn_left, hn_right = hn_right, hn_left
            edges.append(Hyperedge(eid, hn_left, hn_right, kind, node.predicate))
            return left | right
        # a leaf (BaseRel) or any node without children to recurse into
        children = node.children()
        if not children:
            return node.base_names
        return visit(children[0])

    nodes = visit(expr)
    return Hypergraph(nodes, edges)
