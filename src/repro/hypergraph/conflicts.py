"""Preserved sets and conflict sets (Section 3 / Definition 3.3).

Every (bi-)directed hyperedge disconnects a simple query's hypergraph
into exactly two connected components (Lemma 1 of BHAR95a), which
grounds the following:

* ``pres(h)`` -- for a directed edge, the relations "to the left": the
  component containing the preserved hypernode once ``h`` is removed.
* ``pres_sides(h)`` -- for a bi-directed edge, both components.
* ``pres_away(h, h0)`` -- the relations preserved by ``h`` *away from*
  edge ``h0``: the component of ``h``-minus that does not contain
  ``h0``; this is the preserved argument Theorem 1 attaches for each
  conflicting outer join.
* ``ccoj(h0)`` -- the closest conflicting outer join of a join edge:
  walk from ``h0`` over undirected edges only; the first directed edge
  whose null-supplied hypernode is reached conflicts (the join cannot
  move below it freely).
* ``conf(h0)`` -- Definition 3.3.  For the path patterns we use the
  component characterization validated empirically (see DESIGN.md):
  a bi-directed edge ``h`` conflicts with ``h0`` when it lies in the
  null-side component of ``h0`` but is not contained in ``h0``'s
  null hypernode (an edge wholly inside the hypernode is necessarily
  evaluated below ``h0`` and is untouched by deferring a conjunct).
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, HypergraphError


# The analyses below are pure functions of (graph, edge) and are
# called repeatedly per edge during Theorem-1 rewrites and plan
# enumeration, so each memoizes its result in the graph's per-instance
# ``_analysis`` dict (hypergraphs are immutable).


def _two_components(
    graph: Hypergraph, edge: Hyperedge
) -> tuple[frozenset[str], frozenset[str]]:
    """Components of ``graph`` minus ``edge``: (left side, right side)."""
    key = ("two_comps", edge.eid)
    cached = graph._analysis.get(key)
    if cached is not None:
        return cached
    comps = graph.components(removed=frozenset((edge.eid,)))
    if len(comps) != 2:
        raise HypergraphError(
            f"removing {edge.eid!r} yields {len(comps)} components; "
            "the query is not simple (Lemma 1 of BHAR95a requires 2)"
        )
    first, second = comps
    if edge.left <= first and edge.right <= second:
        out = (first, second)
    elif edge.left <= second and edge.right <= first:
        out = (second, first)
    else:
        raise HypergraphError(
            f"hypernodes of {edge.eid!r} straddle the components; "
            "the query is not simple"
        )
    graph._analysis[key] = out
    return out


def pres(graph: Hypergraph, edge: Hyperedge) -> frozenset[str]:
    """Preserved set of a directed hyperedge (the 'left' component)."""
    if not edge.directed:
        raise HypergraphError(f"pres() requires a directed edge, got {edge.eid!r}")
    left, _ = _two_components(graph, edge)
    return left


def pres_sides(
    graph: Hypergraph, edge: Hyperedge
) -> tuple[frozenset[str], frozenset[str]]:
    """Both preserved components of a bi-directed hyperedge."""
    if not edge.bidirected:
        raise HypergraphError(
            f"pres_sides() requires a bi-directed edge, got {edge.eid!r}"
        )
    return _two_components(graph, edge)


def pres_away(
    graph: Hypergraph, edge: Hyperedge, from_edge: Hyperedge
) -> frozenset[str]:
    """Relations preserved by ``edge`` away from ``from_edge``.

    For a bi-directed edge: the component (of graph minus ``edge``)
    not containing ``from_edge``.  For a directed edge: ``pres(edge)``
    (the paper's modified definition).
    """
    if edge.directed:
        return pres(graph, edge)
    left, right = _two_components(graph, edge)
    if from_edge.nodes <= left:
        return right
    if from_edge.nodes <= right:
        return left
    raise HypergraphError(
        f"{from_edge.eid!r} straddles both sides of {edge.eid!r}"
    )


def ccoj(graph: Hypergraph, edge: Hyperedge) -> tuple[Hyperedge, ...]:
    """Closest conflicting outer joins of a join (undirected) edge.

    Directed edges whose *null-supplied* component (everything beyond
    the arrow head) contains ``edge``: the join sits under the outer
    join's null side and cannot be hoisted above it.  The paper notes
    at most one such closest edge exists; we return the closest by
    following the nesting.
    """
    if not edge.undirected:
        raise HypergraphError(f"ccoj() requires a join edge, got {edge.eid!r}")
    key = ("ccoj", edge.eid)
    cached = graph._analysis.get(key)
    if cached is not None:
        return cached
    covering: list[Hyperedge] = []
    for candidate in graph.directed_edges:
        _, null_side = _two_components(graph, candidate)
        if edge.nodes <= null_side:
            covering.append(candidate)
    if covering:
        # the closest is the one whose null-side component is smallest
        sizes = {
            c.eid: len(_two_components(graph, c)[1]) for c in covering
        }
        result = (min(covering, key=lambda c: sizes[c.eid]),)
    else:
        result = ()
    graph._analysis[key] = result
    return result


def conf(graph: Hypergraph, edge: Hyperedge) -> tuple[Hyperedge, ...]:
    """The hypergraph conflict set ``conf(h0)`` -- Definition 3.3.

    * bi-directed ``h0``: the empty set;
    * directed ``h0``: bi-directed edges in the null-side component of
      ``h0`` that are not wholly inside ``h0``'s null hypernode;
    * undirected ``h0`` with ``ccoj(h0) = ∅``: bi-directed edges not
      wholly inside either hypernode (same component test against the
      whole graph);
    * undirected ``h0`` with ``ccoj(h0) = {h}``: ``{h} ∪ conf(h)``.
    """
    if edge.bidirected:
        return ()
    key = ("conf", edge.eid)
    cached = graph._analysis.get(key)
    if cached is not None:
        return cached
    if edge.directed:
        _, null_side = _two_components(graph, edge)
        out = []
        for candidate in graph.bidirected_edges:
            if candidate.eid == edge.eid:
                continue
            if candidate.nodes <= null_side and not candidate.nodes <= edge.right:
                out.append(candidate)
        result = tuple(out)
    else:
        closest = ccoj(graph, edge)
        if closest:
            h = closest[0]
            rest = conf(graph, h)
            result = (h,) + tuple(r for r in rest if r.eid != h.eid)
        else:
            result = tuple(
                candidate
                for candidate in graph.bidirected_edges
                if not (
                    candidate.nodes <= edge.left
                    or candidate.nodes <= edge.right
                )
            )
    graph._analysis[key] = result
    return result
