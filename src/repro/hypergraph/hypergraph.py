"""Query hypergraphs per Definition 3.1.

A hypergraph is a pair ``(V, E)`` where nodes are relation names and a
hyperedge ``⟨V1, V2⟩`` connects two hypernodes (non-empty node sets).
A hyperedge is *directed* when it represents an outer join (drawn from
the preserved hypernode toward the null-supplied one), *bi-directed*
for a full outer join, and undirected for an inner join.

Connectivity follows the induced-sub-hypergraph semantics of footnote
6: a hyperedge may be broken up, so within a node subset ``S`` an edge
``⟨V1, V2⟩`` links ``V1 ∩ S`` with ``V2 ∩ S`` whenever both are
non-empty.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.expr.nodes import JoinKind
from repro.expr.predicates import Predicate, TRUE


class HypergraphError(OptimizerInternalError):
    """Raised on malformed hypergraphs or invalid edge queries."""


@dataclass(frozen=True)
class Hyperedge:
    """A hyperedge ``⟨left, right⟩`` carrying its join kind and predicate.

    For directed edges (outer joins) ``left`` is the preserved
    hypernode and ``right`` the null-supplied one; right outer joins
    are normalized to this orientation at construction.
    """

    eid: str
    left: frozenset[str]
    right: frozenset[str]
    kind: JoinKind
    predicate: Predicate = TRUE

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise HypergraphError(f"hyperedge {self.eid!r} has an empty hypernode")
        if self.left & self.right:
            raise HypergraphError(f"hyperedge {self.eid!r} hypernodes overlap")
        if self.kind is JoinKind.RIGHT:
            raise HypergraphError(
                "normalize right outer joins to LEFT (swap hypernodes)"
            )

    @property
    def nodes(self) -> frozenset[str]:
        return self.left | self.right

    @property
    def directed(self) -> bool:
        return self.kind is JoinKind.LEFT

    @property
    def bidirected(self) -> bool:
        return self.kind is JoinKind.FULL

    @property
    def undirected(self) -> bool:
        return self.kind is JoinKind.INNER

    @property
    def simple(self) -> bool:
        """An edge between exactly two relations (Section 1.2)."""
        return len(self.left) == 1 and len(self.right) == 1

    @property
    def complex(self) -> bool:
        return len(self.nodes) > 2

    def __str__(self) -> str:
        arrow = {
            JoinKind.INNER: "--",
            JoinKind.LEFT: "->",
            JoinKind.FULL: "<->",
        }[self.kind]
        fmt = lambda side: "{" + ",".join(sorted(side)) + "}"  # noqa: E731
        return f"{self.eid}: {fmt(self.left)} {arrow} {fmt(self.right)}"


class Hypergraph:
    """An immutable hypergraph ``H = (V, E)``."""

    def __init__(self, nodes: Iterable[str], edges: Iterable[Hyperedge]) -> None:
        self._nodes = frozenset(nodes)
        self._edges = tuple(edges)
        seen: set[str] = set()
        for edge in self._edges:
            if edge.eid in seen:
                raise HypergraphError(f"duplicate hyperedge id {edge.eid!r}")
            seen.add(edge.eid)
            stray = edge.nodes - self._nodes
            if stray:
                raise HypergraphError(
                    f"hyperedge {edge.eid!r} references unknown nodes {sorted(stray)}"
                )

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes

    @property
    def edges(self) -> tuple[Hyperedge, ...]:
        return self._edges

    def edge(self, eid: str) -> Hyperedge:
        for edge in self._edges:
            if edge.eid == eid:
                return edge
        raise HypergraphError(f"no hyperedge {eid!r}")

    def __iter__(self) -> Iterator[Hyperedge]:
        return iter(self._edges)

    def __repr__(self) -> str:
        return f"Hypergraph(nodes={sorted(self._nodes)}, edges={len(self._edges)})"

    def to_text(self) -> str:
        lines = ["nodes: " + ", ".join(sorted(self._nodes))]
        lines += [str(e) for e in self._edges]
        return "\n".join(lines)

    @cached_property
    def directed_edges(self) -> tuple[Hyperedge, ...]:
        return tuple(e for e in self._edges if e.directed)

    @cached_property
    def bidirected_edges(self) -> tuple[Hyperedge, ...]:
        return tuple(e for e in self._edges if e.bidirected)

    # ---- connectivity ----

    def components(
        self,
        within: frozenset[str] | None = None,
        removed: frozenset[str] = frozenset(),
    ) -> list[frozenset[str]]:
        """Connected components of the (induced) hypergraph.

        ``within`` restricts to a node subset (induced semantics of
        footnote 6: broken-up sub-edges connect the intersections);
        ``removed`` names hyperedge ids to ignore.
        """
        universe = self._nodes if within is None else frozenset(within)
        parent = {n: n for n in universe}

        def find(n: str) -> str:
            while parent[n] != n:
                parent[n] = parent[parent[n]]
                n = parent[n]
            return n

        def link(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for edge in self._edges:
            if edge.eid in removed:
                continue
            left = edge.left & universe
            right = edge.right & universe
            if not left or not right:
                continue
            anchor = next(iter(left))
            for n in left | right:
                link(anchor, n)
        groups: dict[str, set[str]] = {}
        for n in universe:
            groups.setdefault(find(n), set()).add(n)
        return [frozenset(g) for g in groups.values()]

    def is_connected(
        self,
        within: frozenset[str] | None = None,
        removed: frozenset[str] = frozenset(),
    ) -> bool:
        comps = self.components(within=within, removed=removed)
        return len(comps) <= 1

    def component_of(
        self,
        seed: Iterable[str],
        removed: frozenset[str] = frozenset(),
    ) -> frozenset[str]:
        """The connected component containing the ``seed`` nodes.

        Raises if the seed nodes do not all fall in one component.
        """
        seed = frozenset(seed)
        comps = self.components(removed=removed)
        holding = [c for c in comps if c & seed]
        if len(holding) != 1:
            raise HypergraphError(
                f"seed nodes {sorted(seed)} span {len(holding)} components"
            )
        return holding[0]

    def induced(self, subset: Iterable[str]) -> "Hypergraph":
        """The induced sub-hypergraph on ``subset`` (footnote 6).

        Each edge is restricted to the subset; edges losing a whole
        hypernode disappear.
        """
        subset = frozenset(subset)
        edges = []
        for edge in self._edges:
            left = edge.left & subset
            right = edge.right & subset
            if left and right:
                edges.append(
                    Hyperedge(edge.eid, left, right, edge.kind, edge.predicate)
                )
        return Hypergraph(subset, edges)

    def crossing_edges(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[tuple[Hyperedge, frozenset[str], frozenset[str]], ...]:
        """Edges connecting ``left`` with ``right`` (Definition 3.2 item 3).

        Returns ``(edge, left_part, right_part)`` triples where the
        parts are the hypernode intersections with each side, oriented
        so ``left_part`` is on ``left``.  An edge whose parts equal its
        hypernodes is used whole; smaller parts mean the edge is
        *broken up* (a hypernode may straddle both sides -- the paper's
        Q4 tree ``(r1.((r2.r4).(r5.r3)))`` uses sub-edge ``⟨{r2},{r5}⟩``
        of ``h2 = ⟨{r2},{r4,r5}⟩`` with r4 on the r2 side).  Both
        orientations are reported when both cross.
        """
        out = []
        for edge in self._edges:
            for a, b in ((edge.left, edge.right), (edge.right, edge.left)):
                la, rb = a & left, b & right
                if la and rb:
                    out.append((edge, la, rb))
        return tuple(out)
