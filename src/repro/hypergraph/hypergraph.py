"""Query hypergraphs per Definition 3.1.

A hypergraph is a pair ``(V, E)`` where nodes are relation names and a
hyperedge ``⟨V1, V2⟩`` connects two hypernodes (non-empty node sets).
A hyperedge is *directed* when it represents an outer join (drawn from
the preserved hypernode toward the null-supplied one), *bi-directed*
for a full outer join, and undirected for an inner join.

Connectivity follows the induced-sub-hypergraph semantics of footnote
6: a hyperedge may be broken up, so within a node subset ``S`` an edge
``⟨V1, V2⟩`` links ``V1 ∩ S`` with ``V2 ∩ S`` whenever both are
non-empty.
"""

from __future__ import annotations

from repro.errors import OptimizerInternalError

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

from repro.expr.nodes import JoinKind
from repro.expr.predicates import Predicate, TRUE


class HypergraphError(OptimizerInternalError):
    """Raised on malformed hypergraphs or invalid edge queries."""


@dataclass(frozen=True)
class Hyperedge:
    """A hyperedge ``⟨left, right⟩`` carrying its join kind and predicate.

    For directed edges (outer joins) ``left`` is the preserved
    hypernode and ``right`` the null-supplied one; right outer joins
    are normalized to this orientation at construction.
    """

    eid: str
    left: frozenset[str]
    right: frozenset[str]
    kind: JoinKind
    predicate: Predicate = TRUE

    def __post_init__(self) -> None:
        if not self.left or not self.right:
            raise HypergraphError(f"hyperedge {self.eid!r} has an empty hypernode")
        if self.left & self.right:
            raise HypergraphError(f"hyperedge {self.eid!r} hypernodes overlap")
        if self.kind is JoinKind.RIGHT:
            raise HypergraphError(
                "normalize right outer joins to LEFT (swap hypernodes)"
            )

    @property
    def nodes(self) -> frozenset[str]:
        return self.left | self.right

    @property
    def directed(self) -> bool:
        return self.kind is JoinKind.LEFT

    @property
    def bidirected(self) -> bool:
        return self.kind is JoinKind.FULL

    @property
    def undirected(self) -> bool:
        return self.kind is JoinKind.INNER

    @property
    def simple(self) -> bool:
        """An edge between exactly two relations (Section 1.2)."""
        return len(self.left) == 1 and len(self.right) == 1

    @property
    def complex(self) -> bool:
        return len(self.nodes) > 2

    def __str__(self) -> str:
        arrow = {
            JoinKind.INNER: "--",
            JoinKind.LEFT: "->",
            JoinKind.FULL: "<->",
        }[self.kind]
        fmt = lambda side: "{" + ",".join(sorted(side)) + "}"  # noqa: E731
        return f"{self.eid}: {fmt(self.left)} {arrow} {fmt(self.right)}"


class Hypergraph:
    """An immutable hypergraph ``H = (V, E)``.

    Alongside the name-set API, every graph carries a *node-index
    layer*: nodes get bit positions (sorted-name order) and each edge a
    pair of int masks, so connectivity, induced-subgraph reasoning and
    the Theorem-1 analyses run on machine integers.  Enumeration-grade
    queries (``is_connected`` over subsets, crossing tests, the
    conflict analyses in :mod:`repro.hypergraph.conflicts`) are
    memoized per graph -- sound because the graph is immutable.
    """

    def __init__(self, nodes: Iterable[str], edges: Iterable[Hyperedge]) -> None:
        self._nodes = frozenset(nodes)
        self._edges = tuple(edges)
        seen: set[str] = set()
        for edge in self._edges:
            if edge.eid in seen:
                raise HypergraphError(f"duplicate hyperedge id {edge.eid!r}")
            seen.add(edge.eid)
            stray = edge.nodes - self._nodes
            if stray:
                raise HypergraphError(
                    f"hyperedge {edge.eid!r} references unknown nodes {sorted(stray)}"
                )
        # memo for per-graph analyses (connectivity per subset mask,
        # Definition 3.3 sets per edge); see the class docstring
        self._analysis: dict = {}

    @property
    def nodes(self) -> frozenset[str]:
        return self._nodes

    @property
    def edges(self) -> tuple[Hyperedge, ...]:
        return self._edges

    def edge(self, eid: str) -> Hyperedge:
        for edge in self._edges:
            if edge.eid == eid:
                return edge
        raise HypergraphError(f"no hyperedge {eid!r}")

    def __iter__(self) -> Iterator[Hyperedge]:
        return iter(self._edges)

    def __repr__(self) -> str:
        return f"Hypergraph(nodes={sorted(self._nodes)}, edges={len(self._edges)})"

    def to_text(self) -> str:
        lines = ["nodes: " + ", ".join(sorted(self._nodes))]
        lines += [str(e) for e in self._edges]
        return "\n".join(lines)

    @cached_property
    def directed_edges(self) -> tuple[Hyperedge, ...]:
        return tuple(e for e in self._edges if e.directed)

    @cached_property
    def bidirected_edges(self) -> tuple[Hyperedge, ...]:
        return tuple(e for e in self._edges if e.bidirected)

    # ---- node-index (bitset) layer ----

    @cached_property
    def node_order(self) -> tuple[str, ...]:
        """Node names in bit order (sorted; bit i = node_order[i])."""
        return tuple(sorted(self._nodes))

    @cached_property
    def node_bit(self) -> dict[str, int]:
        """Name -> single-bit mask."""
        return {name: 1 << i for i, name in enumerate(self.node_order)}

    @cached_property
    def all_mask(self) -> int:
        return (1 << len(self.node_order)) - 1

    def mask_of(self, names: Iterable[str]) -> int:
        """The bitmask of a set of node names."""
        bit = self.node_bit
        mask = 0
        for name in names:
            mask |= bit[name]
        return mask

    def names_of(self, mask: int) -> frozenset[str]:
        """The node names of a bitmask."""
        order = self.node_order
        out = []
        while mask:
            low = mask & -mask
            out.append(order[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    @cached_property
    def edge_masks(self) -> tuple[tuple[Hyperedge, int, int], ...]:
        """Each edge with its (left hypernode, right hypernode) masks."""
        return tuple(
            (e, self.mask_of(e.left), self.mask_of(e.right)) for e in self._edges
        )

    def _component_masks(self, universe: int, removed: frozenset[str]) -> list[int]:
        """Connected components (as masks) under footnote-6 semantics.

        An edge restricted to ``universe`` links its surviving left
        part with its surviving right part (broken-up sub-edges).
        Components come out ordered by their lowest bit.
        """
        spans = [
            (left | right) & universe
            for edge, left, right in self.edge_masks
            if edge.eid not in removed
            and left & universe
            and right & universe
        ]
        comps: list[int] = []
        remaining = universe
        while remaining:
            comp = remaining & -remaining
            grown = True
            while grown:
                grown = False
                for span in spans:
                    if span & comp and span & ~comp:
                        comp |= span
                        grown = True
            comp &= universe
            comps.append(comp)
            remaining &= ~comp
        return comps

    def is_connected_mask(
        self, universe: int, removed: frozenset[str] = frozenset()
    ) -> bool:
        """Mask-level :meth:`is_connected`; memoized per graph."""
        key = ("conn", universe, removed)
        cached = self._analysis.get(key)
        if cached is None:
            cached = len(self._component_masks(universe, removed)) <= 1
            self._analysis[key] = cached
        return cached

    def has_crossing_mask(self, left: int, right: int) -> bool:
        """Does any (possibly broken-up) edge connect the two masks?"""
        for _, el, er in self.edge_masks:
            if (el & left and er & right) or (el & right and er & left):
                return True
        return False

    # ---- connectivity ----

    def components(
        self,
        within: frozenset[str] | None = None,
        removed: frozenset[str] = frozenset(),
    ) -> list[frozenset[str]]:
        """Connected components of the (induced) hypergraph.

        ``within`` restricts to a node subset (induced semantics of
        footnote 6: broken-up sub-edges connect the intersections);
        ``removed`` names hyperedge ids to ignore.
        """
        universe = self.all_mask if within is None else self.mask_of(within)
        return [self.names_of(m) for m in self._component_masks(universe, removed)]

    def is_connected(
        self,
        within: frozenset[str] | None = None,
        removed: frozenset[str] = frozenset(),
    ) -> bool:
        universe = self.all_mask if within is None else self.mask_of(within)
        return self.is_connected_mask(universe, removed)

    def component_of(
        self,
        seed: Iterable[str],
        removed: frozenset[str] = frozenset(),
    ) -> frozenset[str]:
        """The connected component containing the ``seed`` nodes.

        Raises if the seed nodes do not all fall in one component.
        """
        seed = frozenset(seed)
        comps = self.components(removed=removed)
        holding = [c for c in comps if c & seed]
        if len(holding) != 1:
            raise HypergraphError(
                f"seed nodes {sorted(seed)} span {len(holding)} components"
            )
        return holding[0]

    def induced(self, subset: Iterable[str]) -> "Hypergraph":
        """The induced sub-hypergraph on ``subset`` (footnote 6).

        Each edge is restricted to the subset; edges losing a whole
        hypernode disappear.
        """
        subset = frozenset(subset)
        edges = []
        for edge in self._edges:
            left = edge.left & subset
            right = edge.right & subset
            if left and right:
                edges.append(
                    Hyperedge(edge.eid, left, right, edge.kind, edge.predicate)
                )
        return Hypergraph(subset, edges)

    def crossing_edges(
        self, left: frozenset[str], right: frozenset[str]
    ) -> tuple[tuple[Hyperedge, frozenset[str], frozenset[str]], ...]:
        """Edges connecting ``left`` with ``right`` (Definition 3.2 item 3).

        Returns ``(edge, left_part, right_part)`` triples where the
        parts are the hypernode intersections with each side, oriented
        so ``left_part`` is on ``left``.  An edge whose parts equal its
        hypernodes is used whole; smaller parts mean the edge is
        *broken up* (a hypernode may straddle both sides -- the paper's
        Q4 tree ``(r1.((r2.r4).(r5.r3)))`` uses sub-edge ``⟨{r2},{r5}⟩``
        of ``h2 = ⟨{r2},{r4,r5}⟩`` with r4 on the r2 side).  Both
        orientations are reported when both cross.
        """
        out = []
        for edge in self._edges:
            for a, b in ((edge.left, edge.right), (edge.right, edge.left)):
                la, rb = a & left, b & right
                if la and rb:
                    out.append((edge, la, rb))
        return tuple(out)
