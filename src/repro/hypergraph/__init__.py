"""Query hypergraphs (Definition 3.1) and conflict machinery (Definition 3.3)."""

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph, HypergraphError
from repro.hypergraph.build import hypergraph_of
from repro.hypergraph.conflicts import (
    ccoj,
    conf,
    pres,
    pres_away,
    pres_sides,
)

__all__ = [
    "Hyperedge",
    "Hypergraph",
    "HypergraphError",
    "hypergraph_of",
    "ccoj",
    "conf",
    "pres",
    "pres_away",
    "pres_sides",
]
