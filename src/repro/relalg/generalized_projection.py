"""Generalized projection π_{X, f(Y)} (GROUP BY with aggregates).

Per Section 1.2 (after GUPT95): subscript ``X`` is the grouping
attribute list; ``f(Y)`` the aggregate columns.  With no aggregates
the GP is ``SELECT DISTINCT X``.  Each output group receives a fresh
virtual identifier so the result can participate in further joins and
in generalized-selection compensation (the paper's push-up of
aggregations relies on this).

SQL GROUP BY treats NULL as a single grouping value, and so do we.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.relalg.aggregates import AggregateSpec
from repro.relalg.relation import Relation
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError

_gp_counter = itertools.count()

_COUNT_STAR_SENTINEL = object()


def generalized_projection(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Iterable[AggregateSpec] = (),
    name: str | None = None,
) -> Relation:
    """π_{X, f(Y)}(r): group ``relation`` by ``group_by``, aggregate.

    ``name`` labels the output's virtual attribute; a unique one is
    generated if omitted.  Grouping keys may include virtual
    attributes of the input (the paper's ``π_{V3 r3 r1' r2', ...}``
    groups on virtual attributes during aggregation push-up).
    """
    aggregates = tuple(aggregates)
    all_attrs = relation.all_attrs.as_set()
    for attr in group_by:
        if attr not in all_attrs:
            raise SchemaError(f"group-by attribute {attr!r} not in input")
    for spec in aggregates:
        if spec.arg is not None and spec.arg not in all_attrs:
            raise SchemaError(f"aggregate argument {spec.arg!r} not in input")
        if spec.output in group_by:
            raise SchemaError(
                f"aggregate output {spec.output!r} collides with a group key"
            )

    real_keys = [a for a in group_by if a in relation.real]
    virtual_keys = [a for a in group_by if a in relation.virtual]
    out_real = Schema(real_keys + [spec.output for spec in aggregates])

    if name is None:
        name = f"gp{next(_gp_counter)}"
    vid = f"#{name}"
    out_virtual = Schema(virtual_keys + [vid])

    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in relation:
        key = row.values_tuple(group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    if not group_by and not groups:
        # SQL: a global aggregate over an empty input yields one row
        # (COUNT = 0, other aggregates NULL)
        groups[()] = []
        order.append(())

    out_rows = []
    for i, key in enumerate(order):
        members = groups[key]
        data = dict(zip(group_by, key))
        for spec in aggregates:
            if spec.arg is None:
                values: Iterable = (_COUNT_STAR_SENTINEL for _ in members)
            else:
                values = (m[spec.arg] for m in members)
            data[spec.output] = spec.compute(values)
        data[vid] = (name, i)
        out_rows.append(Row(data))
    return Relation(out_real, out_virtual, out_rows)


def is_duplicate_insensitive(aggregates: Iterable[AggregateSpec]) -> bool:
    """True when the GP is a ``δ`` (all aggregates duplicate-insensitive).

    A GP with no aggregates is ``SELECT DISTINCT`` and therefore a δ.
    """
    aggregates = tuple(aggregates)
    return all(spec.duplicate_insensitive for spec in aggregates)
