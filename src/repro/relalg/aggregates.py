"""SQL aggregate functions for generalized projection.

Follows SQL semantics: ``COUNT(*)`` counts rows; other aggregates
ignore NULL inputs; an aggregate over an empty (or all-NULL) group is
NULL, except COUNT which is 0.  Duplicate-insensitive aggregates
(``MIN``, ``MAX``, any ``DISTINCT`` form) mark the generalized
projection as a ``δ`` in the paper's notation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Iterable

from repro.relalg.nulls import NULL


class AggregateFunction(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: ``output = fn([distinct] arg)``.

    ``arg`` is an attribute name, or ``None`` for ``COUNT(*)``.
    """

    output: str
    function: AggregateFunction
    arg: str | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.arg is None and self.function is not AggregateFunction.COUNT:
            raise ValueError(f"{self.function.value}(*) is not valid SQL")
        if self.arg is None and self.distinct:
            raise ValueError("COUNT(DISTINCT *) is not valid SQL")

    @property
    def duplicate_insensitive(self) -> bool:
        """True when the aggregate's value ignores duplicates."""
        return self.distinct or self.function in (
            AggregateFunction.MIN,
            AggregateFunction.MAX,
        )

    def compute(self, values: Iterable[Any]) -> Any:
        """Aggregate the attribute values of one group.

        ``values`` are the raw attribute values (COUNT(*) passes a
        sentinel per row); NULLs are discarded first, per SQL.
        """
        if self.arg is None:
            return sum(1 for _ in values)
        # NULL is a singleton (``__reduce__`` preserves identity across
        # pickling), so an identity test is equivalent to is_null() and
        # keeps this per-value scan free of function calls
        items = [v for v in values if v is not NULL]
        if self.distinct:
            seen: list[Any] = []
            for v in items:
                if v not in seen:
                    seen.append(v)
            items = seen
        if self.function is AggregateFunction.COUNT:
            return len(items)
        if not items:
            return NULL
        if self.function is AggregateFunction.SUM:
            return _numeric_sum(items)
        if self.function is AggregateFunction.MIN:
            return min(items)
        if self.function is AggregateFunction.MAX:
            return max(items)
        if self.function is AggregateFunction.AVG:
            total = _numeric_sum(items)
            if isinstance(total, int):
                return Fraction(total, len(items))
            return total / len(items)
        raise AssertionError(f"unhandled aggregate {self.function}")

    def label(self) -> str:
        arg = "*" if self.arg is None else self.arg
        if self.distinct:
            arg = f"distinct {arg}"
        return f"{self.function.value}({arg})"


def _numeric_sum(items: list[Any]) -> Any:
    # builtin sum() starts from 0, which not every addable type
    # accepts; take the C fast path only for plain numbers
    first = items[0]
    if type(first) is int or type(first) is float:
        try:
            return sum(items)
        except TypeError:
            pass
    total = first
    for v in items[1:]:
        total = total + v
    return total


# ---- convenience constructors ----


def count_star(output: str = "count") -> AggregateSpec:
    return AggregateSpec(output, AggregateFunction.COUNT, None)


def count(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(output or f"count_{attr}", AggregateFunction.COUNT, attr)


def count_distinct(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"count_distinct_{attr}",
        AggregateFunction.COUNT,
        attr,
        distinct=True,
    )


def sum_(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(output or f"sum_{attr}", AggregateFunction.SUM, attr)


def sum_distinct(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"sum_distinct_{attr}", AggregateFunction.SUM, attr, distinct=True
    )


def avg(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(output or f"avg_{attr}", AggregateFunction.AVG, attr)


def avg_distinct(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"avg_distinct_{attr}", AggregateFunction.AVG, attr, distinct=True
    )


def min_(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(output or f"min_{attr}", AggregateFunction.MIN, attr)


def max_(attr: str, output: str | None = None) -> AggregateSpec:
    return AggregateSpec(output or f"max_{attr}", AggregateFunction.MAX, attr)
