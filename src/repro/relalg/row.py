"""Immutable rows.

A :class:`Row` maps attribute names (real and virtual alike) to
values.  Rows are hashable so extensions can be manipulated as bags
and sets; the NULL singleton compares equal to itself structurally,
which is exactly what the set difference in Definition 2.1 needs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.relalg.nulls import NULL


class Row(Mapping[str, Any]):
    """An immutable mapping from attribute name to value."""

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any] | Iterable[tuple[str, Any]]) -> None:
        data = dict(values)
        object.__setattr__(self, "_values", data)
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._values.items()))
            )
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"Row({inner})"

    def project(self, attrs: Iterable[str]) -> "Row":
        """Row restricted to ``attrs`` (all must be present)."""
        return Row({a: self._values[a] for a in attrs})

    def merge(self, other: "Row") -> "Row":
        """Concatenate two rows with disjoint attributes."""
        merged = dict(self._values)
        for name, value in other.items():
            if name in merged:
                raise ValueError(f"rows overlap on attribute {name!r}")
            merged[name] = value
        return Row(merged)

    def padded(self, attrs: Iterable[str]) -> "Row":
        """Row extended with NULL for every attribute in ``attrs`` not present."""
        data = dict(self._values)
        for name in attrs:
            data.setdefault(name, NULL)
        return Row(data)

    def replace(self, **updates: Any) -> "Row":
        data = dict(self._values)
        data.update(updates)
        return Row(data)

    def values_tuple(self, attrs: Iterable[str]) -> tuple[Any, ...]:
        """Values of ``attrs`` in the given order (hashable grouping key)."""
        return tuple(self._values[a] for a in attrs)
