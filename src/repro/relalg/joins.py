"""Binary join operators: ⋈, semi, anti (▷), →, ←, ↔.

Definitions follow Section 1.2 of the paper.  The left outer join
``r1 →p r2`` is the union of ``r1 ⋈p r2`` with the null-padded
anti-join ``r1 ▷p r2``; the full outer join additionally pads the
unmatched rows of ``r2``.  Predicates are null-intolerant: a NULL in a
compared attribute makes the comparison UNKNOWN and the row does not
match.
"""

from __future__ import annotations

from repro.relalg.nulls import Truth
from repro.relalg.operators import RowPredicate, product, select
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row


def join(left: Relation, right: Relation, predicate: RowPredicate) -> Relation:
    """Inner join r1 ⋈p r2 = σ_p(r1 × r2)."""
    return select(product(left, right), predicate)


def _matched_left(left: Relation, right: Relation, predicate: RowPredicate) -> list[bool]:
    """For each left row, whether it matches at least one right row."""
    flags = []
    for l in left:
        matched = False
        for r in right:
            if predicate.evaluate(l.merge(r)) is Truth.TRUE:
                matched = True
                break
        flags.append(matched)
    return flags


def semi_join(left: Relation, right: Relation, predicate: RowPredicate) -> Relation:
    """Left semi join: left rows that have at least one match."""
    flags = _matched_left(left, right, predicate)
    rows = [row for row, ok in zip(left.rows, flags) if ok]
    return left.with_rows(rows)


def anti_join(left: Relation, right: Relation, predicate: RowPredicate) -> Relation:
    """Left anti join r1 ▷p r2: left rows with no match."""
    flags = _matched_left(left, right, predicate)
    rows = [row for row, ok in zip(left.rows, flags) if not ok]
    return left.with_rows(rows)


def left_outer_join(
    left: Relation, right: Relation, predicate: RowPredicate
) -> Relation:
    """r1 →p r2: matched pairs plus unmatched left rows null-padded."""
    inner = join(left, right, predicate)
    target = inner.all_attrs.attrs
    rows = list(inner.rows)
    unmatched = anti_join(left, right, predicate)
    rows += [pad_row(row, target) for row in unmatched]
    return Relation(inner.real, inner.virtual, rows)


def right_outer_join(
    left: Relation, right: Relation, predicate: RowPredicate
) -> Relation:
    """r1 ←p r2: matched pairs plus unmatched right rows null-padded."""
    inner = join(left, right, predicate)
    target = inner.all_attrs.attrs
    rows = list(inner.rows)
    unmatched = anti_join(right, left, _Flipped(predicate))
    rows += [pad_row(row, target) for row in unmatched]
    return Relation(inner.real, inner.virtual, rows)


def full_outer_join(
    left: Relation, right: Relation, predicate: RowPredicate
) -> Relation:
    """r1 ↔p r2: matched pairs plus unmatched rows of both sides."""
    inner = join(left, right, predicate)
    target = inner.all_attrs.attrs
    rows = list(inner.rows)
    rows += [pad_row(row, target) for row in anti_join(left, right, predicate)]
    rows += [
        pad_row(row, target)
        for row in anti_join(right, left, _Flipped(predicate))
    ]
    return Relation(inner.real, inner.virtual, rows)


class _Flipped:
    """Predicate adapter for anti-joining right-to-left.

    The merged row an anti-join builds is (right ∪ left); the original
    predicate reads attributes by name, so evaluation is unchanged --
    this adapter exists only to document intent and keep merge order
    irrelevant.
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: RowPredicate) -> None:
        self._inner = inner

    def evaluate(self, row: Row) -> Truth:
        return self._inner.evaluate(row)

    def __repr__(self) -> str:
        return f"flip({self._inner!r})"
