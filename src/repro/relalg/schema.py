"""Ordered attribute schemas.

A :class:`Schema` is an ordered collection of distinct attribute
names.  Order matters for display and for positional row construction;
set operations (union, intersection, difference, subset tests) follow
the usual relational conventions.  The paper's assumption
``R1 ∩ R2 = ∅`` for operand relations is enforced by the binary
operators, which raise :class:`SchemaError` on overlap.
"""

from __future__ import annotations

from repro.errors import UserInputError

from typing import Iterable, Iterator


class SchemaError(UserInputError):
    """Raised when schemas are incompatible for the requested operation."""


class Schema:
    """An ordered, duplicate-free tuple of attribute names."""

    __slots__ = ("_attrs", "_index")

    def __init__(self, attrs: Iterable[str] = ()) -> None:
        attrs = tuple(attrs)
        index: dict[str, int] = {}
        for position, name in enumerate(attrs):
            if not isinstance(name, str):
                raise SchemaError(f"attribute name must be str, got {name!r}")
            if name in index:
                raise SchemaError(f"duplicate attribute name: {name!r}")
            index[name] = position
        self._attrs = attrs
        self._index = index

    @property
    def attrs(self) -> tuple[str, ...]:
        return self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, position: int) -> str:
        return self._attrs[position]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._attrs == other._attrs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return f"Schema({list(self._attrs)!r})"

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute {name!r} in {self}") from None

    def as_set(self) -> frozenset[str]:
        return frozenset(self._attrs)

    # ---- set-style operations (order preserved, left operand first) ----

    def union(self, other: "Schema | Iterable[str]") -> "Schema":
        other_attrs = tuple(other)
        extra = [a for a in other_attrs if a not in self._index]
        return Schema(self._attrs + tuple(extra))

    def concat(self, other: "Schema | Iterable[str]") -> "Schema":
        """Disjoint concatenation; raises on overlap (paper's R1 ∩ R2 = ∅)."""
        other_attrs = tuple(other)
        overlap = [a for a in other_attrs if a in self._index]
        if overlap:
            raise SchemaError(f"schemas overlap on {overlap!r}")
        return Schema(self._attrs + other_attrs)

    def intersection(self, other: "Schema | Iterable[str]") -> "Schema":
        other_set = set(other)
        return Schema(a for a in self._attrs if a in other_set)

    def difference(self, other: "Schema | Iterable[str]") -> "Schema":
        other_set = set(other)
        return Schema(a for a in self._attrs if a not in other_set)

    def is_subset(self, other: "Schema | Iterable[str]") -> bool:
        other_set = set(other)
        return all(a in other_set for a in self._attrs)

    def is_disjoint(self, other: "Schema | Iterable[str]") -> bool:
        other_set = set(other)
        return all(a not in other_set for a in self._attrs)

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Sub-schema containing ``names``, in this schema's order."""
        wanted = set(names)
        missing = wanted - set(self._attrs)
        if missing:
            raise SchemaError(f"attributes {sorted(missing)!r} not in {self}")
        return Schema(a for a in self._attrs if a in wanted)
