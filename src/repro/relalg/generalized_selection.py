"""Generalized selection σ*_p[r1, ..., rn](r) -- Definition 2.1.

The generalized selection applies predicate ``p`` to ``r`` and keeps
the qualifying rows; in addition, for every *preserved* sub-relation
``ri ⊆ r`` it keeps (null-padded) the tuples of ``ri`` that qualify in
no surviving row:

    E' = σ_p(r) ⊎_i ( π_{Ri Vi}(r) − π_{Ri Vi}(σ_p(r)) )

A preserved sub-relation is named by its attribute sets ``(Ri, Vi)``;
it need not be a base relation -- in the paper's compensation rewrites
it is typically the result of a subexpression such as ``r1r2``.

Provenance rule: a projected part is a tuple of ``ri`` only when at
least one of its virtual attributes is non-NULL.  Rows of ``r`` in
which ``ri`` did not participate at all (every ``Vi`` id NULL, e.g.
the null-supplied side of a full outer join) contribute no ``ri``
tuple; without this rule the difference above would fabricate an
all-NULL phantom row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relalg.nulls import is_null
from repro.relalg.operators import RowPredicate, select
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row
from repro.relalg.schema import SchemaError


@dataclass(frozen=True)
class PreservedSpec:
    """A preserved sub-relation ``ri = <Ri, Vi>`` of the GS input."""

    name: str
    real_attrs: frozenset[str]
    virtual_attrs: frozenset[str]

    @staticmethod
    def of(name: str, real_attrs: Iterable[str], virtual_attrs: Iterable[str]) -> "PreservedSpec":
        spec = PreservedSpec(name, frozenset(real_attrs), frozenset(virtual_attrs))
        if not spec.real_attrs and not spec.virtual_attrs:
            raise SchemaError(f"preserved relation {name!r} has no attributes")
        return spec

    def part_of(self, row: Row, order: Sequence[str]) -> Row | None:
        """The ``ri``-tuple embedded in ``row``, or None if absent.

        With virtual attributes the test is strict provenance: some row
        id must be non-NULL.  A spec without virtual attributes (a
        group-key-identified sub-relation above a generalized
        projection) is present when any of its values is non-NULL --
        e.g. an aggregation count of 0 is non-NULL and marks a real
        group.
        """
        if self.virtual_attrs:
            if all(is_null(row[v]) for v in self.virtual_attrs):
                return None
        elif all(is_null(row[a]) for a in self.real_attrs):
            return None
        return row.project(order)


def generalized_selection(
    relation: Relation,
    predicate: RowPredicate,
    preserved: Sequence[PreservedSpec] = (),
    strict_provenance: bool = True,
) -> Relation:
    """Evaluate σ*_p[preserved...](relation) per Definition 2.1.

    ``strict_provenance=False`` disables the presence rule (every
    projected part counts as a tuple of the preserved relation, as a
    fully literal reading of the definition would have it); it exists
    for the ablation bench, which demonstrates that without the rule
    full-outer-join compensation fabricates phantom all-NULL rows.
    """
    _validate(relation, preserved)
    selected = select(relation, predicate)
    target = relation.all_attrs.attrs
    out_rows = list(selected.rows)
    qualifying = len(out_rows)
    for spec in preserved:
        order = tuple(
            a
            for a in target
            if a in spec.real_attrs or a in spec.virtual_attrs
        )

        def part_of(row: Row) -> Row | None:
            if strict_provenance:
                return spec.part_of(row, order)
            return row.project(order)

        surviving = {
            part for row in selected if (part := part_of(row)) is not None
        }
        emitted: set[Row] = set()
        for row in relation:
            part = part_of(row)
            if part is None or part in surviving or part in emitted:
                continue
            emitted.add(part)
            out_rows.append(pad_row(part, target))
    if len(out_rows) > qualifying:
        # local import: relalg is below repro.runtime in the layering
        from repro.runtime.tracing import add_counter

        add_counter("gs_preserved_rows", len(out_rows) - qualifying)
    return Relation(relation.real, relation.virtual, out_rows)


def _validate(relation: Relation, preserved: Sequence[PreservedSpec]) -> None:
    real = relation.real.as_set()
    virtual = relation.virtual.as_set()
    seen_real: set[str] = set()
    seen_virtual: set[str] = set()
    for spec in preserved:
        if not spec.real_attrs <= real:
            raise SchemaError(
                f"preserved {spec.name!r}: real attrs {sorted(spec.real_attrs - real)} "
                "not in GS input"
            )
        if not spec.virtual_attrs <= virtual:
            raise SchemaError(
                f"preserved {spec.name!r}: virtual attrs "
                f"{sorted(spec.virtual_attrs - virtual)} not in GS input"
            )
        if spec.real_attrs & seen_real or spec.virtual_attrs & seen_virtual:
            raise SchemaError(
                f"preserved relations must be pairwise disjoint; {spec.name!r} overlaps"
            )
        seen_real |= spec.real_attrs
        seen_virtual |= spec.virtual_attrs
