"""Struct-of-arrays relations: the columnar execution substrate.

A :class:`ColumnarRelation` holds the same ``<R, V, E>`` triple as
:class:`repro.relalg.relation.Relation`, but the extension is stored
column-wise -- one Python list per attribute -- instead of as a tuple
of per-row dicts.  Batch operators (``repro.exec.vector``) stream over
these lists with C-speed comprehensions instead of paying a dict
allocation and a hash probe per attribute per row.

Two design points carry the engine:

* **Selection-vector views.**  Filtering never copies column data: a
  selection produces a *view* sharing the backing columns plus a list
  of surviving physical row indices.  Chains of selections, (bag)
  projections and renames therefore cost O(selected) index bookkeeping,
  zero value movement.  Operators that need positional alignment
  (joins, grouping, generalized selection) call :meth:`compact` first,
  which gathers the visible rows into fresh backing columns once.

* **NULL stays in-band.**  SQL NULL is the singleton
  :data:`repro.relalg.nulls.NULL`, so columns store it directly and a
  null test is a single identity comparison (``v is NULL``).
  :meth:`null_mask` exposes the per-column mask for operators that
  batch over null-ness (generalized-selection provenance, key
  validity).

Virtual (row-identity) attributes are ordinary columns; the
generalized selection's set difference (Definition 2.1) runs over
tuples gathered from them, which is what makes GS compensation a pair
of linear passes in the vector engine.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Mapping, Sequence

from repro.relalg.nulls import NULL
from repro.relalg.relation import Relation
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError

#: Memoized transposes, keyed weakly by the source relation.  A
#: :class:`Relation` is immutable and backing columns are never
#: mutated, so the cached columnar form stays valid for the relation's
#: whole lifetime; weak keys let the garbage collector reclaim both
#: together.  This is the columnar analogue of a buffer pool: repeated
#: queries against the same base tables transpose them exactly once.
_TRANSPOSE_CACHE: "weakref.WeakKeyDictionary[Relation, ColumnarRelation]" = (
    weakref.WeakKeyDictionary()
)


class ColumnarRelation:
    """An immutable columnar relation, optionally behind a selection view.

    ``columns`` maps every attribute (real and virtual) to a backing
    list of values; ``sel`` -- when not ``None`` -- is the list of
    physical indices that are *visible* through this view, in order.
    Backing lists are never mutated once a relation is built, so views
    may share them freely.
    """

    __slots__ = ("_real", "_virtual", "_columns", "_nrows", "_sel")

    def __init__(
        self,
        real: Schema | Iterable[str],
        virtual: Schema | Iterable[str],
        columns: Mapping[str, list],
        nrows: int,
        sel: list[int] | None = None,
    ) -> None:
        real = real if isinstance(real, Schema) else Schema(real)
        virtual = virtual if isinstance(virtual, Schema) else Schema(virtual)
        if not real.is_disjoint(virtual):
            raise SchemaError("real and virtual attributes must be disjoint")
        expected = real.as_set() | virtual.as_set()
        if expected != set(columns):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema {sorted(expected)}"
            )
        for attr, values in columns.items():
            if len(values) != nrows:
                raise SchemaError(
                    f"column {attr!r} has {len(values)} values, expected {nrows}"
                )
        self._real = real
        self._virtual = virtual
        self._columns = dict(columns)
        self._nrows = nrows
        self._sel = sel

    # ---- constructors ----

    @staticmethod
    def from_relation(relation: Relation) -> "ColumnarRelation":
        """Transpose a row-store relation into columns (memoized).

        The first call pays one pass over the rows; later calls for
        the same relation object return the cached columnar form
        (see ``_TRANSPOSE_CACHE`` -- safe because both sides are
        immutable).
        """
        cached = _TRANSPOSE_CACHE.get(relation)
        if cached is not None:
            return cached
        page = getattr(relation, "page", None)
        if page is not None:
            # shared-memory-backed relation (repro.relalg.pages): the
            # columnar twin reads straight off the attached page, no
            # row materialization and no per-process transpose
            out = page.columnar()
            _TRANSPOSE_CACHE[relation] = out
            return out
        rows = relation.rows
        columns = {
            attr: [row[attr] for row in rows] for attr in relation.all_attrs
        }
        out = ColumnarRelation(
            relation.real, relation.virtual, columns, len(rows)
        )
        _TRANSPOSE_CACHE[relation] = out
        return out

    @staticmethod
    def from_columns(
        real: Schema | Iterable[str],
        virtual: Schema | Iterable[str],
        columns: Mapping[str, list],
    ) -> "ColumnarRelation":
        """Build from ready-made columns (length inferred)."""
        nrows = len(next(iter(columns.values()))) if columns else 0
        return ColumnarRelation(real, virtual, columns, nrows)

    # ---- accessors ----

    @property
    def real(self) -> Schema:
        return self._real

    @property
    def virtual(self) -> Schema:
        return self._virtual

    @property
    def all_attrs(self) -> tuple[str, ...]:
        return self._real.attrs + self._virtual.attrs

    @property
    def sel(self) -> list[int] | None:
        """The selection vector (``None`` when every row is visible)."""
        return self._sel

    def __len__(self) -> int:
        return self._nrows if self._sel is None else len(self._sel)

    def __repr__(self) -> str:
        view = "" if self._sel is None else f", view={len(self._sel)}/{self._nrows}"
        return (
            f"ColumnarRelation(real={list(self._real)}, "
            f"virtual={list(self._virtual)}, rows={len(self)}{view})"
        )

    # ---- pickling (the process pool's pickle fallback path) ----

    def __getstate__(self):
        """Ship only the visible data, as plain lists.

        A selection view is compacted first so a k-row view over an
        n-row backing store pickles O(k) values, not O(n); lazy
        page-backed columns are materialized because shared-memory
        buffers never cross a pipe.  The weak-keyed transpose cache is
        module state and is never pickled at all.
        """
        com = self.compact()
        columns = com._columns
        if type(columns) is not dict:
            columns = {a: columns[a] for a in columns}
        return (com._real, com._virtual, columns, com._nrows)

    def __setstate__(self, state) -> None:
        real, virtual, columns, nrows = state
        self._real = real
        self._virtual = virtual
        self._columns = columns
        self._nrows = nrows
        self._sel = None

    # ---- physical access (predicate compiler contract) ----

    def physical_columns(self) -> dict[str, list]:
        """The backing columns, indexed by *physical* row position."""
        return self._columns

    def physical_indices(self) -> Sequence[int]:
        """Visible physical indices, in view order."""
        return range(self._nrows) if self._sel is None else self._sel

    # ---- visible (gathered) access ----

    def gather(self, attr: str) -> list:
        """Visible values of ``attr``; zero-copy when the view is full."""
        column = self._columns[attr]
        if self._sel is None:
            return column
        return [column[i] for i in self._sel]

    def null_mask(self, attr: str) -> list[bool]:
        """Per visible row: is the value of ``attr`` NULL?"""
        return [v is NULL for v in self.gather(attr)]

    # ---- derivation ----

    def view(self, sel: list[int]) -> "ColumnarRelation":
        """Zero-copy selection view; ``sel`` holds *physical* indices."""
        return ColumnarRelation(
            self._real, self._virtual, self._columns, self._nrows, sel
        )

    def with_schema(
        self, real: Schema | Iterable[str], virtual: Schema | Iterable[str]
    ) -> "ColumnarRelation":
        """Same data restricted/reordered to a sub-schema (zero-copy)."""
        real = real if isinstance(real, Schema) else Schema(real)
        virtual = virtual if isinstance(virtual, Schema) else Schema(virtual)
        keep = real.attrs + virtual.attrs
        columns = {a: self._columns[a] for a in keep}
        return ColumnarRelation(real, virtual, columns, self._nrows, self._sel)

    def renamed(self, mapping: Mapping[str, str]) -> "ColumnarRelation":
        """Rename real attributes (zero-copy; backing lists shared)."""
        for old in mapping:
            if old not in self._real:
                raise SchemaError(f"cannot rename unknown attribute {old!r}")
        real = Schema(mapping.get(a, a) for a in self._real)
        # keyed access (not .items()) so lazily decoded page columns
        # materialize instead of leaking their placeholders
        columns = {
            mapping.get(a, a): self._columns[a] for a in self._columns
        }
        return ColumnarRelation(
            real, self._virtual, columns, self._nrows, self._sel
        )

    def compact(self) -> "ColumnarRelation":
        """Materialize the view: physical order == visible order."""
        if self._sel is None:
            return self
        sel = self._sel
        columns: dict[str, list] = {}
        for attr in self._columns:
            col = self._columns[attr]  # keyed: decodes lazy page columns
            columns[attr] = [col[i] for i in sel]
        return ColumnarRelation(
            self._real, self._virtual, columns, len(sel)
        )

    # ---- conversion back to the row store ----

    def to_relation(self) -> Relation:
        """Transpose back into a row-store :class:`Relation`."""
        attrs = self.all_attrs
        cols = [self.gather(a) for a in attrs]
        rows = [Row(zip(attrs, values)) for values in zip(*cols)] if attrs else []
        return Relation(self._real, self._virtual, rows)


def concat_columns(parts: Sequence[Mapping[str, list]], attrs: Sequence[str]) -> dict[str, list]:
    """Concatenate column dicts (missing attributes are NULL-padded).

    Each part may omit attributes; omitted columns contribute NULL for
    that part's rows -- the columnar form of the outer union's padding.
    Part lengths are taken from any present column (empty parts allowed).
    """
    out: dict[str, list] = {a: [] for a in attrs}
    for part in parts:
        length = len(next(iter(part.values()))) if part else 0
        for a in attrs:
            col = part.get(a)
            if col is None:
                out[a].extend([NULL] * length)
            else:
                out[a].extend(col)
    return out


def columns_of(values_by_attr: Mapping[str, Iterable[Any]]) -> dict[str, list]:
    """Coerce an attribute -> iterable mapping into concrete columns."""
    return {a: list(v) for a, v in values_by_attr.items()}
