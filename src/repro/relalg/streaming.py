"""Streaming (sorted-run) variants of the grouping operators.

When an input arrives sorted on a prefix of the grouping keys, every
group is confined to one contiguous *run* of rows agreeing on that
prefix.  A single pass that flushes per-run state at each run
boundary is then bag-equivalent to the hash-table operators in
:mod:`repro.relalg.generalized_projection` /
:mod:`repro.relalg.generalized_selection`, while holding only one
run's state instead of the whole input's.

Correctness conditions (the callers -- the engines, via
:func:`repro.expr.orderprops.streaming_run_prefix` -- enforce them):

* streaming GP: ``run_attrs`` ⊆ ``group_by``.  Rows of one group agree
  on all group keys, hence on the run attributes, hence live in one
  run; and because runs appear in input order, per-run first-occurrence
  output order equals the hash operator's global first-occurrence
  order *exactly* (same rows, same order, same virtual-id numbering).
* streaming σ*: ``run_attrs`` ⊆ every preserved spec's attributes.
  Two rows embedding the same preserved part agree on the spec's
  attributes, hence on the run key, hence share a run -- so the
  per-run set difference finds exactly the globally-unmatched parts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.relalg.aggregates import AggregateSpec
from repro.relalg.generalized_projection import _COUNT_STAR_SENTINEL
from repro.relalg.generalized_selection import PreservedSpec, _validate
from repro.relalg.nulls import Truth
from repro.relalg.operators import RowPredicate
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError

__all__ = [
    "iter_runs",
    "streaming_generalized_projection",
    "streaming_generalized_selection",
]


def iter_runs(
    rows: Sequence[Row], run_attrs: Sequence[str]
) -> Iterator[list[Row]]:
    """Maximal blocks of consecutive rows agreeing on ``run_attrs``."""
    run: list[Row] = []
    run_key: tuple | None = None
    for row in rows:
        key = row.values_tuple(run_attrs)
        if run and key != run_key:
            yield run
            run = []
        run_key = key
        run.append(row)
    if run:
        yield run


def streaming_generalized_projection(
    relation: Relation,
    group_by: Sequence[str],
    aggregates: Iterable[AggregateSpec] = (),
    name: str | None = None,
    run_attrs: Sequence[str] = (),
) -> Relation:
    """Single-pass π_{X, f(Y)} over input sorted on ``run_attrs``.

    Matches :func:`generalized_projection` row for row (same output
    order, same virtual ids) whenever the input really is run-
    clustered on ``run_attrs`` ⊆ ``group_by``.
    """
    aggregates = tuple(aggregates)
    all_attrs = relation.all_attrs.as_set()
    for attr in group_by:
        if attr not in all_attrs:
            raise SchemaError(f"group-by attribute {attr!r} not in input")
    missing = set(run_attrs) - set(group_by)
    if missing:
        raise SchemaError(
            f"run attributes {sorted(missing)} not among the group keys"
        )
    for spec in aggregates:
        if spec.arg is not None and spec.arg not in all_attrs:
            raise SchemaError(f"aggregate argument {spec.arg!r} not in input")
        if spec.output in group_by:
            raise SchemaError(
                f"aggregate output {spec.output!r} collides with a group key"
            )

    real_keys = [a for a in group_by if a in relation.real]
    virtual_keys = [a for a in group_by if a in relation.virtual]
    out_real = Schema(real_keys + [spec.output for spec in aggregates])
    if name is None:
        from repro.relalg.generalized_projection import _gp_counter

        name = f"gp{next(_gp_counter)}"
    vid = f"#{name}"
    out_virtual = Schema(virtual_keys + [vid])

    out_rows: list[Row] = []
    gid = 0

    def flush(groups: dict[tuple, list[Row]], order: list[tuple]) -> None:
        nonlocal gid
        for key in order:
            members = groups[key]
            data = dict(zip(group_by, key))
            for spec in aggregates:
                if spec.arg is None:
                    values: Iterable = (_COUNT_STAR_SENTINEL for _ in members)
                else:
                    values = (m[spec.arg] for m in members)
                data[spec.output] = spec.compute(values)
            data[vid] = (name, gid)
            gid += 1
            out_rows.append(Row(data))

    saw_rows = False
    for run in iter_runs(relation.rows, run_attrs):
        saw_rows = True
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in run:
            key = row.values_tuple(group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        flush(groups, order)

    if not group_by and not saw_rows:
        # SQL: a global aggregate over an empty input yields one row
        flush({(): []}, [()])
    return Relation(out_real, out_virtual, out_rows)


def streaming_generalized_selection(
    relation: Relation,
    predicate: RowPredicate,
    preserved: Sequence[PreservedSpec] = (),
    run_attrs: Sequence[str] = (),
) -> Relation:
    """Per-run σ*_p[preserved...] over input sorted on ``run_attrs``.

    Bag-equivalent to :func:`generalized_selection` when every
    preserved part is confined to one run, i.e. ``run_attrs`` is
    contained in each spec's (real ∪ virtual) attribute set.  Pad rows
    surface at their run's boundary rather than all at the end, so
    output *order* differs -- σ* promises none.
    """
    _validate(relation, preserved)
    for spec in preserved:
        outside = set(run_attrs) - (spec.real_attrs | spec.virtual_attrs)
        if outside:
            raise SchemaError(
                f"run attributes {sorted(outside)} not covered by "
                f"preserved {spec.name!r}; parts would straddle runs"
            )
    target = relation.all_attrs.attrs
    orders = {
        spec.name: tuple(
            a
            for a in target
            if a in spec.real_attrs or a in spec.virtual_attrs
        )
        for spec in preserved
    }
    out_rows: list[Row] = []
    preserved_pads = 0
    for run in iter_runs(relation.rows, run_attrs):
        selected = [
            row for row in run if predicate.evaluate(row) is Truth.TRUE
        ]
        out_rows.extend(selected)
        for spec in preserved:
            order = orders[spec.name]
            surviving = {
                part
                for row in selected
                if (part := spec.part_of(row, order)) is not None
            }
            emitted: set[Row] = set()
            for row in run:
                part = spec.part_of(row, order)
                if part is None or part in surviving or part in emitted:
                    continue
                emitted.add(part)
                out_rows.append(pad_row(part, target))
                preserved_pads += 1
    if preserved_pads:
        # local import: relalg is below repro.runtime in the layering
        from repro.runtime.tracing import add_counter

        add_counter("gs_preserved_rows", preserved_pads)
    return Relation(relation.real, relation.virtual, out_rows)
