"""Unary and set operators: σ, π, ×, ∪, ⊎ (outer union), −, rename."""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Iterable, Protocol

from repro.relalg.nulls import Truth
from repro.relalg.relation import Relation, pad_row
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError


class RowPredicate(Protocol):
    """Anything that evaluates a row under three-valued logic."""

    def evaluate(self, row: Row) -> Truth:  # pragma: no cover - protocol
        ...


class FunctionPredicate:
    """Adapter turning a plain boolean function into a RowPredicate."""

    __slots__ = ("_fn", "_label")

    def __init__(self, fn: Callable[[Row], Truth | bool], label: str = "<fn>") -> None:
        self._fn = fn
        self._label = label

    def evaluate(self, row: Row) -> Truth:
        result = self._fn(row)
        if isinstance(result, Truth):
            return result
        return Truth.of(bool(result))

    def __repr__(self) -> str:
        return f"FunctionPredicate({self._label})"


def select(relation: Relation, predicate: RowPredicate) -> Relation:
    """σ_p(r): rows for which the predicate is TRUE (not UNKNOWN)."""
    rows = [row for row in relation if predicate.evaluate(row) is Truth.TRUE]
    return relation.with_rows(rows)


def project(
    relation: Relation,
    real_attrs: Iterable[str],
    virtual_attrs: Iterable[str] | None = None,
    distinct: bool = False,
) -> Relation:
    """π over real (and optionally virtual) attributes.

    With ``distinct=True`` this is set projection (``SELECT DISTINCT``);
    otherwise bag projection.  Virtual attributes default to all of the
    input's virtuals, which keeps row provenance intact.
    """
    real = relation.real.restrict(real_attrs)
    if virtual_attrs is None:
        virtual = relation.virtual
    else:
        virtual = relation.virtual.restrict(virtual_attrs)
    keep = tuple(real) + tuple(virtual)
    rows: Iterable[Row] = (row.project(keep) for row in relation)
    if distinct:
        seen: set[Row] = set()
        unique = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        rows = unique
    return Relation(real, virtual, rows)


def product(left: Relation, right: Relation) -> Relation:
    """Cartesian product of relations with disjoint attributes."""
    real = left.real.concat(right.real)
    virtual = left.virtual.concat(right.virtual)
    rows = [l.merge(r) for l in left for r in right]
    return Relation(real, virtual, rows)


def union(left: Relation, right: Relation) -> Relation:
    """Bag union of union-compatible relations (same attribute sets)."""
    if left.real.as_set() != right.real.as_set():
        raise SchemaError("union operands must have identical real schemas")
    if left.virtual.as_set() != right.virtual.as_set():
        raise SchemaError("union operands must have identical virtual schemas")
    order = left.all_attrs.attrs
    rows = list(left.rows) + [row.project(order) for row in right.rows]
    return Relation(left.real, left.virtual, rows)


def outer_union(left: Relation, right: Relation) -> Relation:
    """⊎: union after null-padding both sides to the merged schema.

    Matches the paper's definition in Section 1.2: rows are padded with
    NULL for attributes (real or virtual) present only on the other side.
    """
    real = left.real.union(right.real)
    virtual = left.virtual.union(right.virtual)
    target = tuple(real) + tuple(virtual)
    rows = [pad_row(row, target) for row in left]
    rows += [pad_row(row, target) for row in right]
    return Relation(real, virtual, rows)


def difference(left: Relation, right: Relation) -> Relation:
    """Bag difference over identical schemas (virtuals included)."""
    if left.real.as_set() != right.real.as_set():
        raise SchemaError("difference operands must have identical real schemas")
    if left.virtual.as_set() != right.virtual.as_set():
        raise SchemaError(
            "difference operands must have identical virtual schemas"
        )
    order = left.all_attrs.attrs
    remaining = Counter(row.project(order) for row in right)
    rows = []
    for row in left:
        canonical = row.project(order)
        if remaining[canonical] > 0:
            remaining[canonical] -= 1
        else:
            rows.append(row)
    return Relation(left.real, left.virtual, rows)


def rename(relation: Relation, mapping: dict[str, str]) -> Relation:
    """Rename real attributes according to ``mapping`` (old -> new)."""
    for old in mapping:
        if old not in relation.real:
            raise SchemaError(f"cannot rename unknown attribute {old!r}")
    new_real = Schema(mapping.get(a, a) for a in relation.real)
    rows = []
    for row in relation:
        data: dict[str, Any] = {}
        for attr in relation.real:
            data[mapping.get(attr, attr)] = row[attr]
        for attr in relation.virtual:
            data[attr] = row[attr]
        rows.append(Row(data))
    return Relation(new_real, relation.virtual, rows)
