"""Shared-memory columnar pages: zero-copy relations across processes.

The process pool (``repro.runtime.procpool``) originally shipped the
whole database to every worker by pickling it into the spawn blob.
That tax is paid per worker *and again per respawn* -- under a
``worker:kill9`` chaos storm the supervisor can easily spend more time
re-pickling tables than running queries.  This module removes the copy:
each base table is encoded once, in the parent, into an Arrow-like
**page** living in a named ``multiprocessing.shared_memory`` segment,
and children *attach* to the segments by name -- an O(1) ``mmap`` --
instead of receiving rows.

Page layout (one segment per table)::

    offset 0   magic          8 bytes   b"RPRPAGE1"
    offset 8   refcount       int64     best-effort attach count
    offset 16  header length  int64     byte length of the JSON header
    offset 24  header         JSON      schemas, nrows, column directory
    ...        payload        8-byte-aligned column blobs

Column encodings (directory ``kind``):

* ``i64`` / ``f64`` -- native-endian fixed width, one validity bitmap
  when the column carries NULLs (bit set = valid); NULL slots store 0.
* ``bool`` -- one byte per row plus the same optional bitmap.
* ``str`` -- UTF-8 blob plus an ``int64[nrows + 1]`` offsets array
  (value *i* is ``blob[offs[i]:offs[i+1]]``), plus optional bitmap.
* ``vid`` -- a base relation's virtual-id column holds ``(name, i)``
  with a constant name and ``i`` equal to the physical row index, so
  only the name is stored and the column is reconstructed for free.

Everything else -- mixed-type columns, ints beyond 64 bits,
``Fraction`` values from the CSV loader, vid columns that lost the
base shape -- raises :class:`UnpageableError` and the table falls back
to the pickle path (the registry records why).  SQL NULL stays the
in-band singleton: the bitmap is decoded back to the identical
:data:`repro.relalg.nulls.NULL` object, so three-valued logic is
byte-for-byte unchanged across the process boundary.

Attached pages decode **lazily, per column, on first touch**: a child
that only ever filters two columns of a six-column table never pays
for the other four, and the decode itself runs off the mapped buffer
at ``memoryview.cast(...).tolist()`` speed.  Decoded columns are
cached per process, so the cost is paid once per worker lifetime, not
per query.

Lifecycle: the parent creates segments (:class:`PageRegistry`),
children attach (:class:`AttachedPage`), the parent unlinks at
shutdown.  ``kill -9`` of the *parent* cannot unlink, so segment names
embed the creator PID and :func:`sweep_orphans` -- run at every
supervisor start -- reclaims segments whose creator is gone.  Children
killed mid-query merely drop their mapping; the kernel reclaims it.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Any, Iterable, Sequence

from repro.relalg.columnar import ColumnarRelation
from repro.relalg.nulls import NULL
from repro.relalg.relation import Relation
from repro.relalg.row import Row
from repro.relalg.schema import Schema

__all__ = [
    "SEGMENT_PREFIX",
    "UnpageableError",
    "PageFormatError",
    "PageHandle",
    "AttachedPage",
    "PagedRelation",
    "PagedColumnarRelation",
    "PageRegistry",
    "build_page",
    "attach_page",
    "pages_supported",
    "sweep_orphans",
]

#: Prefix of every segment name this module creates.  The full shape is
#: ``repro_pg_<creator-pid>_<token>_<index>``; the PID is what lets
#: :func:`sweep_orphans` decide whether a leftover segment's owner is
#: still alive.
SEGMENT_PREFIX = "repro_pg"

_MAGIC = b"RPRPAGE1"
_HEADER_FIXED = 24  # magic + refcount + header-length, all 8-byte slots
_REFCOUNT_OFF = 8
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class UnpageableError(TypeError):
    """A relation holds values the page format cannot encode.

    Raising this is not a failure: the registry catches it and the
    table rides the pickle fallback instead.
    """


class PageFormatError(ValueError):
    """An attached segment is not a well-formed page."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


# ---------------------------------------------------------------------------
# feature probe


_PROBE: bool | None = None


def pages_supported() -> bool:
    """Can this platform create and attach shared-memory pages?

    One probe segment is created and destroyed on first call; the
    verdict is cached.  Setting ``REPRO_NO_SHM=1`` in the environment
    forces ``False`` (the documented kill switch for the whole
    subsystem, checked on every call so tests can flip it).
    """
    global _PROBE
    if os.environ.get("REPRO_NO_SHM", "").lower() in ("1", "true", "yes"):
        return False
    if _PROBE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _PROBE = True
        except Exception:
            _PROBE = False
    return _PROBE


# ---------------------------------------------------------------------------
# encoding


def _bitmap(values: Sequence[Any]) -> bytes:
    """Validity bitmap: bit set = value present (not NULL)."""
    buf = bytearray((len(values) + 7) // 8)
    for i, v in enumerate(values):
        if v is not NULL:
            buf[i >> 3] |= 1 << (i & 7)
    return bytes(buf)


def _classify(attr: str, values: Sequence[Any]) -> tuple[str, bool]:
    """Column kind + has-NULLs, or :class:`UnpageableError`.

    Kinds are strict: a column must be homogeneous (``bool`` is checked
    before ``int`` because it subclasses it), so a round-tripped value
    has not just equal content but the identical Python type.
    """
    kind: str | None = None
    has_null = False
    for v in values:
        if v is NULL:
            has_null = True
            continue
        if isinstance(v, bool):
            k = "bool"
        elif isinstance(v, int):
            if not (_INT64_MIN <= v <= _INT64_MAX):
                raise UnpageableError(
                    f"column {attr!r}: int {v} exceeds 64 bits"
                )
            k = "i64"
        elif isinstance(v, float):
            k = "f64"
        elif isinstance(v, str):
            k = "str"
        else:
            raise UnpageableError(
                f"column {attr!r}: unpageable value type "
                f"{type(v).__name__}"
            )
        if kind is None:
            kind = k
        elif kind != k:
            raise UnpageableError(f"column {attr!r}: mixed {kind}/{k} values")
    return kind or "i64", has_null


def _encode_vid(attr: str, values: Sequence[Any]) -> str:
    """Validate the base-relation vid shape; return the constant name."""
    name: str | None = None
    for i, v in enumerate(values):
        if (
            not isinstance(v, tuple)
            or len(v) != 2
            or not isinstance(v[0], str)
            or v[1] != i
        ):
            raise UnpageableError(
                f"column {attr!r}: virtual ids are not in base shape"
            )
        if name is None:
            name = v[0]
        elif v[0] != name:
            raise UnpageableError(
                f"column {attr!r}: virtual ids name several relations"
            )
    return name if name is not None else attr.lstrip("#")


def _encode_columns(
    relation: Relation,
) -> tuple[list[dict[str, Any]], list[bytes]]:
    """Encode every column; returns (directory entries, payload blobs).

    Directory offsets are relative to the payload base (which depends
    on the final header length, unknown until the directory is built).
    """
    columnar = ColumnarRelation.from_relation(relation)
    virtual = set(relation.virtual.attrs)
    metas: list[dict[str, Any]] = []
    blobs: list[bytes] = []
    offset = 0

    def put(blob: bytes) -> tuple[int, int]:
        nonlocal offset
        at = offset
        blobs.append(blob)
        offset = _align8(offset + len(blob))
        return at, len(blob)

    n = len(relation)
    for attr in columnar.all_attrs:
        values = columnar.gather(attr)
        meta: dict[str, Any] = {"attr": attr}
        if attr in virtual:
            meta["kind"] = "vid"
            meta["aux"] = _encode_vid(attr, values)
            metas.append(meta)
            continue
        kind, has_null = _classify(attr, values)
        meta["kind"] = kind
        if kind == "i64":
            ints = [0 if v is NULL else v for v in values]
            meta["off"], meta["len"] = put(struct.pack(f"={n}q", *ints))
        elif kind == "f64":
            floats = [0.0 if v is NULL else v for v in values]
            meta["off"], meta["len"] = put(struct.pack(f"={n}d", *floats))
        elif kind == "bool":
            meta["off"], meta["len"] = put(
                bytes(0 if v is NULL else int(v) for v in values)
            )
        else:  # str
            data = bytearray()
            offs = [0]
            for v in values:
                if v is not NULL:
                    data += v.encode("utf-8")
                offs.append(len(data))
            meta["ooff"], _ = put(struct.pack(f"={n + 1}q", *offs))
            meta["off"], meta["len"] = put(bytes(data))
        if has_null:
            meta["voff"], meta["vlen"] = put(_bitmap(values))
        metas.append(meta)
    return metas, blobs


class PageHandle:
    """Everything a worker needs to attach a page: a few dozen bytes.

    This -- not the relation -- is what crosses the pipe in the spawn
    blob.  It is a plain picklable value object.
    """

    __slots__ = ("segment", "table", "nbytes", "nrows")

    def __init__(self, segment: str, table: str, nbytes: int, nrows: int):
        self.segment = segment
        self.table = table
        self.nbytes = nbytes
        self.nrows = nrows

    def __repr__(self) -> str:
        return (
            f"PageHandle(segment={self.segment!r}, table={self.table!r}, "
            f"nbytes={self.nbytes}, nrows={self.nrows})"
        )

    def __reduce__(self):
        return (PageHandle, (self.segment, self.table, self.nbytes, self.nrows))


def build_page(table: str, relation: Relation, segment: str):
    """Encode ``relation`` into a new shared segment named ``segment``.

    Returns ``(shm, handle)``; the caller owns the
    ``SharedMemory`` object and is responsible for ``unlink``.  Raises
    :class:`UnpageableError` without creating the segment when any
    column cannot be encoded.
    """
    from multiprocessing import shared_memory

    metas, blobs = _encode_columns(relation)
    header = {
        "table": table,
        "real": list(relation.real.attrs),
        "virtual": list(relation.virtual.attrs),
        "nrows": len(relation),
        "columns": metas,
    }
    hjson = json.dumps(header, separators=(",", ":")).encode("utf-8")
    base = _align8(_HEADER_FIXED + len(hjson))
    payload = sum(_align8(len(b)) for b in blobs)
    total = max(base + payload, 16)
    shm = shared_memory.SharedMemory(name=segment, create=True, size=total)
    buf = shm.buf
    buf[0:8] = _MAGIC
    struct.pack_into("=q", buf, _REFCOUNT_OFF, 0)
    struct.pack_into("=q", buf, 16, len(hjson))
    buf[_HEADER_FIXED : _HEADER_FIXED + len(hjson)] = hjson
    at = base
    for blob in blobs:
        buf[at : at + len(blob)] = blob
        at = _align8(at + len(blob))
    return shm, PageHandle(segment, table, total, len(relation))


# ---------------------------------------------------------------------------
# attaching


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(segment: str):
    """Attach to ``segment`` without registering with the resource tracker.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the resource tracker, which would unlink it at
    tracker shutdown -- exactly wrong for a reader; only the creating
    supervisor may unlink.  Un-registering after the fact is no better:
    the tracker's cache is a per-name *set* shared by the whole process
    tree, so a reader's unregister would also erase the creator's
    registration and make the eventual ``unlink()`` complain.  The only
    clean option is to suppress the registration itself for the
    duration of the attach (serialized, since it patches module state).
    """
    from multiprocessing import resource_tracker, shared_memory

    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip
        try:
            return shared_memory.SharedMemory(name=segment)
        finally:
            resource_tracker.register = original


class AttachedPage:
    """A read-side mapping of one page; decodes columns lazily.

    Decoded columns are cached on the page, so the relation view, the
    columnar view and every selection view share one decode per column
    per process.
    """

    def __init__(self, handle: PageHandle, *, untrack: bool = True):
        from multiprocessing import shared_memory

        self.handle = handle
        if untrack:
            self._shm = _attach_untracked(handle.segment)
        else:
            self._shm = shared_memory.SharedMemory(name=handle.segment)
        buf = self._shm.buf
        if bytes(buf[0:8]) != _MAGIC:
            self._shm.close()
            raise PageFormatError(
                f"segment {handle.segment!r} is not a repro page"
            )
        (hlen,) = struct.unpack_from("=q", buf, 16)
        header = json.loads(bytes(buf[_HEADER_FIXED : _HEADER_FIXED + hlen]))
        self._base = _align8(_HEADER_FIXED + hlen)
        self.table: str = header["table"]
        self.nrows: int = header["nrows"]
        self.real = Schema(header["real"])
        self.virtual = Schema(header["virtual"])
        self._meta = {m["attr"]: m for m in header["columns"]}
        self._decoded: dict[str, list] = {}
        self._relation: PagedRelation | None = None
        self._columnar: PagedColumnarRelation | None = None
        self._addref(+1)

    # -- refcount (best-effort diagnostics; correctness never depends on it)

    def _addref(self, delta: int) -> None:
        try:
            (cur,) = struct.unpack_from("=q", self._shm.buf, _REFCOUNT_OFF)
            struct.pack_into("=q", self._shm.buf, _REFCOUNT_OFF, cur + delta)
        except (ValueError, TypeError):
            pass

    def refcount(self) -> int:
        (cur,) = struct.unpack_from("=q", self._shm.buf, _REFCOUNT_OFF)
        return cur

    # -- decoding

    def attrs(self) -> tuple[str, ...]:
        return self.real.attrs + self.virtual.attrs

    def column(self, attr: str) -> list:
        """The fully decoded column (NULLs restored); cached."""
        cached = self._decoded.get(attr)
        if cached is not None:
            return cached
        meta = self._meta[attr]
        kind = meta["kind"]
        n = self.nrows
        mv = self._shm.buf
        if kind == "vid":
            name = meta["aux"]
            values: list = [(name, i) for i in range(n)]
        elif kind == "str":
            offs = self._cast(mv, meta["ooff"], 8 * (n + 1), "q")
            data = bytes(
                mv[self._base + meta["off"] : self._base + meta["off"] + meta["len"]]
            )
            values = [
                data[offs[i] : offs[i + 1]].decode("utf-8") for i in range(n)
            ]
        elif kind == "bool":
            raw = bytes(
                mv[self._base + meta["off"] : self._base + meta["off"] + meta["len"]]
            )
            values = [b == 1 for b in raw]
        else:  # i64 / f64
            values = self._cast(
                mv, meta["off"], meta["len"], "q" if kind == "i64" else "d"
            )
        vlen = meta.get("vlen", 0)
        if vlen:
            voff = self._base + meta["voff"]
            bitmap = bytes(mv[voff : voff + vlen])
            for i in range(n):
                if not (bitmap[i >> 3] >> (i & 7)) & 1:
                    values[i] = NULL
        self._decoded[attr] = values
        return values

    def _cast(self, mv, rel_off: int, nbytes: int, code: str) -> list:
        # released eagerly so close() never trips over exported views
        seg = mv[self._base + rel_off : self._base + rel_off + nbytes]
        try:
            casted = seg.cast(code)
            try:
                return casted.tolist()
            finally:
                casted.release()
        finally:
            seg.release()

    # -- views

    def relation(self) -> "PagedRelation":
        if self._relation is None:
            self._relation = PagedRelation(self)
        return self._relation

    def columnar(self) -> "PagedColumnarRelation":
        if self._columnar is None:
            self._columnar = PagedColumnarRelation(
                self.real, self.virtual, _LazyColumns(self), self.nrows
            )
        return self._columnar

    def close(self) -> None:
        self._addref(-1)
        try:
            self._shm.close()
        except BufferError:
            # a decoded view still exports the buffer; the mapping dies
            # with the process either way
            pass


def attach_page(handle: PageHandle, *, untrack: bool = True) -> AttachedPage:
    """Attach to an existing page by handle (the worker-side entry)."""
    return AttachedPage(handle, untrack=untrack)


# ---------------------------------------------------------------------------
# relation / columnar views over an attached page


class PagedRelation(Relation):
    """A :class:`Relation` whose rows live in a shared page.

    Rows materialize lazily on first access; the vector engine never
    asks (it transposes via :meth:`page.columnar` through the
    ``from_relation`` hook), so under the columnar engine a paged table
    costs no per-row dicts at all.  Pickling materializes into a plain
    :class:`Relation` -- memoryviews must never cross a pipe.
    """

    __slots__ = ("page",)

    def __init__(self, page: AttachedPage):
        super().__init__(page.real, page.virtual, ())
        self.page = page

    @property
    def rows(self) -> tuple[Row, ...]:
        if not self._rows and self.page.nrows:
            attrs = self.page.attrs()
            cols = [self.page.column(a) for a in attrs]
            self._rows = tuple(
                Row(zip(attrs, values)) for values in zip(*cols)
            )
        return self._rows

    def __len__(self) -> int:
        return self.page.nrows

    def __iter__(self):
        return iter(self.rows)

    def __reduce__(self):
        return (Relation, (self._real, self._virtual, self.rows))


_UNLOADED = object()


class _LazyColumns(dict):
    """Column mapping that decodes from the page on first ``[]`` access.

    It *is* a dict (so schema iteration, ``in`` and ``len`` behave),
    pre-seeded with a sentinel per attribute; raw ``.items()`` /
    ``.values()`` access would leak sentinels, which is why
    :class:`ColumnarRelation` derivation methods go through ``[]``.
    """

    __slots__ = ("_page",)

    def __init__(self, page: AttachedPage):
        super().__init__((a, _UNLOADED) for a in page.attrs())
        self._page = page

    def __getitem__(self, key: str) -> list:
        value = dict.__getitem__(self, key)
        if value is _UNLOADED:
            value = self._page.column(key)
            dict.__setitem__(self, key, value)
        return value


class PagedColumnarRelation(ColumnarRelation):
    """A :class:`ColumnarRelation` backed directly by an attached page.

    Construction skips the base-class column validation (nothing is
    decoded yet); selection views share the same lazy mapping, so a
    filter over a paged scan decodes exactly the predicate's columns
    and nothing else.
    """

    __slots__ = ()

    def __init__(
        self,
        real: Schema | Iterable[str],
        virtual: Schema | Iterable[str],
        columns,
        nrows: int,
        sel: list[int] | None = None,
    ) -> None:
        self._real = real if isinstance(real, Schema) else Schema(real)
        self._virtual = (
            virtual if isinstance(virtual, Schema) else Schema(virtual)
        )
        self._columns = columns
        self._nrows = nrows
        self._sel = sel

    def view(self, sel: list[int]) -> "PagedColumnarRelation":
        return PagedColumnarRelation(
            self._real, self._virtual, self._columns, self._nrows, sel
        )

    def __reduce__(self):
        # the page linkage cannot cross a pipe; downgrade to the plain
        # class, compacted (same slim state the base class pickles)
        real, virtual, columns, nrows = self.__getstate__()
        return (ColumnarRelation, (real, virtual, columns, nrows))


# ---------------------------------------------------------------------------
# registry + orphan sweep


class PageRegistry:
    """Owns one segment per pageable table of a database.

    Built by the supervisor before workers spawn.  ``handles`` is what
    ships in the spawn blob; ``fallback`` maps each unpageable table to
    the reason it stays on the pickle path.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.token = os.urandom(4).hex()
        self._segments: dict[str, Any] = {}
        self.handles: dict[str, PageHandle] = {}
        self.fallback: dict[str, str] = {}
        self._closed = False

    @classmethod
    def build(cls, db) -> "PageRegistry":
        registry = cls()
        for name in db.names():
            registry.add(name, db[name])
        return registry

    def add(self, table: str, relation: Relation) -> PageHandle | None:
        """Page one table; on :class:`UnpageableError` record fallback."""
        segment = f"{SEGMENT_PREFIX}_{self.pid}_{self.token}_{len(self._segments)}"
        try:
            shm, handle = build_page(table, relation, segment)
        except UnpageableError as exc:
            self.fallback[table] = str(exc)
            return None
        self._segments[table] = shm
        self.handles[table] = handle
        return handle

    @property
    def nbytes(self) -> int:
        return sum(h.nbytes for h in self.handles.values())

    def segment_names(self) -> list[str]:
        return [h.segment for h in self.handles.values()]

    def snapshot(self) -> dict[str, Any]:
        return {
            "segments": len(self.handles),
            "bytes": self.nbytes,
            "fallback_tables": sorted(self.fallback),
        }

    def close(self, *, unlink: bool = True) -> None:
        """Release (and by default destroy) every segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments.values():
            try:
                shm.close()
            except BufferError:
                pass
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        self._segments.clear()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def sweep_orphans(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink page segments whose creator process no longer exists.

    The supervisor runs this before building its own registry, so a
    ``kill -9`` of a previous parent leaks at most until the next
    start.  Unlinking never invalidates live mappings, so a racing
    reader of a genuinely dead owner's segment is still safe.  Returns
    the reclaimed segment names.
    """
    removed: list[str] = []
    try:
        names = os.listdir(shm_dir)
    except OSError:
        return removed
    for fname in names:
        if not fname.startswith(SEGMENT_PREFIX + "_"):
            continue
        parts = fname.split("_")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, fname))
        except OSError:
            continue
        removed.append(fname)
    return removed
