"""One total order for heterogeneous SQL values, shared by every sorter.

Before this module each consumer invented its own comparison hack:
the CLI sorted on ``(isnull, type-name, value)``, ``Relation.sorted_rows``
on ``(isnull, repr)``, and the physical merge join on ``(type-name,
repr)``.  Three conventions means three NULL placements and three
answers for ``ORDER BY`` -- and no way for an optimizer to claim one
operator's output order satisfies another's requirement.

The convention, used everywhere an order is produced or compared:

* NULLS LAST under ascending order (and therefore first under
  descending, which is what you get by negating the key).
* Numbers (``int``/``float``/``bool``/``Fraction``) compare among
  themselves numerically.
* Strings compare among themselves lexicographically, after numbers.
* Anything else compares after strings, grouped by type name then
  ``repr`` -- arbitrary but *deterministic*, which is all a sorter
  needs from values SQL never promises an order for.

Descending keys are handled by wrapping the per-value key in
:class:`_Desc`, which inverts ``__lt__``; that keeps one composite
key usable by both ``list.sort`` (stable) and ``heapq.nsmallest``
(the CLI top-N fast path).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from numbers import Number
from typing import Any

from repro.relalg.nulls import is_null

__all__ = [
    "value_key",
    "row_key",
    "row_key_fn",
    "attr_key_fn",
    "sort_rows",
    "top_n_rows",
    "tiebreak_keys",
]

_RANK_VALUE = 0
_RANK_NULL = 1

_TYPE_NUMBER = 0
_TYPE_STRING = 1
_TYPE_OTHER = 2


def value_key(value: Any) -> tuple:
    """Totally ordered key for one SQL value (NULLS LAST ascending)."""
    if value is None or is_null(value):
        return (_RANK_NULL, 0, 0)
    if isinstance(value, bool) or isinstance(value, Number):
        return (_RANK_VALUE, _TYPE_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_VALUE, _TYPE_STRING, value)
    return (_RANK_VALUE, _TYPE_OTHER, (type(value).__name__, repr(value)))


class _Desc:
    """Order-inverting wrapper so DESC keys ride in an ASC composite."""

    __slots__ = ("key",)

    def __init__(self, key: tuple):
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return other.key < self.key

    def __le__(self, other: "_Desc") -> bool:
        return other.key <= self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.key == self.key

    def __hash__(self) -> int:  # pragma: no cover - keys are not hashed
        return hash(self.key)


def row_key(
    row: Sequence[Any], positions: Sequence[tuple[Any, bool]]
) -> tuple:
    """Composite key for ``row`` over ``(column, descending)`` specs.

    ``column`` is whatever subscript the row type understands: an
    integer position for tuple rows, an attribute name for
    mapping-style :class:`repro.relalg.row.Row` objects.  NULLS stay
    last under ASC and come first under DESC -- the single convention
    promised by the module docstring, for every consumer.
    """
    parts = []
    for pos, descending in positions:
        key = value_key(row[pos])
        parts.append(_Desc(key) if descending else key)
    return tuple(parts)


def row_key_fn(positions: Sequence[tuple[Any, bool]]):
    """Bind :func:`row_key` to ``positions`` for use as a ``key=``."""

    def _key(row: Sequence[Any]) -> tuple:
        return row_key(row, positions)

    return _key


def attr_key_fn(keys: Sequence[tuple[str, bool]]):
    """Like :func:`row_key_fn` for mapping-style rows (``row[attr]``)."""

    def _key(row) -> tuple:
        parts = []
        for attr, descending in keys:
            key = value_key(row[attr])
            parts.append(_Desc(key) if descending else key)
        return tuple(parts)

    return _key


def tiebreak_keys(
    keys: Sequence[tuple[str, bool]], attrs: Iterable[str]
) -> tuple[tuple[str, bool], ...]:
    """``keys`` extended with the remaining ``attrs``, ascending.

    A stable sort on the requested keys alone leaves equal-key rows in
    *input* order -- which differs between engines, because each join
    algorithm emits matches in its own order.  Sorting by the extended
    key instead makes the output sequence a function of the row bag
    alone, so every engine's Sort emits the identical sequence and
    differential verification can compare sequences, not just bags.
    The extra attrs are appended in sorted name order, making the
    tiebreak independent of schema column order too.
    """
    seen = {attr for attr, _ in keys}
    return tuple(keys) + tuple(
        (attr, False) for attr in sorted(attrs) if attr not in seen
    )


def sort_rows(
    rows: Iterable[Sequence[Any]], positions: Sequence[tuple[Any, bool]]
) -> list:
    """Stable sort of ``rows`` by the shared convention."""
    return sorted(rows, key=row_key_fn(positions))


def top_n_rows(
    rows: Iterable[Sequence[Any]],
    positions: Sequence[tuple[Any, bool]],
    n: int,
) -> list:
    """First ``n`` rows of the sorted order without a full sort.

    ``heapq.nsmallest`` is O(rows · log n); the composite key makes it
    agree element-for-element with :func:`sort_rows` truncated to
    ``n`` (both are stable: ties keep input order).
    """
    if n <= 0:
        return []
    return heapq.nsmallest(n, rows, key=row_key_fn(positions))
