"""Relations ``<R, V, E>`` per Section 1.2 of the paper.

``R`` is the real-attribute schema, ``V`` the virtual attributes (row
identifiers -- the paper suggests thinking of them as row ids), and
``E`` the extension, a bag of rows.  Virtual attributes give every
base row a durable identity that survives joins and null-padding,
which is what makes the set difference in the generalized-selection
definition (Definition 2.1) meaningful under duplicates.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relalg.nulls import NULL, is_null
from repro.relalg.row import Row
from repro.relalg.schema import Schema, SchemaError


def virtual_attr(relation_name: str) -> str:
    """Name of the virtual (row-identifier) attribute of a base relation."""
    return f"#{relation_name}"


# Per-row schema validation rebuilds set(row) for every row of every
# operator output, which profiles as the single largest cost of the
# hash engine.  Operators only ever derive rows from already-validated
# relations, so by default only the first row is checked (a sampled
# smoke test that still catches systematically wrong construction).
# Full validation stays available for debugging: set REPRO_VALIDATE_ROWS=full
# in the environment, or call set_full_row_validation(True) from tests.
_FULL_ROW_VALIDATION = os.environ.get("REPRO_VALIDATE_ROWS", "").lower() in (
    "1",
    "full",
    "true",
)


def set_full_row_validation(enabled: bool) -> bool:
    """Toggle exhaustive per-row schema validation; returns the old value."""
    global _FULL_ROW_VALIDATION
    previous = _FULL_ROW_VALIDATION
    _FULL_ROW_VALIDATION = bool(enabled)
    return previous


class Relation:
    """An immutable relation ``<R, V, E>`` with bag semantics."""

    # __weakref__ lets the columnar layer memoize its transpose of an
    # (immutable) relation without keeping the relation alive.
    __slots__ = ("_real", "_virtual", "_rows", "__weakref__")

    def __init__(
        self,
        real: Schema | Iterable[str],
        virtual: Schema | Iterable[str],
        rows: Iterable[Row] = (),
    ) -> None:
        real = real if isinstance(real, Schema) else Schema(real)
        virtual = virtual if isinstance(virtual, Schema) else Schema(virtual)
        if not real.is_disjoint(virtual):
            raise SchemaError("real and virtual attributes must be disjoint")
        rows = tuple(rows)
        if rows:
            expected = real.as_set() | virtual.as_set()
            check = rows if _FULL_ROW_VALIDATION else rows[:1]
            for row in check:
                if set(row) != expected:
                    raise SchemaError(
                        f"row attributes {sorted(row)} do not match schema "
                        f"{sorted(expected)}"
                    )
        self._real = real
        self._virtual = virtual
        self._rows = rows

    # ---- constructors ----

    @staticmethod
    def base(
        name: str,
        attrs: Sequence[str],
        data: Iterable[Sequence[Any]] = (),
    ) -> "Relation":
        """Build a base relation; each row gets a unique virtual id.

        The virtual attribute is named ``#<name>`` and carries values
        ``(name, i)``, globally unique across differently named bases.
        """
        schema = Schema(attrs)
        vid = virtual_attr(name)
        rows = []
        for i, values in enumerate(data):
            if len(values) != len(schema):
                raise SchemaError(
                    f"row {values!r} has {len(values)} values, "
                    f"schema {schema} has {len(schema)}"
                )
            mapping = dict(zip(schema.attrs, values))
            mapping[vid] = (name, i)
            rows.append(Row(mapping))
        return Relation(schema, Schema([vid]), rows)

    @staticmethod
    def from_mappings(
        real: Iterable[str],
        virtual: Iterable[str],
        mappings: Iterable[Mapping[str, Any]],
    ) -> "Relation":
        real = Schema(real)
        virtual = Schema(virtual)
        rows = [Row(m) for m in mappings]
        return Relation(real, virtual, rows)

    # ---- accessors ----

    @property
    def real(self) -> Schema:
        return self._real

    @property
    def virtual(self) -> Schema:
        return self._virtual

    @property
    def rows(self) -> tuple[Row, ...]:
        # Subclasses may materialize lazily (repro.relalg.pages); the
        # derivation helpers below therefore go through this property,
        # never through ``_rows`` directly.
        return self._rows

    @property
    def all_attrs(self) -> Schema:
        return self._real.concat(self._virtual)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (
            f"Relation(real={list(self._real)}, virtual={list(self._virtual)}, "
            f"rows={len(self)})"
        )

    # ---- derivation helpers (used by the operator modules) ----

    def with_rows(self, rows: Iterable[Row]) -> "Relation":
        return Relation(self._real, self._virtual, rows)

    def real_tuples(self) -> Counter:
        """Multiset of real-attribute value tuples (virtuals dropped).

        This is the observable content of the relation: two plans are
        equivalent iff their results agree on this multiset.
        """
        order = self._real.attrs
        return Counter(row.values_tuple(order) for row in self.rows)

    def same_content(self, other: "Relation") -> bool:
        """True when both relations hold the same bag of real rows.

        Attribute *sets* must agree; column order is irrelevant.
        """
        if self._real.as_set() != other._real.as_set():
            return False
        order = self._real.attrs
        mine = Counter(row.values_tuple(order) for row in self.rows)
        theirs = Counter(row.values_tuple(order) for row in other.rows)
        return mine == theirs

    def sorted_rows(self) -> list[Row]:
        """Rows in a stable display order (NULLs sort last).

        Uses the shared ordering convention from
        :mod:`repro.relalg.ordering` -- the same total order the Sort
        operator and the CLI ORDER BY fallback apply, so a displayed
        relation and a sorted one can never disagree on placement.
        """
        from repro.relalg.ordering import attr_key_fn

        keys = tuple((attr, False) for attr in self._real.attrs)
        return sorted(self.rows, key=attr_key_fn(keys))

    def to_text(
        self, include_virtual: bool = False, preserve_order: bool = False
    ) -> str:
        """Render as an aligned ASCII table (used by benches/examples).

        Rows print in a stable display order unless ``preserve_order``
        is set (e.g. after an ORDER BY was applied).
        """
        attrs = list(self._real)
        if include_virtual:
            attrs += list(self._virtual)

        def fmt(value: Any) -> str:
            return "-" if is_null(value) else str(value)

        header = attrs
        rows = list(self.rows) if preserve_order else self.sorted_rows()
        body = [[fmt(row[a]) for a in attrs] for row in rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body), 1)
            if body
            else len(header[i])
            for i in range(len(attrs))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)


def pad_row(row: Row, target: Schema | Iterable[str]) -> Row:
    """Null-pad ``row`` to the attribute set ``target``."""
    return Row({a: row[a] if a in row else NULL for a in target})
