"""SQL NULL and three-valued logic.

The paper assumes every predicate is *null in-tolerant* (footnote 2):
a predicate evaluates to FALSE for any row carrying a NULL in one of
the predicate's attributes.  We obtain exactly that behaviour by
evaluating comparisons under SQL three-valued logic and qualifying a
row only when the predicate is :data:`Truth.TRUE`.
"""

from __future__ import annotations

import enum
from typing import Any


class NullType:
    """Singleton marker for the SQL NULL value.

    NULL compares unequal to every ordinary value under three-valued
    logic, but the singleton is *identical to itself*, which is what
    row identity (virtual attributes, set difference in Definition 2.1)
    requires.
    """

    _instance: "NullType | None" = None

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.relalg.NULL")

    def __bool__(self) -> bool:
        return False

    # NULL is equal to NULL as a *Python value* (so rows hash and
    # compare structurally); SQL comparison semantics live in
    # :func:`compare`, never here.
    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullType)

    def __ne__(self, other: object) -> bool:
        return not isinstance(other, NullType)

    def __reduce__(self):
        return (NullType, ())


NULL = NullType()


def is_null(value: Any) -> bool:
    """Return True when ``value`` is the SQL NULL marker."""
    return isinstance(value, NullType)


class Truth(enum.Enum):
    """SQL three-valued logic truth values."""

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    def __bool__(self) -> bool:
        # A row qualifies only on TRUE; UNKNOWN rejects, which is what
        # makes every predicate null-intolerant.
        return self is Truth.TRUE

    def and_(self, other: "Truth") -> "Truth":
        return Truth(min(self.value, other.value))

    def or_(self, other: "Truth") -> "Truth":
        return Truth(max(self.value, other.value))

    def not_(self) -> "Truth":
        if self is Truth.UNKNOWN:
            return Truth.UNKNOWN
        return Truth.TRUE if self is Truth.FALSE else Truth.FALSE

    @staticmethod
    def of(value: bool) -> "Truth":
        return Truth.TRUE if value else Truth.FALSE


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

COMPARISON_OPERATORS = tuple(_COMPARATORS)


def compare(left: Any, op: str, right: Any) -> Truth:
    """Compare two values under SQL three-valued logic.

    Any comparison involving NULL is UNKNOWN.  ``op`` is one of
    ``= <> != < <= > >=`` (the paper's theta set).
    """
    if is_null(left) or is_null(right):
        return Truth.UNKNOWN
    try:
        fn = _COMPARATORS[op]
    except KeyError:
        raise ValueError(f"unknown comparison operator: {op!r}") from None
    return Truth.of(bool(fn(left, right)))
