"""Relational algebra substrate with SQL NULL semantics.

This package implements the formal model of Section 1.2 of the paper:
relations are triples ``<R, V, E>`` of a real-attribute schema ``R``,
a set of *virtual* attributes ``V`` (row identifiers), and an extension
``E`` (a bag of rows).  On top of it live every operator the paper
uses -- selection, projection, cartesian product, (outer) union,
difference, inner/semi/anti joins, left/right/full outer joins,
generalized projection (GROUP BY with aggregates, Section 1.2) and the
paper's novel generalized selection (Definition 2.1).
"""

from repro.relalg.nulls import NULL, Truth, is_null
from repro.relalg.schema import Schema
from repro.relalg.row import Row
from repro.relalg.relation import Relation
from repro.relalg.operators import (
    select,
    project,
    product,
    union,
    outer_union,
    difference,
    rename,
)
from repro.relalg.joins import (
    join,
    semi_join,
    anti_join,
    left_outer_join,
    right_outer_join,
    full_outer_join,
)
from repro.relalg.aggregates import (
    AggregateFunction,
    AggregateSpec,
    count_star,
    count,
    count_distinct,
    sum_,
    sum_distinct,
    avg,
    avg_distinct,
    min_,
    max_,
)
from repro.relalg.columnar import ColumnarRelation
from repro.relalg.generalized_projection import generalized_projection
from repro.relalg.generalized_selection import PreservedSpec, generalized_selection
from repro.relalg.ordering import sort_rows, top_n_rows, value_key
from repro.relalg.streaming import (
    streaming_generalized_projection,
    streaming_generalized_selection,
)

__all__ = [
    "ColumnarRelation",
    "NULL",
    "Truth",
    "is_null",
    "Schema",
    "Row",
    "Relation",
    "select",
    "project",
    "product",
    "union",
    "outer_union",
    "difference",
    "rename",
    "join",
    "semi_join",
    "anti_join",
    "left_outer_join",
    "right_outer_join",
    "full_outer_join",
    "AggregateFunction",
    "AggregateSpec",
    "count_star",
    "count",
    "count_distinct",
    "sum_",
    "sum_distinct",
    "avg",
    "avg_distinct",
    "min_",
    "max_",
    "generalized_projection",
    "PreservedSpec",
    "generalized_selection",
    "sort_rows",
    "top_n_rows",
    "value_key",
    "streaming_generalized_projection",
    "streaming_generalized_selection",
]
