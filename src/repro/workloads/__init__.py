"""Workload generators: random databases, query topologies, scenarios."""

from repro.workloads.random_db import (
    random_database,
    random_join_query,
    small_domain_rows,
)
from repro.workloads.topologies import chain_query, star_query
from repro.workloads.supplier import supplier_database, supplier_query

__all__ = [
    "random_database",
    "random_join_query",
    "small_domain_rows",
    "chain_query",
    "star_query",
    "supplier_database",
    "supplier_query",
]
