"""TPC-H-lite: a small decision-support schema and query set.

A scaled-down customer/orders/lineitem/supplier schema whose queries
live squarely in the paper's territory: outer joins against
aggregating views, GROUP BY over join results, and correlated COUNT
subqueries.  Query 1 below is the shape of TPC-H's Q13 (customer
order-count distribution), the best-known production query that needs
exactly the outer-join + aggregation reordering this library provides.
"""

from __future__ import annotations

import random

from repro.expr.evaluate import Database
from repro.relalg import Relation
from repro.sql import SqlCatalog

CATALOG_TABLES = {
    "customer": ("c_key", "c_name", "c_nation", "c_segment"),
    "orders": ("o_key", "o_custkey", "o_status", "o_total"),
    "lineitem": ("l_key", "l_orderkey", "l_suppkey", "l_qty", "l_price"),
    "supplier": ("s_key", "s_name", "s_nation"),
}


def tpch_lite_catalog() -> SqlCatalog:
    return SqlCatalog(dict(CATALOG_TABLES))


def tpch_lite_database(
    rng: random.Random,
    customers: int = 30,
    orders_per_customer: float = 2.0,
    lines_per_order: float = 2.0,
    suppliers: int = 8,
    nations: int = 4,
) -> Database:
    """Generate the four tables at the given (fractional) fan-outs.

    A fraction of customers place no orders and a fraction of orders
    carry no line items, so the outer-join paths are exercised.
    """
    segments = ("BUILDING", "MACHINERY", "AUTOMOBILE")
    customer_rows = [
        (
            c,
            f"cust-{c}",
            rng.randrange(nations),
            rng.choice(segments),
        )
        for c in range(customers)
    ]
    order_rows = []
    o_key = 0
    for c in range(customers):
        if rng.random() < 0.2:
            continue  # customers without orders (Q13's point)
        for _ in range(max(1, round(rng.expovariate(1 / orders_per_customer)))):
            order_rows.append(
                (o_key, c, rng.choice("OFP"), rng.randint(10, 500))
            )
            o_key += 1
    line_rows = []
    l_key = 0
    for (okey, _, _, _) in order_rows:
        if rng.random() < 0.15:
            continue  # orders without line items
        for _ in range(max(1, round(rng.expovariate(1 / lines_per_order)))):
            line_rows.append(
                (
                    l_key,
                    okey,
                    rng.randrange(suppliers),
                    rng.randint(1, 20),
                    rng.randint(1, 100),
                )
            )
            l_key += 1
    supplier_rows = [
        (s, f"supp-{s}", rng.randrange(nations)) for s in range(suppliers)
    ]
    db = Database()
    for name, rows in (
        ("customer", customer_rows),
        ("orders", order_rows),
        ("lineitem", line_rows),
        ("supplier", supplier_rows),
    ):
        db.add(name, Relation.base(name, list(CATALOG_TABLES[name]), rows))
    return db


# -- the query set (SQL scripts; the last statement is the query) --

Q13_CUSTOMER_DISTRIBUTION = """
create view cust_orders as
  select c.c_key as ckey, n = count(o.o_key)
  from customer c left outer join orders o on c.c_key = o.o_custkey
  group by c.c_key;
select n, custdist = count(*)
from cust_orders
group by n;
"""

SUPPLIER_VOLUME_VIEW = """
create view supp_volume as
  select l_suppkey as skey, vol = count(*)
  from lineitem
  group by l_suppkey;
select s.s_name, supp_volume.vol
from supplier s left outer join supp_volume
  on s.s_key = supp_volume.skey and s.s_nation < 2 * supp_volume.vol;
"""

BIG_CUSTOMERS_NESTED = """
select c_name from customer
where c_nation < (select count(*) from orders
                  where orders.o_custkey = customer.c_key);
"""

NATION_FLOW = """
select s.s_name, c.c_name
from ((customer c join orders o on c.c_key = o.o_custkey)
      join lineitem l on o.o_key = l.l_orderkey)
     join supplier s on l.l_suppkey = s.s_key
where c.c_segment = 'BUILDING' and s.s_nation = 0;
"""

SEGMENT_LINES_COMPLEX = """
select c.c_name, o.o_total, l.l_qty
from (customer c left outer join orders o on c.c_key = o.o_custkey)
     left outer join lineitem l
       on o.o_key = l.l_orderkey and c.c_nation < l.l_qty;
"""

ALL_QUERIES = {
    "q13_distribution": Q13_CUSTOMER_DISTRIBUTION,
    "supplier_volume": SUPPLIER_VOLUME_VIEW,
    "big_customers_nested": BIG_CUSTOMERS_NESTED,
    "nation_flow": NATION_FLOW,
    "segment_lines_complex": SEGMENT_LINES_COMPLEX,
}
