"""Scalable data generator for the join-aggregate workload (bench X5)."""

from __future__ import annotations

import random

from repro.expr.evaluate import Database
from repro.relalg import Relation


def nested_query_database(
    rng: random.Random,
    n_r1: int,
    n_r2: int = 60,
    n_r3: int = 60,
    domain: int = 8,
) -> Database:
    """Data for the Section 1.1 doubly nested query.

    ``n_r1`` is the sweep knob: TIS cost grows with |r1| x |r2| x |r3|
    while the unnested plans grow roughly linearly in the inputs.
    ``domain`` controls correlation-match selectivity.
    """

    def val() -> int:
        return rng.randrange(domain)

    r1_rows = [
        (i, f"a{i}", rng.randrange(4), val(), val()) for i in range(n_r1)
    ]
    r2_rows = [(i, val(), rng.randrange(4), val()) for i in range(n_r2)]
    r3_rows = [(i, val(), val()) for i in range(n_r3)]
    db = Database()
    db.add(
        "r1",
        Relation.base("r1", ["r1_key", "r1_a", "r1_b", "r1_c", "r1_f"], r1_rows),
    )
    db.add("r2", Relation.base("r2", ["r2_key", "r2_c", "r2_d", "r2_e"], r2_rows))
    db.add("r3", Relation.base("r3", ["r3_key", "r3_e", "r3_f"], r3_rows))
    return db
