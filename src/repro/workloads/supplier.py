"""The motivating supplier scenario (Example 1.1).

Relations (attribute names prefixed for global uniqueness):

* ``agg94``  -- ``(agg94_supkey, agg94_partkey, agg94_qty)``:
  aggregated 1994 volumes, relatively small;
* ``detail95`` -- ``(d95_supkey, d95_partkey, d95_date, d95_qty)``:
  the large 1995 transaction log;
* ``supdetail`` -- ``(sup_supkey, sup_rating, sup_info)``.

The analyst's query (views V2 and V3 of the paper):

    V2 = σ_{sup_rating='BANKRUPT'}(agg94 ⋈ supdetail)
    V3 = π_{d95_supkey, d95_partkey, qty95=count(*)}(detail95)
    Q  = V2 →[supkey= ∧ partkey= ∧ agg94_qty < 2*qty95] V3

Executed as written, the aggregation over the whole of ``detail95``
runs first; if few suppliers are bankrupt, joining first and
aggregating at the root wins -- the claim bench X4 quantifies.
"""

from __future__ import annotations

import random

from repro.expr.evaluate import Database
from repro.expr.nodes import BaseRel, Expr, GroupBy, Join, JoinKind, Select
from repro.expr.predicates import (
    Arith,
    Col,
    Comparison,
    Const,
    eq,
    make_conjunction,
)
from repro.relalg.aggregates import count_star
from repro.relalg.relation import Relation

AGG94 = BaseRel("agg94", ("agg94_supkey", "agg94_partkey", "agg94_qty"))
DETAIL95 = BaseRel("detail95", ("d95_supkey", "d95_partkey", "d95_date", "d95_qty"))
SUPDETAIL = BaseRel("supdetail", ("sup_supkey", "sup_rating", "sup_info"))


def supplier_database(
    rng: random.Random,
    n_suppliers: int = 20,
    n_parts: int = 10,
    detail_rows: int = 400,
    bankrupt_fraction: float = 0.2,
) -> Database:
    """Synthetic data for the scenario.

    ``bankrupt_fraction`` controls the selectivity of the
    ``SUPRATING = 'BANKRUPT'`` filter -- the knob the paper's cost
    argument turns.
    """
    n_bankrupt = max(0, round(n_suppliers * bankrupt_fraction))
    ratings = ["BANKRUPT"] * n_bankrupt + ["GOOD"] * (n_suppliers - n_bankrupt)
    rng.shuffle(ratings)
    sup_rows = [
        (s, ratings[s], f"supplier-{s}") for s in range(n_suppliers)
    ]
    agg_rows = []
    for s in range(n_suppliers):
        for p in rng.sample(range(n_parts), k=max(1, n_parts // 2)):
            agg_rows.append((s, p, rng.randint(1, 100)))
    detail_rows_data = [
        (
            rng.randrange(n_suppliers),
            rng.randrange(n_parts),
            rng.randint(1, 365),
            rng.randint(1, 20),
        )
        for _ in range(detail_rows)
    ]
    db = Database()
    db.add("agg94", Relation.base("agg94", list(AGG94.attrs), agg_rows))
    db.add(
        "detail95", Relation.base("detail95", list(DETAIL95.attrs), detail_rows_data)
    )
    db.add("supdetail", Relation.base("supdetail", list(SUPDETAIL.attrs), sup_rows))
    return db


def supplier_query(qty_attr: str = "qty95") -> Expr:
    """The Example 1.1 query, as written (aggregation before the join)."""
    v2 = Select(
        Join(
            JoinKind.INNER,
            AGG94,
            SUPDETAIL,
            eq("agg94_supkey", "sup_supkey"),
        ),
        Comparison(Col("sup_rating"), "=", Const("BANKRUPT")),
    )
    v3 = GroupBy(
        DETAIL95,
        ("d95_supkey", "d95_partkey"),
        (count_star(qty_attr),),
        "v3",
    )
    on = make_conjunction(
        [
            eq("agg94_supkey", "d95_supkey"),
            eq("agg94_partkey", "d95_partkey"),
            Comparison(
                Col("agg94_qty"),
                "<",
                Arith(Const(2), "*", Col(qty_attr)),
            ),
        ]
    )
    return Join(JoinKind.LEFT, v2, v3, on)
