"""Randomized databases and join queries for equivalence testing.

The master soundness invariant of the library is checked against
these: every plan the enumerator emits must evaluate to the same bag
of rows as the original query on randomized inputs.  Small value
domains maximize the chance of exercising matches, mismatches and
padding simultaneously; zero-row relations are generated on purpose
(empty operands break many folklore outer-join identities).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.expr.evaluate import Database
from repro.expr.nodes import BaseRel, Expr, Join, JoinKind
from repro.expr.predicates import Comparison, Col, Predicate, make_conjunction
from repro.relalg.nulls import NULL
from repro.relalg.relation import Relation


def small_domain_rows(
    rng: random.Random,
    n_attrs: int,
    max_rows: int = 3,
    domain: Sequence[object] = (1, 2),
    null_probability: float = 0.0,
    min_rows: int = 0,
) -> list[tuple]:
    """Rows over a small domain, optionally salted with NULLs."""
    n_rows = rng.randint(min_rows, max_rows)
    rows = []
    for _ in range(n_rows):
        row = tuple(
            NULL
            if rng.random() < null_probability
            else rng.choice(domain)
            for _ in range(n_attrs)
        )
        rows.append(row)
    return rows


def random_database(
    rng: random.Random,
    rel_names: Sequence[str],
    attrs_per_rel: int = 2,
    max_rows: int = 3,
    null_probability: float = 0.1,
    min_rows: int = 0,
) -> Database:
    """A database over ``rel_names`` with attributes ``a<i>_<name>``."""
    db = Database()
    for name in rel_names:
        attrs = [f"{name}_a{i}" for i in range(attrs_per_rel)]
        rows = small_domain_rows(
            rng,
            attrs_per_rel,
            max_rows=max_rows,
            null_probability=null_probability,
            min_rows=min_rows,
        )
        db.add(name, Relation.base(name, attrs, rows))
    return db


def _rel(name: str, attrs_per_rel: int) -> BaseRel:
    return BaseRel(name, tuple(f"{name}_a{i}" for i in range(attrs_per_rel)))


def random_join_query(
    rng: random.Random,
    n_relations: int,
    attrs_per_rel: int = 2,
    outer_probability: float = 0.5,
    complex_probability: float = 0.3,
    ops: Sequence[str] = ("=", "<", "<>"),
) -> Expr:
    """A random connected (outer) join tree over ``r1..rn``.

    Built bottom-up: operands are merged pairwise with a predicate
    joining a random attribute of each side; with
    ``complex_probability`` an extra conjunct referencing a third
    relation is added, producing a complex predicate.
    """
    forest: list[Expr] = [
        _rel(f"r{i + 1}", attrs_per_rel) for i in range(n_relations)
    ]
    rng.shuffle(forest)
    while len(forest) > 1:
        left = forest.pop()
        right = forest.pop()
        atoms = [_random_atom(rng, left, right, ops)]
        if len(left.base_names | right.base_names) > 2 and (
            rng.random() < complex_probability
        ):
            atoms.append(_random_atom(rng, left, right, ops))
        predicate = make_conjunction(atoms)
        kind = _random_kind(rng, outer_probability)
        forest.append(Join(kind, left, right, predicate))
        rng.shuffle(forest)
    return forest[0]


def _random_atom(
    rng: random.Random, left: Expr, right: Expr, ops: Sequence[str]
) -> Predicate:
    la = rng.choice([a for a in left.real_attrs])
    ra = rng.choice([a for a in right.real_attrs])
    return Comparison(Col(la), rng.choice(list(ops)), Col(ra))


def _random_kind(rng: random.Random, outer_probability: float) -> JoinKind:
    if rng.random() >= outer_probability:
        return JoinKind.INNER
    return rng.choice((JoinKind.LEFT, JoinKind.RIGHT, JoinKind.FULL))
