"""Parametric query topologies: chains and stars.

Used by the plan-space (X6) and enumeration-scaling (X7) benches.
Each relation ``r<i>`` has attributes ``r<i>_a0, r<i>_a1``; predicates
are equalities between adjacent relations.
"""

from __future__ import annotations

from typing import Sequence

from repro.expr.nodes import BaseRel, Expr, Join, JoinKind
from repro.expr.predicates import eq, make_conjunction


def _rel(i: int) -> BaseRel:
    return BaseRel(f"r{i}", (f"r{i}_a0", f"r{i}_a1"))


def chain_query(
    n: int,
    kinds: Sequence[JoinKind] | None = None,
    complex_every: int = 0,
) -> Expr:
    """A left-deep chain ``((r1 ⊙ r2) ⊙ r3) ⊙ ...``.

    ``kinds[i]`` is the operator joining ``r<i+2>``; defaults to all
    inner.  With ``complex_every = k > 0`` every k-th join predicate
    gains an extra conjunct reaching back to the previous relation,
    making it complex.
    """
    if n < 2:
        raise ValueError("chain needs at least two relations")
    kinds = tuple(kinds) if kinds else (JoinKind.INNER,) * (n - 1)
    if len(kinds) != n - 1:
        raise ValueError(f"need {n - 1} operators for a chain of {n}")
    expr: Expr = _rel(1)
    for i in range(2, n + 1):
        atoms = [eq(f"r{i - 1}_a1", f"r{i}_a0")]
        if complex_every and i > 2 and (i % complex_every == 0):
            atoms.append(eq(f"r{i - 2}_a1", f"r{i}_a1"))
        expr = Join(kinds[i - 2], expr, _rel(i), make_conjunction(atoms))
    return expr


def star_query(
    n_satellites: int,
    kinds: Sequence[JoinKind] | None = None,
) -> Expr:
    """A star: hub ``r0`` joined with satellites ``r1..rn``.

    The hub relation gets one attribute per satellite so predicates
    stay independent.
    """
    hub_attrs = tuple(f"r0_a{i}" for i in range(max(1, n_satellites)))
    hub: Expr = BaseRel("r0", hub_attrs)
    kinds = tuple(kinds) if kinds else (JoinKind.INNER,) * n_satellites
    if len(kinds) != n_satellites:
        raise ValueError(f"need {n_satellites} operators")
    expr = hub
    for i in range(1, n_satellites + 1):
        expr = Join(
            kinds[i - 1], expr, _rel(i), eq(f"r0_a{i - 1}", f"r{i}_a0")
        )
    return expr
