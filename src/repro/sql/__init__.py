"""SQL front-end: the subset the paper's queries are written in.

Supported grammar (case-insensitive keywords):

* ``SELECT [DISTINCT] item [, item ...]`` where an item is ``*``, a
  (qualified) column, or an aggregate ``COUNT(*) | COUNT([DISTINCT] c)
  | SUM | MIN | MAX | AVG``, each with an optional ``AS alias``;
* ``FROM`` comma-separated table references; a reference is a table
  (or view) name with an optional alias, a parenthesized subquery with
  an alias, or a ``[LEFT|RIGHT|FULL] [OUTER] JOIN ... ON ...`` chain;
* ``WHERE`` / ``ON`` / ``HAVING``: conjunctions of comparisons between
  columns, literals and arithmetic (``+ - *``) terms, plus correlated
  scalar ``COUNT`` subqueries (``expr θ (SELECT COUNT(*) ...)``) in
  ``WHERE``, which the translator routes to the unnesting machinery;
* ``GROUP BY`` column lists and ``CREATE VIEW name AS ...``.
"""

from repro.sql.lexer import SqlLexError, tokenize
from repro.sql.parser import SqlParseError, parse_select, parse_statements
from repro.sql.catalog import SqlCatalog
from repro.sql.translate import SqlTranslationError, translate

__all__ = [
    "SqlLexError",
    "tokenize",
    "SqlParseError",
    "parse_select",
    "parse_statements",
    "SqlCatalog",
    "SqlTranslationError",
    "translate",
]
