"""Tokenizer for the SQL subset."""

from __future__ import annotations

from repro.errors import UserInputError

from dataclasses import dataclass

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "by",
    "having",
    "as",
    "on",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "outer",
    "and",
    "count",
    "sum",
    "min",
    "max",
    "avg",
    "create",
    "view",
    "is",
    "null",
    "not",
    "in",
    "between",
    "order",
    "limit",
    "asc",
    "desc",
    "exists",
    "union",
    "all",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*", "+", "-", ";")


class SqlLexError(UserInputError):
    """Raised on unrecognized input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'kw', 'ident', 'number', 'string', 'symbol', 'eof'
    value: str
    position: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; keywords are lowercased, identifiers kept."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise SqlLexError(f"unterminated string at {i}")
            tokens.append(Token("string", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("kw", lowered, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("symbol", symbol, i))
                i += len(symbol)
                break
        else:
            raise SqlLexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", "", n))
    return tokens
