"""SQL AST -> logical algebra translation.

Naming discipline: every FROM-clause binding ``b`` exposing column
``c`` contributes the internal attribute ``b_c`` (base tables via a
Rename over the physical columns; views and subqueries via a Rename
over their translated output).  WHERE conjuncts are pushed to the
deepest join that covers them, so comma-separated FROM lists become
predicate-bearing join trees the reordering machinery can work on.

Correlated scalar COUNT subqueries in WHERE are recognized and routed
through :mod:`repro.core.unnest` (the Ganski/Muralikrishna rewrite),
which is where the paper's join-aggregate motivation enters.
"""

from __future__ import annotations

from repro.errors import UserInputError

import itertools

from repro.expr.nodes import (
    BaseRel,
    Expr,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    SemiJoin,
)
from repro.expr.predicates import (
    Arith,
    Col,
    Comparison,
    Const,
    Predicate,
    Term,
    conjuncts_of,
    make_conjunction,
)
from repro.relalg.aggregates import AggregateFunction, AggregateSpec
from repro.sql.ast import (
    AggregateCall,
    AndExpr,
    ExistsExpr,
    InListExpr,
    IsNullExpr,
    ArithExpr,
    BooleanExpr,
    ColumnRef,
    ComparisonExpr,
    FromItem,
    JoinRef,
    Literal,
    Scalar,
    SelectItem,
    SelectStmt,
    SubqueryRef,
    SubquerySelect,
    TableRef,
    UnionStmt,
)
from repro.sql.catalog import SqlCatalog


class SqlTranslationError(UserInputError):
    """Raised when a statement cannot be translated."""


def _join(kind: JoinKind, left: Expr, right: Expr, predicate: Predicate) -> Join:
    """Join two translated FROM items, surfacing self-join misuse."""
    from repro.expr.nodes import ExprError

    try:
        return Join(kind, left, right, predicate)
    except ExprError as exc:
        raise SqlTranslationError(
            f"{exc}; the paper assumes relations occurring twice are "
            "renamed (footnote 5) -- materialize an aliased copy"
        ) from None


_JOIN_KINDS = {
    "inner": JoinKind.INNER,
    "left": JoinKind.LEFT,
    "right": JoinKind.RIGHT,
    "full": JoinKind.FULL,
}

_AGG_FUNCTIONS = {
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
    "avg": AggregateFunction.AVG,
}

_fresh = itertools.count()


class Scope:
    """Resolves column references to internal attribute names."""

    def __init__(self) -> None:
        self._by_binding: dict[str, dict[str, str]] = {}

    def bind(self, binding: str, columns: dict[str, str]) -> None:
        key = binding.lower()
        if key in self._by_binding:
            raise SqlTranslationError(f"duplicate FROM binding {binding!r}")
        self._by_binding[key] = {c.lower(): a for c, a in columns.items()}

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            table = ref.table.lower()
            if table not in self._by_binding:
                raise SqlTranslationError(f"unknown qualifier {ref.table!r}")
            columns = self._by_binding[table]
            if ref.column.lower() not in columns:
                raise SqlTranslationError(
                    f"no column {ref.column!r} in {ref.table!r}"
                )
            return columns[ref.column.lower()]
        matches = sorted(
            {
                columns[ref.column.lower()]
                for columns in self._by_binding.values()
                if ref.column.lower() in columns
            }
        )
        if not matches:
            raise SqlTranslationError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise SqlTranslationError(f"ambiguous column {ref.column!r}")
        return matches[0]

    def bindings(self) -> tuple[str, ...]:
        return tuple(self._by_binding)

    def columns_of(self, binding: str) -> dict[str, str]:
        return dict(self._by_binding[binding.lower()])


class Translation:
    """Result of translating a SELECT: the tree plus its output columns.

    ``order_by`` is a presentation directive ((attribute, descending)
    pairs) and ``limit`` a row cap; relations are bags, so ordering is
    applied by the consumer (the CLI does), not by the algebra.
    """

    def __init__(
        self,
        expr: Expr,
        columns: list[tuple[str, str]],
        order_by: tuple[tuple[str, bool], ...] = (),
        limit: int | None = None,
    ) -> None:
        self.expr = expr
        self.columns = columns  # (exposed name, internal attribute)
        self.order_by = order_by
        self.limit = limit

    def exposed(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)


def translate(
    statement,
    catalog: SqlCatalog,
    _expanding: frozenset[str] = frozenset(),
) -> Translation:
    """Translate a SELECT or UNION ALL statement against ``catalog``.

    ``_expanding`` tracks the views currently being expanded so view
    cycles fail with a clear error instead of infinite recursion.
    """
    if isinstance(statement, UnionStmt):
        return _translate_union(statement, catalog, _expanding)
    scope = Scope()
    trees: list[Expr] = []
    for item in statement.from_items:
        trees.append(_translate_from_item(item, catalog, scope, _expanding))
    tree = trees[0]
    for extra in trees[1:]:
        tree = _join(JoinKind.INNER, tree, extra, make_conjunction([]))

    where_atoms: list[Predicate] = []
    if statement.where is not None:
        nested = _extract_nested_counts(statement.where)
        if nested is not None:
            return _translate_nested(statement, catalog, scope, tree)
        plain_atoms = []
        for atom in _flatten_boolean(statement.where):
            if isinstance(atom, ExistsExpr):
                tree = _apply_exists(atom, tree, catalog, scope, _expanding)
            else:
                plain_atoms.append(atom)
        where_atoms = [_boolean_atom(atom, scope) for atom in plain_atoms]
        tree = _embed_where(tree, where_atoms)

    return _apply_select(statement, catalog, scope, tree)


def _apply_select(
    statement: SelectStmt, catalog: SqlCatalog, scope: Scope, tree: Expr
) -> Translation:
    aggregates = [
        item
        for item in statement.items
        if isinstance(item.expression, AggregateCall)
    ]
    if statement.group_by or aggregates:
        tree, columns = _translate_group_by(statement, scope, tree)
    else:
        columns = []
        attrs = []
        for item in statement.items:
            if item.expression == "*":
                for binding in scope.bindings():
                    for column, attr in scope.columns_of(binding).items():
                        columns.append((column, attr))
                        attrs.append(attr)
                continue
            if not isinstance(item.expression, ColumnRef):
                raise SqlTranslationError(
                    "non-aggregate SELECT items must be columns"
                )
            attr = scope.resolve(item.expression)
            columns.append((item.alias or item.expression.column, attr))
            attrs.append(attr)
        tree = Project(tree, tuple(dict.fromkeys(attrs)), distinct=statement.distinct)
    if statement.having is not None:
        having_scope = Scope()
        for binding in scope.bindings():
            having_scope.bind(binding, scope.columns_of(binding))
        # HAVING may reference the SELECT list's output names
        having_scope.bind("@out", {name: attr for name, attr in columns})
        having = make_conjunction(
            [
                _boolean_atom(a, having_scope)
                for a in _flatten_boolean(statement.having)
            ]
        )
        tree = Select(tree, having)
    order_by = []
    if statement.order_by:
        order_scope = Scope()
        for binding in scope.bindings():
            order_scope.bind(binding, scope.columns_of(binding))
        order_scope.bind("@out", {name: attr for name, attr in columns})
        seen_keys: set[str] = set()
        for ref, descending in statement.order_by:
            attr = order_scope.resolve(ref)
            if attr not in set(tree.real_attrs):
                raise SqlTranslationError(
                    f"ORDER BY column {ref} is not in the result"
                )
            if attr in seen_keys:
                # a repeated key cannot refine the order further; the
                # first occurrence (with its direction) wins
                continue
            seen_keys.add(attr)
            order_by.append((attr, descending))
    return Translation(tree, columns, tuple(order_by), statement.limit)


def _translate_union(
    statement: UnionStmt, catalog: SqlCatalog, _expanding: frozenset[str]
) -> Translation:
    """UNION ALL: align the right side's columns with the left's."""
    from repro.expr.nodes import UnionAll

    left = translate(statement.left, catalog, _expanding)
    right = translate(statement.right, catalog, _expanding)
    left_names = [name.lower() for name in left.exposed()]
    right_names = [name.lower() for name in right.exposed()]
    if left_names != right_names:
        raise SqlTranslationError(
            f"UNION ALL column lists differ: {left_names} vs {right_names}"
        )
    keep = tuple(dict.fromkeys(attr for _, attr in right.columns))
    narrowed = Project(right.expr, keep)
    mapping = tuple(
        (r_attr, l_attr)
        for (_, l_attr), (_, r_attr) in zip(left.columns, right.columns)
        if l_attr != r_attr
    )
    aligned = Rename(narrowed, mapping) if mapping else narrowed
    from repro.expr.nodes import ExprError

    try:
        union = UnionAll(left.expr, aligned)
    except ExprError as exc:
        raise SqlTranslationError(
            f"{exc}; rename one side's relations (footnote 5)"
        ) from None
    return Translation(union, left.columns)


def _apply_exists(
    atom: ExistsExpr,
    tree: Expr,
    catalog: SqlCatalog,
    outer_scope: Scope,
    _expanding: frozenset[str],
) -> Expr:
    """Turn ``[NOT] EXISTS (SELECT ... WHERE corr)`` into a semi/anti join.

    The subquery's FROM items translate normally (with their own
    bindings); its WHERE atoms may reference the outer scope -- those
    correlation atoms become the semi-join predicate, the rest embed
    inside the subquery tree.
    """
    sub = atom.query
    if sub.group_by or sub.having is not None:
        raise SqlTranslationError("EXISTS subqueries may not aggregate")
    sub_scope = Scope()
    sub_trees = [
        _translate_from_item(item, catalog, sub_scope, _expanding)
        for item in sub.from_items
    ]
    sub_tree = sub_trees[0]
    for extra in sub_trees[1:]:
        sub_tree = _join(JoinKind.INNER, sub_tree, extra, make_conjunction([]))

    correlation: list[Predicate] = []
    local: list[Predicate] = []
    if sub.where is not None:
        sub_attrs = set(sub_tree.all_attrs)
        for part in _flatten_boolean(sub.where):
            if isinstance(part, ExistsExpr):
                raise SqlTranslationError("nested EXISTS is not supported")
            resolved = _boolean_atom_two_scopes(part, sub_scope, outer_scope)
            if resolved.attrs <= sub_attrs:
                local.append(resolved)
            else:
                correlation.append(resolved)
    if local:
        sub_tree = _embed_where(sub_tree, local)
    if not correlation:
        raise SqlTranslationError(
            "EXISTS subquery must be correlated with the outer query"
        )
    return SemiJoin(tree, sub_tree, make_conjunction(correlation), atom.negated)


def _boolean_atom_two_scopes(atom, inner_scope: Scope, outer_scope: Scope) -> Predicate:
    """Resolve an atom against the subquery scope, then the outer one."""

    class _Chained:
        def resolve(self, ref):
            try:
                return inner_scope.resolve(ref)
            except SqlTranslationError:
                return outer_scope.resolve(ref)

        def bindings(self):
            return inner_scope.bindings() + outer_scope.bindings()

        def columns_of(self, binding):
            try:
                return inner_scope.columns_of(binding)
            except KeyError:
                return outer_scope.columns_of(binding)

    return _boolean_atom(atom, _Chained())


def _translate_from_item(
    item: FromItem,
    catalog: SqlCatalog,
    scope: Scope,
    _expanding: frozenset[str] = frozenset(),
) -> Expr:
    if isinstance(item, TableRef):
        if catalog.is_view(item.name):
            key = item.name.lower()
            if key in _expanding:
                raise SqlTranslationError(
                    f"view {item.name!r} is defined in terms of itself"
                )
            view_stmt = catalog.view_query(item.name)
            if view_stmt.order_by or view_stmt.limit is not None:
                raise SqlTranslationError(
                    f"view {item.name!r} may not carry ORDER BY / LIMIT"
                )
            view = translate(view_stmt, catalog, _expanding | {key})
            return _bind_translation(view, item.binding, scope)
        columns = catalog.table_columns(item.name)
        binding = item.binding
        mapping = {c: f"{binding}_{c}".lower() for c in columns}
        scope.bind(binding, mapping)
        base = BaseRel(item.name, tuple(columns))
        return Rename(base, tuple((c, mapping[c]) for c in columns))
    if isinstance(item, SubqueryRef):
        sub = translate(item.query, catalog, _expanding)
        return _bind_translation(sub, item.alias, scope)
    if isinstance(item, JoinRef):
        left = _translate_from_item(item.left, catalog, scope, _expanding)
        right = _translate_from_item(item.right, catalog, scope, _expanding)
        condition = make_conjunction(
            [_boolean_atom(a, scope) for a in _flatten_boolean(item.condition)]
        )
        return _join(_JOIN_KINDS[item.kind], left, right, condition)
    raise SqlTranslationError(f"unsupported FROM item {item!r}")


def _bind_translation(sub: Translation, binding: str, scope: Scope) -> Expr:
    mapping = {}
    renames = []
    seen = set()
    for exposed, attr in sub.columns:
        new_attr = f"{binding}_{exposed}".lower()
        if exposed.lower() in mapping:
            raise SqlTranslationError(
                f"duplicate output column {exposed!r} in {binding!r}"
            )
        mapping[exposed] = new_attr
        if attr not in seen:
            renames.append((attr, new_attr))
            seen.add(attr)
    scope.bind(binding, mapping)
    keep = tuple(dict.fromkeys(attr for _, attr in sub.columns))
    projected = Project(sub.expr, keep)
    return Rename(projected, tuple(renames))


def _flatten_boolean(expression: BooleanExpr) -> list[ComparisonExpr]:
    if isinstance(expression, AndExpr):
        out: list[ComparisonExpr] = []
        for part in expression.parts:
            out.extend(_flatten_boolean(part))
        return out
    return [expression]


def _boolean_atom(atom, scope: Scope) -> Predicate:
    from repro.expr.predicates import InList, IsNull

    if isinstance(atom, IsNullExpr):
        return IsNull(_scalar_term(atom.term, scope), atom.negated)
    if isinstance(atom, InListExpr):
        return InList(_scalar_term(atom.term, scope), atom.values)
    if isinstance(atom.right, SubquerySelect):
        raise SqlTranslationError(
            "scalar subqueries are only supported at the top of WHERE"
        )
    return Comparison(
        _scalar_term(atom.left, scope), atom.op, _scalar_term(atom.right, scope)
    )


def _scalar_term(scalar: Scalar, scope: Scope) -> Term:
    if isinstance(scalar, ColumnRef):
        return Col(scope.resolve(scalar))
    if isinstance(scalar, Literal):
        return Const(scalar.value)
    if isinstance(scalar, ArithExpr):
        return Arith(
            _scalar_term(scalar.left, scope),
            scalar.op,
            _scalar_term(scalar.right, scope),
        )
    raise SqlTranslationError(f"unsupported scalar {scalar!r} in predicate")


def _embed_where(tree: Expr, atoms: list[Predicate]) -> Expr:
    """Push WHERE conjuncts to the deepest covering join."""
    remaining = list(atoms)

    def visit(node: Expr) -> Expr:
        nonlocal remaining
        if isinstance(node, Join) and node.kind is JoinKind.INNER:
            left_attrs = set(node.left.all_attrs)
            right_attrs = set(node.right.all_attrs)
            mine: list[Predicate] = []
            rest: list[Predicate] = []
            for atom in remaining:
                refs = atom.attrs
                if not atom.null_intolerant:
                    # null-tolerant atoms (IS NULL) must stay above the
                    # join skeleton -- the reordering theory requires
                    # join predicates to be null in-tolerant
                    rest.append(atom)
                elif refs <= left_attrs or refs <= right_attrs:
                    rest.append(atom)
                elif refs <= left_attrs | right_attrs:
                    mine.append(atom)
                else:
                    rest.append(atom)
            remaining = rest
            left = visit(node.left)
            right = visit(node.right)
            predicate = make_conjunction(
                list(conjuncts_of(node.predicate)) + mine
            )
            return Join(node.kind, left, right, predicate)
        # below outer joins or leaves: attach what is fully covered here
        attrs = set(node.all_attrs)
        mine = [a for a in remaining if a.attrs <= attrs]
        if mine and not isinstance(node, Join):
            remaining = [a for a in remaining if a not in mine]
            return Select(node, make_conjunction(mine))
        return node

    out = visit(tree)
    if remaining:
        out = Select(out, make_conjunction(remaining))
    return out


def _translate_group_by(
    statement: SelectStmt, scope: Scope, tree: Expr
) -> tuple[Expr, list[tuple[str, str]]]:
    keys: list[str] = [scope.resolve(ref) for ref in statement.group_by]
    specs: list[AggregateSpec] = []
    columns: list[tuple[str, str]] = []
    for item in statement.items:
        if isinstance(item.expression, AggregateCall):
            call = item.expression
            output = item.alias or f"{call.function}_{next(_fresh)}"
            arg = None
            if call.argument is not None:
                arg = scope.resolve(call.argument)
            elif call.function != "count":
                raise SqlTranslationError(f"{call.function}(*) is not valid")
            specs.append(
                AggregateSpec(
                    output.lower(),
                    _AGG_FUNCTIONS[call.function],
                    arg,
                    distinct=call.distinct,
                )
            )
            columns.append((item.alias or str(call), output.lower()))
        elif isinstance(item.expression, ColumnRef):
            attr = scope.resolve(item.expression)
            if attr not in keys:
                raise SqlTranslationError(
                    f"column {item.expression} must appear in GROUP BY"
                )
            columns.append((item.alias or item.expression.column, attr))
        elif item.expression == "*":
            raise SqlTranslationError("SELECT * cannot be mixed with GROUP BY")
        else:
            raise SqlTranslationError(
                f"unsupported SELECT item {item.expression!r} under GROUP BY"
            )
    grouped = GroupBy(tree, tuple(keys), tuple(specs), f"q{next(_fresh)}")
    return grouped, columns


# ---- correlated COUNT subqueries (join-aggregate unnesting) ----


def _extract_nested_counts(where: BooleanExpr):
    """A ComparisonExpr against a scalar COUNT subquery, if present."""
    for atom in _flatten_boolean(where):
        if isinstance(atom, ComparisonExpr) and isinstance(
            atom.right, SubquerySelect
        ):
            return atom
    return None


def _translate_nested(
    statement: SelectStmt, catalog: SqlCatalog, scope: Scope, tree: Expr
) -> Translation:
    """Route a correlated-COUNT query through the unnesting machinery.

    Requires the pattern of the paper's Section 1.1: single table per
    level, ``col θ (SELECT COUNT(*) FROM t WHERE <conjunction>)`` and
    physical column names that are globally unique.
    """
    from repro.core.unnest import NestedCountQuery, unnest

    def level_of(stmt: SelectStmt, outer_scopes: list[Scope]) -> NestedCountQuery:
        if len(stmt.from_items) != 1 or not isinstance(stmt.from_items[0], TableRef):
            raise SqlTranslationError(
                "nested COUNT subqueries must have a single FROM table"
            )
        table = stmt.from_items[0]
        columns = catalog.table_columns(table.name)
        level_scope = Scope()
        level_scope.bind(table.binding, {c: c for c in columns})

        def resolve(ref: ColumnRef):
            for s in [level_scope] + outer_scopes:
                try:
                    return s.resolve(ref)
                except SqlTranslationError:
                    continue
            raise SqlTranslationError(f"cannot resolve {ref}")

        correlation_atoms: list[Predicate] = []
        sub_atom: ComparisonExpr | None = None
        if stmt.where is not None:
            for atom in _flatten_boolean(stmt.where):
                if isinstance(atom, ComparisonExpr) and isinstance(
                    atom.right, SubquerySelect
                ):
                    sub_atom = atom
                    continue
                if not isinstance(atom, ComparisonExpr):
                    raise SqlTranslationError(
                        "only comparisons are supported in nested COUNT levels"
                    )
                left = _resolve_term(atom.left, resolve)
                right = _resolve_term(atom.right, resolve)
                correlation_atoms.append(Comparison(left, atom.op, right))
        correlation = make_conjunction(correlation_atoms)
        base = BaseRel(table.name, tuple(columns))

        if sub_atom is None:
            return NestedCountQuery(base, correlation, "", "", None)
        if not isinstance(sub_atom.left, ColumnRef):
            raise SqlTranslationError("θ-comparison must start with a column")
        compare_attr = resolve(sub_atom.left)
        sub_level = level_of(sub_atom.right.query, [level_scope] + outer_scopes)
        return NestedCountQuery(
            base, correlation, compare_attr, sub_atom.op, sub_level
        )

    if len(statement.from_items) != 1 or not isinstance(
        statement.from_items[0], TableRef
    ):
        raise SqlTranslationError(
            "correlated COUNT queries must have a single FROM table"
        )
    top_table = statement.from_items[0]
    columns = catalog.table_columns(top_table.name)
    top_scope = Scope()
    top_scope.bind(top_table.binding, {c: c for c in columns})

    top_atom = _extract_nested_counts(statement.where)
    assert top_atom is not None
    other_atoms = [
        a
        for a in _flatten_boolean(statement.where)
        if not (
            isinstance(a, ComparisonExpr)
            and isinstance(a.right, SubquerySelect)
        )
    ]
    if other_atoms:
        raise SqlTranslationError(
            "extra WHERE conjuncts beside the COUNT comparison are not supported"
        )
    if not isinstance(top_atom.left, ColumnRef):
        raise SqlTranslationError("θ-comparison must start with a column")

    select_attrs = []
    columns_out = []
    for item in statement.items:
        if not isinstance(item.expression, ColumnRef):
            raise SqlTranslationError("nested COUNT queries select plain columns")
        attr = top_scope.resolve(item.expression)
        select_attrs.append(attr)
        columns_out.append((item.alias or item.expression.column, attr))

    base = BaseRel(top_table.name, tuple(columns))
    query = NestedCountQuery(
        base,
        None,
        top_scope.resolve(top_atom.left),
        top_atom.op,
        level_of(top_atom.right.query, [top_scope]),
        tuple(select_attrs),
    )
    return Translation(unnest(query), columns_out)


def _resolve_term(scalar: Scalar, resolve) -> Term:
    if isinstance(scalar, ColumnRef):
        return Col(resolve(scalar))
    if isinstance(scalar, Literal):
        return Const(scalar.value)
    if isinstance(scalar, ArithExpr):
        return Arith(
            _resolve_term(scalar.left, resolve),
            scalar.op,
            _resolve_term(scalar.right, resolve),
        )
    raise SqlTranslationError(f"unsupported scalar {scalar!r}")
