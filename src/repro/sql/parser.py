"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from repro.errors import UserInputError

from fractions import Fraction

from repro.sql.ast import (
    AggregateCall,
    AndExpr,
    ExistsExpr,
    InListExpr,
    IsNullExpr,
    ArithExpr,
    BooleanExpr,
    ColumnRef,
    ComparisonExpr,
    CreateViewStmt,
    FromItem,
    JoinRef,
    Literal,
    Scalar,
    SelectItem,
    SelectStmt,
    Statement,
    SubqueryRef,
    SubquerySelect,
    TableRef,
    UnionStmt,
)
from repro.sql.lexer import Token, tokenize

_COMPARATORS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_AGG_FUNCTIONS = ("count", "sum", "min", "max", "avg")


class SqlParseError(UserInputError):
    """Raised on syntax errors."""


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ---- token plumbing ----

    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        self._pos += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            want = value or kind
            raise SqlParseError(
                f"expected {want!r}, got {got.value!r} at position {got.position}"
            )
        return token

    # ---- statements ----

    def parse_statements(self) -> list[Statement]:
        statements: list[Statement] = []
        while not self.check("eof"):
            statements.append(self.parse_statement())
            self.accept("symbol", ";")
        return statements

    def parse_statement(self) -> Statement:
        if self.check("kw", "create"):
            return self.parse_create_view()
        return self.parse_select_or_union()

    def parse_select_or_union(self):
        statement: Statement = self.parse_select()
        while self.accept("kw", "union"):
            self.expect("kw", "all")
            statement = UnionStmt(statement, self.parse_select())
        return statement

    def parse_create_view(self) -> CreateViewStmt:
        self.expect("kw", "create")
        self.expect("kw", "view")
        name = self.expect("ident").value
        self.expect("kw", "as")
        return CreateViewStmt(name, self.parse_select())

    # ---- SELECT ----

    def parse_select(self) -> SelectStmt:
        self.expect("kw", "select")
        distinct = bool(self.accept("kw", "distinct"))
        items = [self.parse_select_item()]
        while self.accept("symbol", ","):
            items.append(self.parse_select_item())
        self.expect("kw", "from")
        from_items = [self.parse_from_item()]
        while self.accept("symbol", ","):
            from_items.append(self.parse_from_item())
        where = None
        if self.accept("kw", "where"):
            where = self.parse_boolean()
        group_by: tuple = ()
        if self.accept("kw", "group"):
            self.expect("kw", "by")
            columns = [self.parse_column_ref()]
            while self.accept("symbol", ","):
                columns.append(self.parse_column_ref())
            group_by = tuple(columns)
        having = None
        if self.accept("kw", "having"):
            having = self.parse_boolean()
        order_by = []
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            while True:
                column = self.parse_column_ref()
                descending = False
                if self.accept("kw", "desc"):
                    descending = True
                else:
                    self.accept("kw", "asc")
                order_by.append((column, descending))
                if not self.accept("symbol", ","):
                    break
        limit = None
        if self.accept("kw", "limit"):
            limit = int(self.expect("number").value)
        return SelectStmt(
            tuple(items),
            tuple(from_items),
            where,
            group_by,
            having,
            distinct,
            tuple(order_by),
            limit,
        )

    def parse_select_item(self) -> SelectItem:
        if self.check("symbol", "*"):
            self.advance()
            return SelectItem("*")
        # ident = expr (the paper writes "c = count(r1)")
        if (
            self.check("ident")
            and self.peek(1).kind == "symbol"
            and self.peek(1).value == "="
        ):
            alias = self.advance().value
            self.advance()
            return SelectItem(self.parse_scalar(), alias)
        expression = self.parse_scalar()
        alias = None
        if self.accept("kw", "as"):
            alias = self.expect("ident").value
        elif self.check("ident"):
            alias = self.advance().value
        return SelectItem(expression, alias)

    # ---- FROM ----

    def parse_from_item(self) -> FromItem:
        item = self.parse_from_primary()
        while True:
            kind = self._join_kind()
            if kind is None:
                return item
            right = self.parse_from_primary()
            self.expect("kw", "on")
            condition = self.parse_boolean()
            item = JoinRef(kind, item, right, condition)

    def _join_kind(self) -> str | None:
        if self.accept("kw", "join"):
            return "inner"
        if self.check("kw", "inner") and self.peek(1).value == "join":
            self.advance()
            self.advance()
            return "inner"
        for keyword in ("left", "right", "full"):
            if self.check("kw", keyword) and self.peek(1).value in ("outer", "join"):
                self.advance()
                self.accept("kw", "outer")
                self.expect("kw", "join")
                return keyword
        return None

    def parse_from_primary(self) -> FromItem:
        if self.accept("symbol", "("):
            if self.check("kw", "select"):
                query = self.parse_select()
                self.expect("symbol", ")")
                alias = None
                self.accept("kw", "as")
                if self.check("ident"):
                    alias = self.advance().value
                return SubqueryRef(query, alias or f"sub{self._pos}")
            item = self.parse_from_item()
            self.expect("symbol", ")")
            return item
        name = self.expect("ident").value
        alias = None
        if self.accept("kw", "as"):
            alias = self.expect("ident").value
        elif self.check("ident"):
            alias = self.advance().value
        return TableRef(name, alias)

    # ---- predicates ----

    def parse_boolean(self) -> BooleanExpr:
        parts = [self.parse_comparison()]
        while self.accept("kw", "and"):
            parts.append(self.parse_comparison())
        if len(parts) == 1:
            return parts[0]
        return AndExpr(tuple(parts))

    def parse_comparison(self):
        if self.check("kw", "exists") or (
            self.check("kw", "not") and self.peek(1).value == "exists"
        ):
            negated = bool(self.accept("kw", "not"))
            self.expect("kw", "exists")
            self.expect("symbol", "(")
            query = self.parse_select()
            self.expect("symbol", ")")
            return ExistsExpr(query, negated)
        if self.accept("symbol", "("):
            inner = self.parse_boolean()
            self.expect("symbol", ")")
            if isinstance(inner, AndExpr):
                raise SqlParseError("parenthesized AND not supported here")
            return inner
        left = self.parse_scalar()
        if self.accept("kw", "is"):
            negated = bool(self.accept("kw", "not"))
            self.expect("kw", "null")
            return IsNullExpr(left, negated)
        if self.accept("kw", "in"):
            self.expect("symbol", "(")
            values = [self._literal_value()]
            while self.accept("symbol", ","):
                values.append(self._literal_value())
            self.expect("symbol", ")")
            return InListExpr(left, tuple(values))
        if self.accept("kw", "between"):
            low = self.parse_scalar()
            self.expect("kw", "and")
            high = self.parse_scalar()
            return AndExpr(
                (
                    ComparisonExpr(left, ">=", low),
                    ComparisonExpr(left, "<=", high),
                )
            )
        op_token = self.expect("symbol")
        if op_token.value not in _COMPARATORS:
            raise SqlParseError(f"expected comparison operator, got {op_token.value!r}")
        if self.check("symbol", "(") and self.peek(1).value == "select":
            self.advance()
            subquery = self.parse_select()
            self.expect("symbol", ")")
            return ComparisonExpr(left, op_token.value, SubquerySelect(subquery))
        right = self.parse_scalar()
        return ComparisonExpr(left, op_token.value, right)

    # ---- scalars ----

    def parse_scalar(self) -> Scalar:
        term = self.parse_scalar_primary()
        while self.check("symbol") and self.peek().value in ("+", "-", "*"):
            op = self.advance().value
            right = self.parse_scalar_primary()
            term = ArithExpr(term, op, right)
        return term

    def parse_scalar_primary(self) -> Scalar:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            if "." in token.value:
                return Literal(Fraction(token.value))
            return Literal(int(token.value))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        if token.kind == "kw" and token.value in _AGG_FUNCTIONS:
            return self.parse_aggregate()
        if token.kind == "ident":
            return self.parse_column_ref()
        if token.kind == "symbol" and token.value == "(":
            self.advance()
            inner = self.parse_scalar()
            self.expect("symbol", ")")
            return inner
        raise SqlParseError(f"unexpected token {token.value!r} in expression")

    def parse_aggregate(self) -> AggregateCall:
        function = self.advance().value
        self.expect("symbol", "(")
        distinct = bool(self.accept("kw", "distinct"))
        if self.accept("symbol", "*"):
            argument = None
        else:
            ref = self.parse_column_ref()
            argument = ref
        self.expect("symbol", ")")
        return AggregateCall(function, argument, distinct)

    def _literal_value(self):
        token = self.peek()
        if token.kind == "number":
            self.advance()
            if "." in token.value:
                return Fraction(token.value)
            return int(token.value)
        if token.kind == "string":
            self.advance()
            return token.value
        raise SqlParseError(f"expected a literal in the IN list, got {token.value!r}")

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect("ident").value
        if self.accept("symbol", "."):
            column = self.expect("ident").value
            return ColumnRef(first, column)
        return ColumnRef(None, first)


def parse_statements(text: str) -> list[Statement]:
    """Parse a script of ``;``-separated statements."""
    return _Parser(tokenize(text)).parse_statements()


def parse_select(text: str):
    """Parse a single SELECT (or UNION ALL chain) statement."""
    parser = _Parser(tokenize(text))
    stmt = parser.parse_select_or_union()
    parser.accept("symbol", ";")
    parser.expect("eof")
    return stmt
