"""Schema catalog for the SQL front-end."""

from __future__ import annotations

from repro.sql.ast import CreateViewStmt, SelectStmt


class SqlCatalog:
    """Tables (name -> column names) and views (name -> SELECT ast).

    Base tables hold their *physical* column names; the translator
    prefixes them with the FROM-clause binding, so the same physical
    name may appear in several tables.
    """

    def __init__(self, tables: dict[str, tuple[str, ...]] | None = None) -> None:
        self._tables: dict[str, tuple[str, ...]] = {}
        self._views: dict[str, SelectStmt] = {}
        for name, columns in (tables or {}).items():
            self.add_table(name, columns)

    def add_table(self, name: str, columns: tuple[str, ...] | list[str]) -> None:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise ValueError(f"duplicate catalog entry {name!r}")
        self._tables[key] = tuple(columns)

    def add_view(self, statement: CreateViewStmt) -> None:
        key = statement.name.lower()
        if key in self._tables or key in self._views:
            raise ValueError(f"duplicate catalog entry {statement.name!r}")
        self._views[key] = statement.query

    def is_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def is_view(self, name: str) -> bool:
        return name.lower() in self._views

    def table_columns(self, name: str) -> tuple[str, ...]:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def view_query(self, name: str) -> SelectStmt:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise KeyError(f"no view named {name!r}") from None
