"""Abstract syntax trees for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


# ---- scalar expressions ----


@dataclass(frozen=True)
class ColumnRef:
    table: str | None  # qualifier (table name or alias) or None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ArithExpr:
    left: "Scalar"
    op: str  # + - *
    right: "Scalar"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggregateCall:
    function: str  # count / sum / min / max / avg
    argument: ColumnRef | None  # None = count(*)
    distinct: bool = False

    def __str__(self) -> str:
        arg = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            arg = f"DISTINCT {arg}"
        return f"{self.function.upper()}({arg})"


Scalar = Union[ColumnRef, Literal, ArithExpr, AggregateCall]


# ---- predicates ----


@dataclass(frozen=True)
class ComparisonExpr:
    left: Scalar
    op: str
    right: "Scalar | SubquerySelect"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNullExpr:
    term: Scalar
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.term} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class InListExpr:
    term: Scalar
    values: tuple[object, ...]

    def __str__(self) -> str:
        return f"{self.term} IN {self.values!r}"


@dataclass(frozen=True)
class ExistsExpr:
    """``[NOT] EXISTS (SELECT ...)``; resolved into a semi/anti join."""

    query: "SelectStmt"
    negated: bool = False

    def __str__(self) -> str:
        return f"{'NOT ' if self.negated else ''}EXISTS (SELECT ...)"


@dataclass(frozen=True)
class AndExpr:
    parts: tuple["BooleanExpr", ...]

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.parts)


BooleanExpr = Union[ComparisonExpr, IsNullExpr, InListExpr, ExistsExpr, AndExpr]


# ---- table references ----


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    query: "SelectStmt"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class JoinRef:
    kind: str  # inner / left / right / full
    left: "FromItem"
    right: "FromItem"
    condition: BooleanExpr


FromItem = Union[TableRef, SubqueryRef, JoinRef]


# ---- select ----


@dataclass(frozen=True)
class SelectItem:
    expression: Scalar | str  # '*' for star
    alias: str | None = None


@dataclass(frozen=True)
class SelectStmt:
    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: BooleanExpr | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: BooleanExpr | None = None
    distinct: bool = False
    order_by: tuple[tuple[ColumnRef, bool], ...] = ()  # (column, descending)
    limit: int | None = None


@dataclass(frozen=True)
class SubquerySelect:
    """A scalar subquery used inside a comparison (correlated COUNT)."""

    query: SelectStmt

    def __str__(self) -> str:
        return "(SELECT ...)"


@dataclass(frozen=True)
class UnionStmt:
    """``SELECT ... UNION ALL SELECT ...`` (bag union)."""

    left: "SelectStmt | UnionStmt"
    right: SelectStmt


@dataclass(frozen=True)
class CreateViewStmt:
    name: str
    query: SelectStmt


Statement = Union[SelectStmt, UnionStmt, CreateViewStmt]
