"""The fast executor: same semantics as the reference interpreter.

Joins use :func:`repro.exec.hash_join.hash_join`; everything else
shares the relalg substrate (selection, projection, grouping and
generalized selection are already hash-based / linear there).
"""

from __future__ import annotations

from repro.expr.evaluate import Database, _PredicateAdapter
from repro.expr.nodes import (
    AdjustPadding,
    BaseRel,
    Expr,
    ExprError,
    GenSelect,
    GroupBy,
    Join,
    JoinKind,
    Project,
    Rename,
    Select,
    SemiJoin,
    Sort,
    UnionAll,
)
from repro.expr.orderprops import provided_order, streaming_run_prefix
from repro.expr.predicates import TRUE
from repro.exec.hash_join import hash_join
from repro.runtime.faults import fault_point
from repro.runtime.feedback import monitor_lookup, monitor_record
from repro.runtime.metrics import record_engine_counter
from repro.runtime.tracing import add_counter, span, trace_op
from repro.relalg import (
    PreservedSpec,
    Relation,
    generalized_projection,
    generalized_selection,
    product,
    project,
    select,
    streaming_generalized_projection,
    streaming_generalized_selection,
)
from repro.relalg.nulls import NULL
from repro.relalg.operators import rename as relalg_rename
from repro.relalg.ordering import attr_key_fn, tiebreak_keys
from repro.relalg.row import Row
from repro.relalg.schema import Schema


def execute(expr: Expr, db: Database, budget=None) -> Relation:
    """Execute ``expr`` against ``db`` with hash-based joins.

    ``budget`` (a :class:`repro.runtime.Budget`) makes every operator
    result a cooperative checkpoint -- rows charged, deadline checked
    -- so oversized intermediates raise a typed
    :class:`repro.errors.BudgetExceeded` instead of exhausting memory.
    """
    fault_point("hash", expr)
    cached = monitor_lookup(expr)
    if cached is not None:
        # adaptive resume: already materialized before a re-plan
        return cached
    with trace_op("hash", expr):
        result = _execute(expr, db, budget)
        add_counter("rows_out", len(result))
    if budget is not None:
        budget.tick(rows=len(result), where="execute")
    monitor_record(expr, len(result), result)
    return result


def _gs_run_prefix(expr: GenSelect, specs) -> tuple[str, ...]:
    """Run keys for streaming σ*: every preserved part must be confined
    to one run, so the prefix is taken within the *intersection* of the
    specs' attribute sets (empty when there is nothing to preserve --
    a bare σ* is just a selection and needs no runs)."""
    if not specs:
        return ()
    allowed = None
    for spec in specs:
        attrs = spec.real_attrs | spec.virtual_attrs
        allowed = attrs if allowed is None else (allowed & attrs)
    return streaming_run_prefix(provided_order(expr.child), allowed or ())


def _execute(expr: Expr, db: Database, budget=None) -> Relation:
    if isinstance(expr, BaseRel):
        relation = db[expr.name]
        if set(relation.real) != set(expr.attrs):
            raise ExprError(
                f"base relation {expr.name!r} has attrs {sorted(relation.real)}, "
                f"expression expects {sorted(expr.attrs)}"
            )
        return relation
    if isinstance(expr, Select):
        return select(execute(expr.child, db, budget), _PredicateAdapter(expr.predicate))
    if isinstance(expr, Project):
        child = execute(expr.child, db, budget)
        if expr.distinct:
            return project(child, expr.attrs, virtual_attrs=(), distinct=True)
        return project(child, expr.attrs)
    if isinstance(expr, Join):
        left = execute(expr.left, db, budget)
        right = execute(expr.right, db, budget)
        if expr.kind is JoinKind.INNER and expr.predicate is TRUE:
            return product(left, right)
        return hash_join(left, right, expr.predicate, expr.kind)
    if isinstance(expr, UnionAll):
        from repro.relalg import outer_union

        return outer_union(execute(expr.left, db, budget), execute(expr.right, db, budget))
    if isinstance(expr, SemiJoin):
        from repro.exec.hash_join import split_equi_conjuncts
        from repro.relalg.nulls import Truth, is_null

        left = execute(expr.left, db, budget)
        right = execute(expr.right, db, budget)
        keys, residual = split_equi_conjuncts(
            expr.predicate,
            frozenset(left.all_attrs),
            frozenset(right.all_attrs),
        )
        if keys:
            left_keys = [k for k, _ in keys]
            right_keys = [k for _, k in keys]
            table = {}
            for row in right.rows:
                key = row.values_tuple(right_keys)
                if not any(is_null(v) for v in key):
                    table.setdefault(key, []).append(row)
            out = []
            for row in left.rows:
                key = row.values_tuple(left_keys)
                matched = False
                if not any(is_null(v) for v in key):
                    for other in table.get(key, ()):  # probe
                        if residual.evaluate(row.merge(other)) is Truth.TRUE:
                            matched = True
                            break
                if matched != expr.anti:
                    out.append(row)
            return left.with_rows(out)
        from repro.relalg import anti_join, semi_join

        op = anti_join if expr.anti else semi_join
        return op(left, right, _PredicateAdapter(expr.predicate))
    if isinstance(expr, Sort):
        child = execute(expr.child, db, budget)
        with span("sort.enforce", engine="hash"):
            fault_point("sort", op="enforce")
            keys = tiebreak_keys(expr.keys, child.real.attrs)
            rows = sorted(child, key=attr_key_fn(keys))
        record_engine_counter("repro_sort_rows_total", len(rows))
        return child.with_rows(rows)
    if isinstance(expr, GroupBy):
        child = execute(expr.child, db, budget)
        run = streaming_run_prefix(provided_order(expr.child), expr.group_by)
        if run:
            # input is clustered on a group-key prefix: one pass, one
            # run's state at a time, same rows in the same order
            with span("groupby.stream", engine="hash", run=",".join(run)):
                fault_point("groupby", op="stream")
                result = streaming_generalized_projection(
                    child,
                    expr.group_by,
                    expr.aggregates,
                    name=expr.name,
                    run_attrs=run,
                )
            record_engine_counter("repro_streaming_groupby_total")
            return result
        return generalized_projection(
            child, expr.group_by, expr.aggregates, name=expr.name
        )
    if isinstance(expr, GenSelect):
        child = execute(expr.child, db, budget)
        specs = [
            PreservedSpec.of(p.name, p.real, p.virtual) for p in expr.preserved
        ]
        run = _gs_run_prefix(expr, specs)
        if run:
            with span("groupby.stream", engine="hash", run=",".join(run)):
                fault_point("groupby", op="stream")
                result = streaming_generalized_selection(
                    child,
                    _PredicateAdapter(expr.predicate),
                    specs,
                    run_attrs=run,
                )
            record_engine_counter("repro_streaming_groupby_total")
            return result
        return generalized_selection(child, _PredicateAdapter(expr.predicate), specs)
    if isinstance(expr, Rename):
        return relalg_rename(execute(expr.child, db, budget), dict(expr.mapping))
    if isinstance(expr, AdjustPadding):
        child = execute(expr.child, db, budget)
        keep = tuple(a for a in child.real if a != expr.witness) + tuple(
            child.virtual
        )
        rows = []
        for row in child:
            data = {a: row[a] for a in keep}
            if row[expr.witness] == 0:
                for target in expr.targets:
                    data[target] = NULL
            rows.append(Row(data))
        real = Schema(a for a in child.real if a != expr.witness)
        return Relation(real, child.virtual, rows)
    raise ExprError(f"cannot execute node of type {type(expr).__name__}")
