"""Compile predicate trees into per-batch closures over columns.

The row engines call ``predicate.evaluate(row)`` once per row -- an
attribute-name hash probe and a ``Truth`` allocation per atom per row.
The vector engine instead *compiles* the predicate once per operator:
each atom becomes a closure that takes the physical columns and a list
of candidate row indices and returns the indices that evaluate to
TRUE.  Three-valued logic folds into the filter: a row qualifies only
when the atom is TRUE, so UNKNOWN (any NULL operand of a comparison)
rejects exactly as the row engines' ``is Truth.TRUE`` test does, and a
conjunction is a pipeline of atom filters -- each stage only touches
the survivors of the previous one.

NULL tests are identity comparisons against the singleton
(:data:`repro.relalg.nulls.NULL`), the batch equivalent of the row
path's ``is_null``.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.expr.predicates import (
    Arith,
    Col,
    Comparison,
    Conjunction,
    Const,
    InList,
    IsNull,
    Predicate,
    Term,
    _TruePredicate,
)
from repro.relalg.nulls import NULL, _COMPARATORS

#: A compiled term: (physical columns, candidate indices) -> values
#: aligned with the candidate indices (NULL propagated in-band).
TermGetter = Callable[[Mapping[str, list], Sequence[int]], list]

#: A compiled predicate: (physical columns, candidate indices) ->
#: the sub-list of indices on which the predicate is TRUE.
BatchPredicate = Callable[[Mapping[str, list], Sequence[int]], list]


def compile_term(term: Term) -> TermGetter:
    """Compile a term into a batch getter."""
    if isinstance(term, Col):
        name = term.name

        def get_col(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            col = columns[name]
            return [col[i] for i in indices]

        return get_col
    if isinstance(term, Const):
        literal = term.literal

        def get_const(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            return [literal] * len(indices)

        return get_const
    if isinstance(term, Arith):
        from repro.expr.predicates import _ARITH_OPS

        left = compile_term(term.left)
        right = compile_term(term.right)
        fn = _ARITH_OPS[term.op]

        def get_arith(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            return [
                NULL if a is NULL or b is NULL else fn(a, b)
                for a, b in zip(left(columns, indices), right(columns, indices))
            ]

        return get_arith
    raise TypeError(f"cannot compile term of type {type(term).__name__}")


def _compile_atom(atom: Predicate) -> BatchPredicate:
    if isinstance(atom, Comparison):
        left = compile_term(atom.left)
        right = compile_term(atom.right)
        fn = _COMPARATORS[atom.op]

        def run_cmp(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            return [
                i
                for i, a, b in zip(
                    indices, left(columns, indices), right(columns, indices)
                )
                if a is not NULL and b is not NULL and fn(a, b)
            ]

        return run_cmp
    if isinstance(atom, IsNull):
        term = compile_term(atom.term)
        negated = atom.negated

        def run_isnull(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            return [
                i
                for i, v in zip(indices, term(columns, indices))
                if (v is NULL) != negated
            ]

        return run_isnull
    if isinstance(atom, InList):
        term = compile_term(atom.term)
        values = atom.values

        def run_inlist(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            return [
                i
                for i, v in zip(indices, term(columns, indices))
                if v is not NULL and any(v == w for w in values)
            ]

        return run_inlist
    if isinstance(atom, _TruePredicate):
        return lambda columns, indices: list(indices)
    raise TypeError(f"cannot compile predicate of type {type(atom).__name__}")


def compile_predicate(predicate: Predicate) -> BatchPredicate:
    """Compile ``predicate`` into a batch filter (TRUE rows survive)."""
    if isinstance(predicate, Conjunction):
        stages = [_compile_atom(atom) for atom in predicate.conjuncts]

        def run_conj(columns: Mapping[str, list], indices: Sequence[int]) -> list:
            out = indices
            for stage in stages:
                if not out:
                    return []
                out = stage(columns, out)
            return list(out)

        return run_conj
    return _compile_atom(predicate)
